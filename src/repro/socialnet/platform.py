"""Core data model: profiles, accounts, platforms and the multi-platform world.

The model mirrors what the paper collects for each platform (Section 7.1):
"user profiles (e.g. gender, city, and favorites), social content (e.g.
tweets, posts, and status), social connections (e.g., friendship, comments,
and repost or retweet contents), and timeline information (e.g., time index
for each behavior)".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.socialnet.graph import SocialGraph
from repro.socialnet.storage import EVENT_KINDS, BehaviorEvent, EventStore

__all__ = [
    "PROFILE_ATTRIBUTES",
    "Profile",
    "Account",
    "PlatformData",
    "SocialWorld",
    "subset_world",
    "transplant_account",
]

#: The six most popular profile attributes tracked in the paper's Fig 2(a)
#: missing-information study ("birth, bio, tag, edu, job" plus gender).
PROFILE_ATTRIBUTES: tuple[str, ...] = ("gender", "birth", "bio", "tag", "edu", "job")


@dataclass
class Profile:
    """A user profile on one platform.  ``None`` marks a missing attribute.

    ``username`` is never ``None`` (platforms require one) but is *unreliable*
    (Section 1.1); ``face_embedding`` simulates the profile image — ``None``
    means no image was uploaded, and the embedding may be an impostor's
    (see :mod:`repro.features.face`).
    """

    username: str
    gender: str | None = None
    birth: int | None = None
    bio: str | None = None
    tag: tuple[str, ...] | None = None
    edu: str | None = None
    job: str | None = None
    email: str | None = None
    face_embedding: np.ndarray | None = None
    face_is_real: bool = True

    def attribute(self, name: str):
        """Read one of :data:`PROFILE_ATTRIBUTES` by name."""
        if name not in PROFILE_ATTRIBUTES:
            raise KeyError(f"unknown profile attribute: {name!r}")
        return getattr(self, name)

    def missing_attributes(self) -> tuple[str, ...]:
        """Names of the tracked attributes that are absent on this profile."""
        return tuple(a for a in PROFILE_ATTRIBUTES if self.attribute(a) is None)

    def num_missing(self) -> int:
        """Count of missing tracked attributes (the Fig 2(a) x-axis)."""
        return len(self.missing_attributes())


@dataclass
class Account:
    """One platform account.  Behavior lives in the platform's event store."""

    account_id: str
    platform: str
    profile: Profile


@dataclass
class PlatformData:
    """Everything one platform knows: accounts, social graph, behavior events.

    Parameters
    ----------
    name:
        Platform identifier, e.g. ``"sina_weibo"``.
    language:
        Dominant platform language/culture, ``"zh"`` or ``"en"`` — the paper's
        Chinese vs English data sets.
    """

    name: str
    language: str
    accounts: dict[str, Account] = field(default_factory=dict)
    graph: SocialGraph = field(default_factory=SocialGraph)
    events: EventStore = field(default_factory=EventStore)

    def add_account(self, account: Account) -> None:
        """Register ``account``; its id must be unique on the platform."""
        if account.account_id in self.accounts:
            raise ValueError(
                f"duplicate account id on {self.name}: {account.account_id!r}"
            )
        if account.platform != self.name:
            raise ValueError(
                f"account platform {account.platform!r} != platform {self.name!r}"
            )
        self.accounts[account.account_id] = account
        self.graph.add_node(account.account_id)

    def __len__(self) -> int:
        return len(self.accounts)

    def account_ids(self) -> list[str]:
        """Stable-ordered list of account ids."""
        return sorted(self.accounts)

    def ingest_account(
        self,
        account: Account,
        events: Iterable[BehaviorEvent] = (),
        interactions: Iterable[tuple[str, float]] = (),
    ) -> None:
        """Register a *new* account after the platform froze (online arrival).

        Registers the account, appends its behavior ``events`` to the (already
        finalized) event store, and accumulates ``(other_account, weight)``
        ``interactions`` onto the social graph.  This is the world-side half
        of online ingestion; hand the new ``(platform, account_id)`` refs to
        :meth:`repro.serving.LinkageService.add_accounts` afterwards to make
        them searchable.
        """
        events = list(events)
        for event in events:
            if event.account_id != account.account_id:
                raise ValueError(
                    f"event for {event.account_id!r} attached to account "
                    f"{account.account_id!r}"
                )
        self.add_account(account)
        self.events.extend(events)
        for other, weight in interactions:
            self.graph.add_interaction(account.account_id, other, weight)


@dataclass
class SocialWorld:
    """A multi-platform data set with (oracle) identity ground truth.

    ``identity`` maps ``(platform_name, account_id)`` to the latent natural
    person id — the role played in the paper by the data provider's national
    ID / IP / home-address records.  Experiments subsample it into labeled
    training pairs and held-out evaluation pairs.
    """

    platforms: dict[str, PlatformData] = field(default_factory=dict)
    identity: dict[tuple[str, str], int] = field(default_factory=dict)

    def add_platform(self, platform: PlatformData) -> None:
        """Register a platform; names must be unique."""
        if platform.name in self.platforms:
            raise ValueError(f"duplicate platform: {platform.name!r}")
        self.platforms[platform.name] = platform

    def platform(self, name: str) -> PlatformData:
        """Look up a platform by name."""
        return self.platforms[name]

    def person_of(self, platform: str, account_id: str) -> int:
        """Ground-truth natural-person id of an account."""
        return self.identity[(platform, account_id)]

    def true_pairs(self, platform_a: str, platform_b: str) -> list[tuple[str, str]]:
        """All (account_a, account_b) pairs owned by the same person."""
        by_person: dict[int, str] = {}
        for account_id in self.platforms[platform_a].accounts:
            by_person[self.identity[(platform_a, account_id)]] = account_id
        pairs = []
        for account_id in sorted(self.platforms[platform_b].accounts):
            person = self.identity[(platform_b, account_id)]
            if person in by_person:
                pairs.append((by_person[person], account_id))
        pairs.sort()
        return pairs

    def iter_accounts(self) -> Iterator[Account]:
        """Iterate over every account on every platform (sorted order)."""
        for name in sorted(self.platforms):
            platform = self.platforms[name]
            for account_id in platform.account_ids():
                yield platform.accounts[account_id]

    def platform_names(self) -> list[str]:
        """Sorted platform names."""
        return sorted(self.platforms)


# ----------------------------------------------------------------------
# world surgery: building "before ingestion" worlds and replaying arrivals
# ----------------------------------------------------------------------
def subset_world(
    world: SocialWorld, keep: dict[str, Iterable[str]]
) -> SocialWorld:
    """A new world holding only ``keep[platform] = account ids``.

    Accounts, their behavior events, the graph edges among kept accounts,
    and the identity oracle are all filtered; the event stores of the new
    world are finalized.  Platforms absent from ``keep`` keep all accounts.
    This is how the ingestion tests and benchmarks stage a "before the new
    users arrived" world from a fully generated one.
    """
    kept = {
        name: set(keep.get(name, world.platforms[name].accounts))
        for name in world.platforms
    }
    for name, ids in kept.items():
        unknown = ids - set(world.platforms[name].accounts)
        if unknown:
            raise KeyError(f"unknown accounts on {name}: {sorted(unknown)[:3]}")
    out = SocialWorld()
    for name in world.platform_names():
        src = world.platforms[name]
        dst = PlatformData(name=name, language=src.language)
        for account_id in src.account_ids():
            if account_id in kept[name]:
                dst.add_account(src.accounts[account_id])
        for event in src.events.iter_all():
            if event.account_id in kept[name]:
                dst.events.add_event(event)
        dst.events.finalize()
        for u in src.graph.nodes():
            if u not in kept[name]:
                continue
            for v in src.graph.neighbors(u):
                if v in kept[name] and u < v:
                    dst.graph.add_interaction(u, v, src.graph.weight(u, v))
        out.add_platform(dst)
    out.identity = {
        (name, account_id): person
        for (name, account_id), person in world.identity.items()
        if account_id in kept[name]
    }
    return out


def transplant_account(
    src: SocialWorld, dst: SocialWorld, platform: str, account_id: str
) -> tuple[str, str]:
    """Replay one account's arrival from ``src`` into ``dst``.

    Copies the account, its behavior events, its graph edges (restricted to
    accounts already present in ``dst``) and its identity record through
    :meth:`PlatformData.ingest_account`; returns the new account's ref.
    Tests and benchmarks use this to re-enact account arrivals that were
    held out of a fitted world.
    """
    src_platform = src.platforms[platform]
    dst_platform = dst.platforms[platform]
    account = src_platform.accounts[account_id]
    events = [
        event
        for kind in EVENT_KINDS
        for event in src_platform.events.events_for(account_id, kind)
    ]
    interactions = [
        (other, src_platform.graph.weight(account_id, other))
        for other in src_platform.graph.neighbors(account_id)
        if other in dst_platform.accounts
    ]
    dst_platform.ingest_account(account, events, interactions)
    identity = src.identity.get((platform, account_id))
    if identity is not None:
        dst.identity[(platform, account_id)] = identity
    return (platform, account_id)
