"""Columnar behavior-event store with secondary indexes.

Every timestamped behavior record the paper collects ("timeline information
(e.g., time index for each behavior)") is kept here instead of on the account
objects.  The store is deliberately database-shaped:

* an append phase followed by :meth:`EventStore.finalize`, which freezes the
  data into column arrays (timestamps as one contiguous ``float64`` array);
* a hash index ``account_id -> row ids`` (rows time-sorted per account);
* range scans by time interval via binary search over the per-account rows.

The feature layer performs millions of small per-account, per-time-bucket
scans (multi-scale temporal matching, Section 5), so these indexes are what
keeps featurization tractable.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

import numpy as np

__all__ = ["BehaviorEvent", "EventStore", "EVENT_KINDS"]

#: Behavior modalities recorded by the generator and consumed by sensors.
EVENT_KINDS: tuple[str, ...] = ("post", "checkin", "media", "interaction")


@dataclass(frozen=True)
class BehaviorEvent:
    """One timestamped behavior record.

    ``payload`` depends on ``kind``:

    * ``"post"``     -> ``str`` message text
    * ``"checkin"``  -> ``(lat, lon)`` tuple of floats
    * ``"media"``    -> ``int`` perceptual fingerprint of the shared item
    * ``"interaction"`` -> ``str`` id of the other account
    """

    account_id: str
    kind: str
    timestamp: float
    payload: Any


class EventStore:
    """Append-then-freeze columnar store of :class:`BehaviorEvent` rows."""

    def __init__(self) -> None:
        self._account_ids: list[str] = []
        self._kinds: list[str] = []
        self._timestamps: list[float] = []
        self._payloads: list[Any] = []
        self._finalized = False
        # account -> kind -> (sorted timestamps array, row ids array)
        self._index: dict[str, dict[str, tuple[np.ndarray, np.ndarray]]] = {}

    # ------------------------------------------------------------------
    # append phase
    # ------------------------------------------------------------------
    def add(self, account_id: str, kind: str, timestamp: float, payload: Any) -> None:
        """Append one event.  Only legal before :meth:`finalize`."""
        if self._finalized:
            raise RuntimeError("store is finalized; no further appends allowed")
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind: {kind!r}")
        self._account_ids.append(account_id)
        self._kinds.append(kind)
        self._timestamps.append(float(timestamp))
        self._payloads.append(payload)

    def add_event(self, event: BehaviorEvent) -> None:
        """Append a pre-built :class:`BehaviorEvent`."""
        self.add(event.account_id, event.kind, event.timestamp, event.payload)

    # ------------------------------------------------------------------
    # freeze phase
    # ------------------------------------------------------------------
    def finalize(self) -> "EventStore":
        """Freeze appends and build the per-account, per-kind time indexes."""
        if self._finalized:
            return self
        rows_by_key: dict[tuple[str, str], list[int]] = {}
        for row, (account_id, kind) in enumerate(zip(self._account_ids, self._kinds)):
            rows_by_key.setdefault((account_id, kind), []).append(row)
        ts = np.asarray(self._timestamps, dtype=np.float64)
        for (account_id, kind), rows in rows_by_key.items():
            row_arr = np.asarray(rows, dtype=np.int64)
            order = np.argsort(ts[row_arr], kind="stable")
            sorted_rows = row_arr[order]
            self._index.setdefault(account_id, {})[kind] = (
                ts[sorted_rows],
                sorted_rows,
            )
        self._ts_array = ts
        self._finalized = True
        return self

    @property
    def finalized(self) -> bool:
        """Whether :meth:`finalize` has run."""
        return self._finalized

    # ------------------------------------------------------------------
    # online extension (post-finalize appends)
    # ------------------------------------------------------------------
    def extend(self, events: Iterable[BehaviorEvent]) -> None:
        """Append events to an already-finalized store.

        The online-ingestion path: new accounts arrive with their behavior
        history after the store froze.  Appended rows are merged into the
        per-account time indexes incrementally — only the ``(account, kind)``
        keys that actually received events are re-sorted, so ingesting M new
        accounts costs O(their events), not O(store).

        On a store that has not been finalized yet this is just a bulk
        :meth:`add` (the indexes are built by the eventual ``finalize``).
        """
        events = list(events)
        if not self._finalized:
            for event in events:
                self.add_event(event)
            return
        if not events:
            return
        base = len(self._timestamps)
        new_ts = []
        touched: dict[tuple[str, str], list[int]] = {}
        for offset, event in enumerate(events):
            if event.kind not in EVENT_KINDS:
                raise ValueError(f"unknown event kind: {event.kind!r}")
            self._account_ids.append(event.account_id)
            self._kinds.append(event.kind)
            self._timestamps.append(float(event.timestamp))
            self._payloads.append(event.payload)
            new_ts.append(float(event.timestamp))
            touched.setdefault((event.account_id, event.kind), []).append(
                base + offset
            )
        self._ts_array = np.concatenate(
            [self._ts_array, np.asarray(new_ts, dtype=np.float64)]
        )
        for (account_id, kind), rows in touched.items():
            row_arr = np.asarray(rows, dtype=np.int64)
            per_kind = self._index.setdefault(account_id, {})
            old = per_kind.get(kind)
            if old is not None:
                row_arr = np.concatenate([old[1], row_arr])
            times = self._ts_array[row_arr]
            order = np.argsort(times, kind="stable")
            per_kind[kind] = (times[order], row_arr[order])

    def __len__(self) -> int:
        return len(self._timestamps)

    # ------------------------------------------------------------------
    # queries (require finalize)
    # ------------------------------------------------------------------
    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError("store must be finalized before querying")

    def accounts(self) -> list[str]:
        """Sorted account ids that have at least one event."""
        self._require_finalized()
        return sorted(self._index)

    def events_for(
        self,
        account_id: str,
        kind: str,
        *,
        t0: float | None = None,
        t1: float | None = None,
    ) -> list[BehaviorEvent]:
        """Events of ``kind`` for ``account_id`` with ``t0 <= t < t1``, time-sorted."""
        self._require_finalized()
        per_kind = self._index.get(account_id)
        if not per_kind or kind not in per_kind:
            return []
        times, rows = per_kind[kind]
        lo = 0 if t0 is None else bisect.bisect_left(times, t0)
        hi = len(times) if t1 is None else bisect.bisect_left(times, t1)
        return [
            BehaviorEvent(
                account_id=account_id,
                kind=kind,
                timestamp=float(times[i]),
                payload=self._payloads[int(rows[i])],
            )
            for i in range(lo, hi)
        ]

    def timestamps_for(self, account_id: str, kind: str) -> np.ndarray:
        """Sorted timestamp array for one account/kind (possibly empty)."""
        self._require_finalized()
        per_kind = self._index.get(account_id)
        if not per_kind or kind not in per_kind:
            return np.empty(0, dtype=np.float64)
        return per_kind[kind][0]

    def payloads_for(
        self,
        account_id: str,
        kind: str,
        *,
        t0: float | None = None,
        t1: float | None = None,
    ) -> list[Any]:
        """Payloads only (cheaper than building event objects)."""
        self._require_finalized()
        per_kind = self._index.get(account_id)
        if not per_kind or kind not in per_kind:
            return []
        times, rows = per_kind[kind]
        lo = 0 if t0 is None else bisect.bisect_left(times, t0)
        hi = len(times) if t1 is None else bisect.bisect_left(times, t1)
        return [self._payloads[int(rows[i])] for i in range(lo, hi)]

    def texts_of(self, account_id: str) -> list[str]:
        """All post texts of an account, time-ordered."""
        return self.payloads_for(account_id, "post")

    def count(self, account_id: str, kind: str) -> int:
        """Number of events of ``kind`` for ``account_id``."""
        self._require_finalized()
        per_kind = self._index.get(account_id)
        if not per_kind or kind not in per_kind:
            return 0
        return len(per_kind[kind][0])

    def time_range(self) -> tuple[float, float]:
        """(min, max) timestamp over the whole store; (0, 0) when empty."""
        self._require_finalized()
        if len(self._timestamps) == 0:
            return (0.0, 0.0)
        return float(self._ts_array.min()), float(self._ts_array.max())

    def iter_all(self) -> Iterator[BehaviorEvent]:
        """Iterate every event in insertion order."""
        for account_id, kind, ts, payload in zip(
            self._account_ids, self._kinds, self._timestamps, self._payloads
        ):
            yield BehaviorEvent(account_id, kind, ts, payload)
