"""Interaction-weighted social graph.

The structure-consistency model (Section 6.2) needs three graph primitives:

* the *core structure* of a user — "friends with the most frequent
  interactions" (top-k neighbors by interaction weight);
* the n-hop closeness ``d_ij = (k_ij + 1)^2`` where ``k_ij`` is the number of
  intermediate users on a shortest path from i to j (Eqn 9);
* neighborhood queries for linkage propagation.

Implemented from scratch on dict adjacency + BFS; no networkx dependency so
the substrate is self-contained.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

__all__ = ["SocialGraph"]


class SocialGraph:
    """Undirected graph with non-negative interaction weights on edges.

    Edge weight models cumulative interaction frequency (comments, retweets,
    mentions) between two accounts.  ``add_interaction`` accumulates weight,
    so replaying an interaction log builds the graph incrementally.

    Examples
    --------
    >>> g = SocialGraph()
    >>> g.add_interaction("a", "b", 2.0)
    >>> g.add_interaction("a", "b", 1.0)
    >>> g.weight("a", "b")
    3.0
    >>> g.top_friends("a", k=1)
    ['b']
    """

    def __init__(self) -> None:
        self._adj: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        """Ensure ``node`` exists (isolated nodes are legal)."""
        self._adj.setdefault(node, {})

    def add_interaction(self, u: str, v: str, weight: float = 1.0) -> None:
        """Accumulate ``weight`` on the undirected edge ``(u, v)``."""
        if u == v:
            raise ValueError(f"self-interaction not allowed: {u!r}")
        if weight < 0:
            raise ValueError(f"interaction weight must be >= 0, got {weight}")
        self._adj.setdefault(u, {})[v] = self._adj.get(u, {}).get(v, 0.0) + weight
        self._adj.setdefault(v, {})[u] = self._adj.get(v, {}).get(u, 0.0) + weight

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __contains__(self, node: str) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def nodes(self) -> list[str]:
        """Sorted node list."""
        return sorted(self._adj)

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def neighbors(self, node: str) -> list[str]:
        """Sorted neighbor ids of ``node``."""
        return sorted(self._adj.get(node, {}))

    def weight(self, u: str, v: str) -> float:
        """Interaction weight of edge ``(u, v)``; 0 if absent."""
        return self._adj.get(u, {}).get(v, 0.0)

    def degree(self, node: str) -> int:
        """Number of neighbors of ``node``."""
        return len(self._adj.get(node, {}))

    def strength(self, node: str) -> float:
        """Total interaction weight incident to ``node``."""
        return sum(self._adj.get(node, {}).values())

    def edges(self) -> Iterator[tuple[str, str, float]]:
        """Yield each undirected edge once as ``(u, v, weight)`` with u < v."""
        for u in sorted(self._adj):
            for v, w in sorted(self._adj[u].items()):
                if u < v:
                    yield u, v, w

    # ------------------------------------------------------------------
    # core structure
    # ------------------------------------------------------------------
    def top_friends(self, node: str, k: int) -> list[str]:
        """The user's core structure: top-``k`` neighbors by interaction weight.

        Ties break by id so results are deterministic.  Fewer than ``k``
        friends are returned when the user has a smaller neighborhood.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        nbrs = self._adj.get(node, {})
        ranked = sorted(nbrs.items(), key=lambda kv: (-kv[1], kv[0]))
        return [v for v, _ in ranked[:k]]

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def hop_count(self, source: str, target: str, *, max_hops: int | None = None) -> int | None:
        """Shortest-path edge count between two nodes (BFS), or None.

        ``max_hops`` bounds the search; paths longer than that return None,
        which the consistency model treats as "too far to constrain".
        """
        if source not in self._adj or target not in self._adj:
            return None
        if source == target:
            return 0
        seen = {source}
        frontier = deque([(source, 0)])
        while frontier:
            node, dist = frontier.popleft()
            if max_hops is not None and dist >= max_hops:
                continue
            for nbr in self._adj[node]:
                if nbr == target:
                    return dist + 1
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append((nbr, dist + 1))
        return None

    def closeness_distance(self, source: str, target: str, *, max_hops: int = 4) -> float | None:
        """The paper's ``d_ij = (k_ij + 1)^2`` with ``k_ij`` intermediate users.

        Adjacent users have ``k_ij = 0`` hence distance 1; one intermediate
        gives 4, and so on.  ``None`` when no path within ``max_hops`` edges.
        """
        hops = self.hop_count(source, target, max_hops=max_hops)
        if hops is None or hops == 0:
            return None if hops is None else 1.0
        intermediates = hops - 1
        return float((intermediates + 1) ** 2)

    def hop_counts_from(self, source: str, *, max_hops: int) -> dict[str, int]:
        """All nodes within ``max_hops`` edges of ``source`` and their hop counts."""
        if source not in self._adj:
            return {}
        dist = {source: 0}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            d = dist[node]
            if d >= max_hops:
                continue
            for nbr in self._adj[node]:
                if nbr not in dist:
                    dist[nbr] = d + 1
                    frontier.append(nbr)
        return dist

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------
    def connected_components(self) -> list[set[str]]:
        """Connected components, largest first (size ties: lexicographic min)."""
        seen: set[str] = set()
        components: list[set[str]] = []
        for start in sorted(self._adj):
            if start in seen:
                continue
            comp = {start}
            frontier = deque([start])
            while frontier:
                node = frontier.popleft()
                for nbr in self._adj[node]:
                    if nbr not in comp:
                        comp.add(nbr)
                        frontier.append(nbr)
            seen |= comp
            components.append(comp)
        components.sort(key=lambda c: (-len(c), min(c)))
        return components

    def subgraph(self, nodes: Iterable[str]) -> "SocialGraph":
        """Induced subgraph on ``nodes`` (weights preserved)."""
        keep = set(nodes)
        sub = SocialGraph()
        for node in keep:
            if node in self._adj:
                sub.add_node(node)
        for u in keep:
            for v, w in self._adj.get(u, {}).items():
                if v in keep and u < v:
                    sub.add_interaction(u, v, w)
        return sub
