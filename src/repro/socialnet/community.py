"""Community detection by weighted asynchronous label propagation.

Figure 12 of the paper studies how structure information from overlapping
social communities improves linkage ("given the top five largest overlapping
communities A, B, C, D, E ...").  Our worlds are generated with planted
social circles; at analysis time communities must be *recovered* from the
graph, which this module does with the classic label-propagation algorithm
(Raghavan et al. 2007) extended to weighted edges: every node repeatedly
adopts the label with the maximum total incident interaction weight, until a
fixed point.
"""

from __future__ import annotations

import numpy as np

from repro.socialnet.graph import SocialGraph
from repro.utils.rng import as_rng

__all__ = ["label_propagation_communities"]


def label_propagation_communities(
    graph: SocialGraph,
    *,
    max_iterations: int = 50,
    seed: int | np.random.Generator | None = 0,
) -> list[set[str]]:
    """Partition ``graph`` into communities, largest first.

    Parameters
    ----------
    graph:
        The interaction-weighted social graph.
    max_iterations:
        Upper bound on full sweeps; label propagation almost always converges
        within a handful of sweeps on social graphs.
    seed:
        Controls node visit order and tie-breaking, making the partition
        deterministic for a fixed seed.

    Returns
    -------
    list[set[str]]
        Disjoint communities covering all nodes, sorted by size (descending),
        ties broken by smallest member id.
    """
    rng = as_rng(seed)
    nodes = graph.nodes()
    if not nodes:
        return []
    labels = {node: node for node in nodes}

    order = list(nodes)
    for _ in range(max_iterations):
        rng.shuffle(order)
        changed = False
        for node in order:
            neighbors = graph.neighbors(node)
            if not neighbors:
                continue
            # total incident weight per neighboring label
            weight_per_label: dict[str, float] = {}
            for nbr in neighbors:
                lbl = labels[nbr]
                weight_per_label[lbl] = weight_per_label.get(lbl, 0.0) + graph.weight(
                    node, nbr
                )
            best_weight = max(weight_per_label.values())
            candidates = sorted(
                lbl for lbl, w in weight_per_label.items() if w == best_weight
            )
            new_label = candidates[int(rng.integers(0, len(candidates)))]
            if new_label != labels[node]:
                labels[node] = new_label
                changed = True
        if not changed:
            break

    groups: dict[str, set[str]] = {}
    for node, lbl in labels.items():
        groups.setdefault(lbl, set()).add(node)
    communities = list(groups.values())
    communities.sort(key=lambda c: (-len(c), min(c)))
    return communities
