"""Social-network substrate.

Data model for platforms, accounts and profiles; an interaction-weighted
social graph with core-structure queries (the paper's "core social network" =
top-k most frequently interacting friends); label-propagation community
detection (used by the Fig 12 experiment); and a columnar event store holding
every timestamped behavior record with secondary indexes.
"""

from repro.socialnet.platform import (
    Account,
    PlatformData,
    Profile,
    PROFILE_ATTRIBUTES,
    SocialWorld,
    subset_world,
    transplant_account,
)
from repro.socialnet.graph import SocialGraph
from repro.socialnet.community import label_propagation_communities
from repro.socialnet.storage import BehaviorEvent, EventStore

__all__ = [
    "Account",
    "PlatformData",
    "Profile",
    "PROFILE_ATTRIBUTES",
    "SocialWorld",
    "SocialGraph",
    "label_propagation_communities",
    "BehaviorEvent",
    "EventStore",
    "subset_world",
    "transplant_account",
]
