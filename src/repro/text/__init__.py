"""Text-processing substrate.

HYDRA's user-generated-content features (Section 5.2-5.3 of the paper) need a
text stack: tokenization and normalization, vocabulary construction with
corpus-level term statistics, Latent Dirichlet Allocation for topic
distributions, a sentiment model, and unique-word style extraction.  All of it
is implemented here from scratch on numpy so the library has no text-mining
dependencies.
"""

from repro.text.tokenizer import Tokenizer, normalize_word
from repro.text.vocabulary import Vocabulary
from repro.text.lda import LatentDirichletAllocation
from repro.text.variational import VariationalLDA, digamma
from repro.text.sentiment import SentimentModel, SENTIMENT_CATEGORIES
from repro.text.style import StyleExtractor

__all__ = [
    "Tokenizer",
    "normalize_word",
    "Vocabulary",
    "LatentDirichletAllocation",
    "VariationalLDA",
    "digamma",
    "SentimentModel",
    "SENTIMENT_CATEGORIES",
    "StyleExtractor",
]
