"""User language-style extraction (Section 5.3).

"To model a user's characteristic style, we extract the most unique words of
each user by a simple term frequency analysis on the whole database ... we
select the k (k = 1, 3, 5) most unique ones after removing stop words from the
least-used terms of the whole user data repository."

:class:`StyleExtractor` computes, for each user, the k rarest
(corpus-frequency-wise) words among that user's tokens, for each k in a
configurable ladder — the downstream similarity is Eqn 4 word matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.text.tokenizer import Tokenizer
from repro.text.vocabulary import Vocabulary

__all__ = ["StyleExtractor", "UserStyle"]


@dataclass(frozen=True)
class UserStyle:
    """A user's unique-word signature at each k in the ladder.

    ``signatures[k]`` is the list of (up to) k rarest distinct words the user
    employed, ordered by ascending corpus frequency.
    """

    signatures: dict[int, tuple[str, ...]]

    def words_at(self, k: int) -> tuple[str, ...]:
        """Signature at level ``k``; raises KeyError for unknown levels."""
        return self.signatures[k]


@dataclass
class StyleExtractor:
    """Builds unique-word style signatures against a shared corpus vocabulary.

    Parameters
    ----------
    ks:
        Ladder of signature sizes; the paper uses (1, 3, 5).
    tokenizer:
        Tokenizer applied to raw messages (stop-word removal happens here,
        matching the paper's "after removing stop words").
    """

    ks: tuple[int, ...] = (1, 3, 5)
    tokenizer: Tokenizer = field(default_factory=Tokenizer)

    def __post_init__(self) -> None:
        if not self.ks or any(k < 1 for k in self.ks):
            raise ValueError(f"ks must be non-empty positive ints, got {self.ks}")

    def build_vocabulary(self, corpora: dict[str, list[str]]) -> Vocabulary:
        """Index the whole data repository: ``corpora`` maps user -> messages."""
        vocab = Vocabulary()
        for messages in corpora.values():
            vocab.add_corpus(self.tokenizer.tokenize_many(messages))
        return vocab

    def extract(self, messages: list[str], vocabulary: Vocabulary) -> UserStyle:
        """Compute one user's :class:`UserStyle` against ``vocabulary``."""
        return self.extract_from_tokens(
            self.tokenizer.tokenize_many(messages), vocabulary
        )

    def extract_from_tokens(
        self, token_docs: list[list[str]], vocabulary: Vocabulary
    ) -> UserStyle:
        """Like :meth:`extract`, but over already-tokenized documents.

        Callers that tokenized the corpus once (e.g. the feature pipeline,
        which needs the same documents for the LDA corpus) can reuse those
        token lists instead of paying a second tokenization pass.
        """
        tokens: list[str] = []
        for doc in token_docs:
            tokens.extend(doc)
        max_k = max(self.ks)
        rarest = vocabulary.rarest_words(tokens, max_k)
        signatures = {k: tuple(rarest[:k]) for k in self.ks}
        return UserStyle(signatures=signatures)

    def extract_all(
        self, corpora: dict[str, list[str]], vocabulary: Vocabulary | None = None
    ) -> dict[str, UserStyle]:
        """Extract signatures for every user in ``corpora``.

        Builds the shared vocabulary from the same corpora when one is not
        supplied (the paper's "whole user data repository" analysis).
        """
        if vocabulary is None:
            vocabulary = self.build_vocabulary(corpora)
        return {
            user: self.extract(messages, vocabulary)
            for user, messages in corpora.items()
        }
