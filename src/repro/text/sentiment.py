"""Sentiment pattern modeling (Section 5.2, "Sentiment Pattern Distribution").

The paper groups emotions into categories ("happy/ fear/ sad/ neutral") by
"extracting representative emotional key words in the textual content and
learning a sentiment vocabulary", then represents each message as a
probability distribution over the sentiment vocabulary.  It also references
the two-dimensional arousal-valence space of affective computing [10].

This module implements both views:

* a keyword lexicon mapping emotional words to categories, learnable from a
  labeled seed corpus (:meth:`SentimentModel.fit_lexicon`), and
* a message -> categorical-distribution encoder with additive smoothing,
  plus an arousal/valence projection of that distribution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SENTIMENT_CATEGORIES", "SentimentModel", "DEFAULT_LEXICON"]

#: Categorical sentiment space used throughout the library.
SENTIMENT_CATEGORIES: tuple[str, ...] = ("happy", "fear", "sad", "neutral")

#: (valence, arousal) coordinates per category, following the circumplex
#: layout in affective-content modeling [10]: happy = positive valence/high
#: arousal, fear = negative/high, sad = negative/low, neutral = origin.
_AROUSAL_VALENCE: dict[str, tuple[float, float]] = {
    "happy": (0.8, 0.6),
    "fear": (-0.6, 0.8),
    "sad": (-0.7, -0.5),
    "neutral": (0.0, 0.0),
}

#: Seed lexicon of representative emotional keywords.  The synthetic corpus
#: generator draws its emotional words from this same inventory, which mirrors
#: how the paper learns a sentiment vocabulary from representative keywords.
DEFAULT_LEXICON: dict[str, str] = {
    # happy
    "happy": "happy", "joy": "happy", "love": "happy", "great": "happy",
    "awesome": "happy", "excited": "happy", "wonderful": "happy",
    "fun": "happy", "laugh": "happy", "smile": "happy", "win": "happy",
    "celebrate": "happy", "delight": "happy", "cheer": "happy",
    # fear
    "fear": "fear", "afraid": "fear", "scared": "fear", "panic": "fear",
    "terrified": "fear", "worry": "fear", "anxious": "fear", "dread": "fear",
    "nervous": "fear", "horror": "fear", "threat": "fear",
    # sad
    "sad": "sad", "cry": "sad", "lonely": "sad", "miss": "sad",
    "depressed": "sad", "grief": "sad", "tear": "sad", "heartbroken": "sad",
    "sorrow": "sad", "regret": "sad", "gloomy": "sad", "lost": "sad",
}


@dataclass
class SentimentModel:
    """Message-level sentiment distribution encoder.

    Parameters
    ----------
    lexicon:
        word -> category map.  Defaults to :data:`DEFAULT_LEXICON`; can be
        extended or replaced by :meth:`fit_lexicon`.
    smoothing:
        Additive mass spread over all categories so distributions are never
        degenerate; messages with no emotional keywords collapse to a
        neutral-centered distribution.
    """

    lexicon: dict[str, str] = field(default_factory=lambda: dict(DEFAULT_LEXICON))
    smoothing: float = 0.5

    def __post_init__(self) -> None:
        if self.smoothing <= 0:
            raise ValueError(f"smoothing must be > 0, got {self.smoothing}")
        bad = {c for c in self.lexicon.values()} - set(SENTIMENT_CATEGORIES)
        if bad:
            raise ValueError(f"lexicon maps to unknown categories: {sorted(bad)}")

    @property
    def num_categories(self) -> int:
        """Size of the categorical sentiment space."""
        return len(SENTIMENT_CATEGORIES)

    def fit_lexicon(
        self, documents: list[list[str]], labels: list[str], *, min_count: int = 2
    ) -> "SentimentModel":
        """Learn a sentiment vocabulary from category-labeled documents.

        A word is assigned to the category in which it appears most often,
        provided it occurs at least ``min_count`` times in emotional documents
        and never dominates in ``neutral`` ones.  Mirrors the paper's
        "extracting representative emotional key words ... and learning a
        sentiment vocabulary".
        """
        if len(documents) != len(labels):
            raise ValueError("documents and labels must have equal length")
        per_word: dict[str, Counter[str]] = {}
        for tokens, label in zip(documents, labels):
            if label not in SENTIMENT_CATEGORIES:
                raise ValueError(f"unknown sentiment label: {label!r}")
            for word in tokens:
                per_word.setdefault(word, Counter())[label] += 1
        for word, counts in per_word.items():
            category, count = counts.most_common(1)[0]
            if category == "neutral" or count < min_count:
                continue
            self.lexicon[word] = category
        return self

    def message_distribution(self, tokens: list[str]) -> np.ndarray:
        """Encode one tokenized message as a distribution over categories."""
        counts = np.full(self.num_categories, self.smoothing, dtype=float)
        index = {c: i for i, c in enumerate(SENTIMENT_CATEGORIES)}
        matched = False
        for word in tokens:
            category = self.lexicon.get(word)
            if category is not None:
                counts[index[category]] += 1.0
                matched = True
        if not matched:
            counts[index["neutral"]] += 1.0
        return counts / counts.sum()

    def corpus_distributions(self, documents: list[list[str]]) -> np.ndarray:
        """Encode every message; returns an ``(n_messages, 4)`` array."""
        if not documents:
            return np.zeros((0, self.num_categories))
        return np.vstack([self.message_distribution(doc) for doc in documents])

    def arousal_valence(self, distribution: np.ndarray) -> tuple[float, float]:
        """Project a categorical distribution onto the (valence, arousal) plane."""
        dist = np.asarray(distribution, dtype=float)
        if dist.shape != (self.num_categories,):
            raise ValueError(
                f"expected shape ({self.num_categories},), got {dist.shape}"
            )
        valence = sum(
            dist[i] * _AROUSAL_VALENCE[c][0] for i, c in enumerate(SENTIMENT_CATEGORIES)
        )
        arousal = sum(
            dist[i] * _AROUSAL_VALENCE[c][1] for i, c in enumerate(SENTIMENT_CATEGORIES)
        )
        return float(valence), float(arousal)
