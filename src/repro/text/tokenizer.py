"""Tokenization and word normalization.

Section 5.3 of the paper requires words to be "converted into a uniform
format, such as lower-case and singular form" before unique-word matching.
The tokenizer lower-cases, strips punctuation, drops stop words and applies a
light rule-based singularization (an English-ish stemmer is enough: the
synthetic corpora use a controlled vocabulary).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["DEFAULT_STOP_WORDS", "normalize_word", "Tokenizer"]

#: Small stop-word list covering the function words the synthetic corpus uses.
DEFAULT_STOP_WORDS: frozenset[str] = frozenset(
    """
    a an and are as at be but by for from has have i in is it its of on or
    that the this to was we were will with you your not so if then than
    """.split()
)

_TOKEN_RE = re.compile(r"[a-z0-9_一-鿿]+")


def normalize_word(word: str) -> str:
    """Lower-case and singularize ``word`` with simple suffix rules.

    The rules cover regular English plurals (``-ies`` -> ``-y``, ``-ses`` ->
    ``-s``, trailing ``-s``); they intentionally avoid heavier stemming which
    would merge distinct style words.
    """
    w = word.lower()
    if len(w) > 4 and w.endswith("sses"):
        return w[:-2]
    if len(w) > 3 and w.endswith("ies"):
        return w[:-3] + "y"
    if len(w) > 3 and w.endswith("s") and not w.endswith("ss"):
        return w[:-1]
    return w


@dataclass
class Tokenizer:
    """Configurable tokenizer producing normalized word lists.

    Parameters
    ----------
    stop_words:
        Words removed after normalization.  Defaults to
        :data:`DEFAULT_STOP_WORDS`.
    min_length:
        Tokens shorter than this (after normalization) are dropped.
    """

    stop_words: frozenset[str] = field(default_factory=lambda: DEFAULT_STOP_WORDS)
    min_length: int = 2

    def tokenize(self, text: str) -> list[str]:
        """Split ``text`` into normalized, stop-word-filtered tokens."""
        if not text:
            return []
        tokens = []
        for raw in _TOKEN_RE.findall(text.lower()):
            word = normalize_word(raw)
            if len(word) < self.min_length:
                continue
            if word in self.stop_words:
                continue
            tokens.append(word)
        return tokens

    def tokenize_many(self, texts: list[str]) -> list[list[str]]:
        """Tokenize a list of documents."""
        return [self.tokenize(t) for t in texts]
