"""Batch variational-Bayes LDA (Blei et al. 2003; Hoffman et al. 2010 updates).

The collapsed Gibbs sampler in :mod:`repro.text.lda` is the reference
implementation, but it resamples token-by-token in Python and the experiment
harness has to infer topic distributions for tens of thousands of messages per
run.  This module provides the production path: fully vectorized variational
inference over the document-term count matrix, mathematically the standard
mean-field approximation of the same model.

The digamma function is implemented locally (recurrence + asymptotic series)
to keep the core library numpy-only.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["digamma", "VariationalLDA"]


def digamma(x: np.ndarray | float) -> np.ndarray:
    """Elementwise digamma via the shift recurrence + asymptotic expansion.

    Uses ``psi(x) = psi(x + 1) - 1/x`` to push arguments above 6, then the
    standard asymptotic series; accurate to ~1e-8 for x > 0, far beyond what
    mean-field updates need.
    """
    x = np.asarray(x, dtype=float)
    if (x <= 0).any():
        raise ValueError("digamma requires strictly positive arguments")
    result = np.zeros_like(x)
    y = x.copy()
    # recurrence: accumulate -1/y while y < 6
    while (y < 6).any():
        mask = y < 6
        result[mask] -= 1.0 / y[mask]
        y[mask] += 1.0
    inv = 1.0 / y
    inv2 = inv * inv
    result += (
        np.log(y)
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0))
    )
    return result


class VariationalLDA:
    """LDA fitted by batch variational EM on a dense doc-term matrix.

    Parameters mirror :class:`repro.text.lda.LatentDirichletAllocation`; the
    fitted attributes ``topic_word_`` (K, V) and ``doc_topic_`` (D, K) have
    identical semantics so the two implementations are interchangeable.

    Examples
    --------
    >>> docs = [[0, 0, 1], [1, 1, 0], [2, 3, 2], [3, 2, 3]]
    >>> lda = VariationalLDA(num_topics=2, vocab_size=4, seed=0).fit(docs)
    >>> lda.doc_topic_.shape
    (4, 2)
    """

    def __init__(
        self,
        num_topics: int,
        vocab_size: int,
        *,
        alpha: float | None = None,
        eta: float = 0.01,
        em_iterations: int = 30,
        e_step_iterations: int = 20,
        seed: int | np.random.Generator | None = None,
    ):
        if num_topics < 1:
            raise ValueError(f"num_topics must be >= 1, got {num_topics}")
        if vocab_size < 1:
            raise ValueError(f"vocab_size must be >= 1, got {vocab_size}")
        self.num_topics = int(num_topics)
        self.vocab_size = int(vocab_size)
        self.alpha = float(alpha) if alpha is not None else 1.0 / num_topics
        self.eta = float(eta)
        self.em_iterations = int(em_iterations)
        self.e_step_iterations = int(e_step_iterations)
        self._rng = as_rng(seed)
        self.topic_word_: np.ndarray | None = None
        self.doc_topic_: np.ndarray | None = None
        self._lambda: np.ndarray | None = None
        # exp(E[log beta]) memo for transform(): the digamma pass over the
        # (K, V) topic matrix dominates small transforms (online ingestion
        # infers one account at a time), so it is computed once per fit
        self._transform_beta: np.ndarray | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def count_matrix(
        documents: list[list[int] | np.ndarray], vocab_size: int
    ) -> np.ndarray:
        """Dense (D, V) doc-term count matrix from id lists."""
        counts = np.zeros((len(documents), vocab_size), dtype=float)
        for row, doc in enumerate(documents):
            ids = np.asarray(doc, dtype=np.int64)
            if ids.size:
                if ids.min() < 0 or ids.max() >= vocab_size:
                    raise ValueError("document contains word ids outside the vocabulary")
                np.add.at(counts[row], ids, 1.0)
        return counts

    def _e_step(
        self,
        counts: np.ndarray,
        exp_elog_beta: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mean-field document updates; returns (gamma, sufficient stats)."""
        num_docs = counts.shape[0]
        rng = self._rng if rng is None else rng
        gamma = rng.gamma(100.0, 0.01, (num_docs, self.num_topics))
        for _ in range(self.e_step_iterations):
            exp_elog_theta = np.exp(
                digamma(gamma) - digamma(gamma.sum(axis=1, keepdims=True))
            )
            # phinorm[d, w] = sum_k expElogtheta[d,k] expElogbeta[k,w]
            phinorm = exp_elog_theta @ exp_elog_beta + 1e-100
            gamma = self.alpha + exp_elog_theta * (
                (counts / phinorm) @ exp_elog_beta.T
            )
        exp_elog_theta = np.exp(
            digamma(gamma) - digamma(gamma.sum(axis=1, keepdims=True))
        )
        phinorm = exp_elog_theta @ exp_elog_beta + 1e-100
        sstats = exp_elog_beta * (exp_elog_theta.T @ (counts / phinorm))
        return gamma, sstats

    def fit(self, documents: list[list[int] | np.ndarray]) -> "VariationalLDA":
        """Run variational EM on ``documents`` (lists of word ids)."""
        counts = self.count_matrix(documents, self.vocab_size)
        lam = self._rng.gamma(100.0, 0.01, (self.num_topics, self.vocab_size))
        for _ in range(self.em_iterations):
            exp_elog_beta = np.exp(
                digamma(lam) - digamma(lam.sum(axis=1, keepdims=True))
            )
            gamma, sstats = self._e_step(counts, exp_elog_beta)
            lam = self.eta + sstats
        self._lambda = lam
        self._transform_beta = None
        self.topic_word_ = lam / lam.sum(axis=1, keepdims=True)
        self.doc_topic_ = gamma / gamma.sum(axis=1, keepdims=True)
        return self

    def __getstate__(self) -> dict:
        # the transform memo is derived state: drop it from pickles (and
        # from persisted artifacts) and recompute on first use
        state = dict(self.__dict__)
        state["_transform_beta"] = None
        return state

    def transform(
        self,
        documents: list[list[int] | np.ndarray],
        *,
        batch_size: int = 4096,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Per-document topic distributions for new documents.

        Processes in batches of ``batch_size`` documents so the dense
        doc-term matrix never exceeds a bounded footprint.  ``rng`` overrides
        the model's (stateful) generator for the variational initialization:
        callers that need *reproducible* inference — online ingestion infers
        each new account's topics under a per-account derived seed — pass a
        fresh generator instead of consuming the shared stream.
        """
        if self._lambda is None:
            raise RuntimeError("model is not fitted; call fit() first")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        exp_elog_beta = getattr(self, "_transform_beta", None)
        if exp_elog_beta is None:
            exp_elog_beta = np.exp(
                digamma(self._lambda)
                - digamma(self._lambda.sum(axis=1, keepdims=True))
            )
            self._transform_beta = exp_elog_beta
        chunks = []
        for start in range(0, len(documents), batch_size):
            batch = documents[start : start + batch_size]
            counts = self.count_matrix(batch, self.vocab_size)
            gamma, _ = self._e_step(counts, exp_elog_beta, rng=rng)
            theta = gamma / gamma.sum(axis=1, keepdims=True)
            # documents with no tokens carry no information: uniform
            empty = counts.sum(axis=1) == 0
            theta[empty] = 1.0 / self.num_topics
            chunks.append(theta)
        if not chunks:
            return np.zeros((0, self.num_topics))
        return np.vstack(chunks)
