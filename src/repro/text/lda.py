"""Latent Dirichlet Allocation by collapsed Gibbs sampling.

Section 5.2: "We first construct a latent topic model using Latent Dirichlet
Allocation on every textual message, the output of which is a probability
distribution over the topic space."  This module is that substrate, written
from scratch: a collapsed Gibbs sampler (Griffiths & Steyvers 2004) with
symmetric Dirichlet priors, plus fold-in inference for unseen documents.

The sampler keeps the standard count matrices:

* ``n_dk`` — topic counts per document,
* ``n_kw`` — word counts per topic,
* ``n_k``  — total words per topic,

and resamples each token's topic from the collapsed conditional

    p(z = k | rest)  ∝  (n_dk + alpha) * (n_kw + beta) / (n_k + V * beta).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["LatentDirichletAllocation"]


class LatentDirichletAllocation:
    """Topic model with collapsed Gibbs training and fold-in inference.

    Parameters
    ----------
    num_topics:
        Size of the latent topic space (``K``).
    alpha:
        Symmetric document-topic Dirichlet prior.  The conventional
        ``50 / K`` heuristic is used when not given.
    beta:
        Symmetric topic-word Dirichlet prior.
    iterations:
        Gibbs sweeps over the corpus during :meth:`fit`.
    seed:
        Seed or generator controlling the sampler.

    Examples
    --------
    >>> docs = [[0, 0, 1], [1, 1, 0], [2, 3, 2], [3, 2, 3]]
    >>> lda = LatentDirichletAllocation(num_topics=2, vocab_size=4, seed=0)
    >>> _ = lda.fit(docs)
    >>> lda.topic_word_.shape
    (2, 4)
    """

    def __init__(
        self,
        num_topics: int,
        vocab_size: int,
        *,
        alpha: float | None = None,
        beta: float = 0.01,
        iterations: int = 50,
        seed: int | np.random.Generator | None = None,
    ):
        if num_topics < 1:
            raise ValueError(f"num_topics must be >= 1, got {num_topics}")
        if vocab_size < 1:
            raise ValueError(f"vocab_size must be >= 1, got {vocab_size}")
        self.num_topics = int(num_topics)
        self.vocab_size = int(vocab_size)
        self.alpha = check_positive(
            alpha if alpha is not None else 50.0 / num_topics, "alpha"
        )
        self.beta = check_positive(beta, "beta")
        self.iterations = int(iterations)
        self._rng = as_rng(seed)
        # Populated by fit():
        self.topic_word_: np.ndarray | None = None  # (K, V) point estimate
        self.doc_topic_: np.ndarray | None = None  # (D, K) point estimate

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, documents: list[list[int] | np.ndarray]) -> "LatentDirichletAllocation":
        """Run collapsed Gibbs sampling over ``documents`` (lists of word ids)."""
        docs = [np.asarray(d, dtype=np.int64) for d in documents]
        for d in docs:
            if d.size and (d.min() < 0 or d.max() >= self.vocab_size):
                raise ValueError("document contains word ids outside the vocabulary")
        num_docs = len(docs)
        n_dk = np.zeros((num_docs, self.num_topics), dtype=np.int64)
        n_kw = np.zeros((self.num_topics, self.vocab_size), dtype=np.int64)
        n_k = np.zeros(self.num_topics, dtype=np.int64)

        # Random topic initialization for every token.
        assignments: list[np.ndarray] = []
        for doc_idx, words in enumerate(docs):
            z = self._rng.integers(0, self.num_topics, size=words.size)
            assignments.append(z)
            np.add.at(n_dk[doc_idx], z, 1)
            np.add.at(n_kw, (z, words), 1)
            np.add.at(n_k, z, 1)

        v_beta = self.vocab_size * self.beta
        for _ in range(self.iterations):
            for doc_idx, words in enumerate(docs):
                z = assignments[doc_idx]
                doc_counts = n_dk[doc_idx]
                for pos in range(words.size):
                    word = words[pos]
                    old_topic = z[pos]
                    # remove the token from the counts
                    doc_counts[old_topic] -= 1
                    n_kw[old_topic, word] -= 1
                    n_k[old_topic] -= 1
                    # collapsed conditional
                    probs = (doc_counts + self.alpha) * (
                        n_kw[:, word] + self.beta
                    ) / (n_k + v_beta)
                    probs /= probs.sum()
                    new_topic = int(self._rng.choice(self.num_topics, p=probs))
                    # add it back under the new topic
                    z[pos] = new_topic
                    doc_counts[new_topic] += 1
                    n_kw[new_topic, word] += 1
                    n_k[new_topic] += 1

        self.topic_word_ = (n_kw + self.beta) / (
            n_k[:, None] + v_beta
        )
        doc_totals = n_dk.sum(axis=1, keepdims=True)
        self.doc_topic_ = (n_dk + self.alpha) / (
            doc_totals + self.num_topics * self.alpha
        )
        return self

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def transform(
        self, documents: list[list[int] | np.ndarray], *, iterations: int = 20
    ) -> np.ndarray:
        """Fold-in inference: per-document topic distributions for new docs.

        Holds ``topic_word_`` fixed and Gibbs-samples only the new documents'
        topic assignments.  An empty document gets the uniform distribution.
        """
        if self.topic_word_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        out = np.full(
            (len(documents), self.num_topics), 1.0 / self.num_topics, dtype=float
        )
        for doc_idx, raw in enumerate(documents):
            words = np.asarray(raw, dtype=np.int64)
            if words.size == 0:
                continue
            z = self._rng.integers(0, self.num_topics, size=words.size)
            counts = np.bincount(z, minlength=self.num_topics).astype(np.int64)
            word_topic = self.topic_word_[:, words]  # (K, n)
            for _ in range(iterations):
                for pos in range(words.size):
                    counts[z[pos]] -= 1
                    probs = (counts + self.alpha) * word_topic[:, pos]
                    probs /= probs.sum()
                    new_topic = int(self._rng.choice(self.num_topics, p=probs))
                    z[pos] = new_topic
                    counts[new_topic] += 1
            out[doc_idx] = (counts + self.alpha) / (
                words.size + self.num_topics * self.alpha
            )
        return out

    def perplexity(self, documents: list[list[int] | np.ndarray]) -> float:
        """Corpus perplexity under the fitted point estimates (lower = better)."""
        if self.topic_word_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        theta = self.transform(documents)
        log_likelihood = 0.0
        token_count = 0
        for doc_idx, raw in enumerate(documents):
            words = np.asarray(raw, dtype=np.int64)
            if words.size == 0:
                continue
            word_probs = theta[doc_idx] @ self.topic_word_[:, words]
            log_likelihood += float(np.log(np.maximum(word_probs, 1e-300)).sum())
            token_count += words.size
        if token_count == 0:
            return float("nan")
        return float(np.exp(-log_likelihood / token_count))
