"""Vocabulary: a bidirectional word <-> id map with corpus term statistics.

Serves two consumers:

* :class:`repro.text.lda.LatentDirichletAllocation` needs dense word ids;
* :class:`repro.text.style.StyleExtractor` needs whole-corpus term frequencies
  to find each user's *least-used* unique words (Section 5.3).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

import numpy as np

__all__ = ["Vocabulary"]


class Vocabulary:
    """Append-only word index with document and term frequencies.

    Examples
    --------
    >>> vocab = Vocabulary()
    >>> vocab.add_document(["apple", "banana", "apple"])
    >>> vocab.term_frequency("apple")
    2
    >>> vocab.encode(["apple", "banana"]).tolist()
    [0, 1]
    """

    def __init__(self) -> None:
        self._word_to_id: dict[str, int] = {}
        self._id_to_word: list[str] = []
        self._term_freq: Counter[str] = Counter()
        self._doc_freq: Counter[str] = Counter()
        self._num_documents = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_word(self, word: str) -> int:
        """Insert ``word`` if new; return its integer id."""
        word_id = self._word_to_id.get(word)
        if word_id is None:
            word_id = len(self._id_to_word)
            self._word_to_id[word] = word_id
            self._id_to_word.append(word)
        return word_id

    def add_document(self, tokens: Iterable[str]) -> None:
        """Register a tokenized document, updating term/document frequencies."""
        tokens = list(tokens)
        self._num_documents += 1
        for word in tokens:
            self.add_word(word)
            self._term_freq[word] += 1
        for word in set(tokens):
            self._doc_freq[word] += 1

    def add_corpus(self, documents: Iterable[Iterable[str]]) -> None:
        """Register every document in ``documents``."""
        for doc in documents:
            self.add_document(doc)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_word)

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_word)

    @property
    def num_documents(self) -> int:
        """Number of documents registered via :meth:`add_document`."""
        return self._num_documents

    def word_id(self, word: str) -> int:
        """Return the id of ``word``; raises :class:`KeyError` if unknown."""
        return self._word_to_id[word]

    def word(self, word_id: int) -> str:
        """Return the word with id ``word_id``."""
        return self._id_to_word[word_id]

    def term_frequency(self, word: str) -> int:
        """Corpus-wide occurrence count of ``word`` (0 if unknown)."""
        return self._term_freq.get(word, 0)

    def document_frequency(self, word: str) -> int:
        """Number of documents containing ``word`` (0 if unknown)."""
        return self._doc_freq.get(word, 0)

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, tokens: Iterable[str], *, skip_unknown: bool = False) -> np.ndarray:
        """Map tokens to an int array of word ids.

        With ``skip_unknown`` the encoder drops out-of-vocabulary tokens
        instead of raising, which is what inference on unseen text needs.
        """
        ids = []
        for word in tokens:
            word_id = self._word_to_id.get(word)
            if word_id is None:
                if skip_unknown:
                    continue
                raise KeyError(f"word not in vocabulary: {word!r}")
            ids.append(word_id)
        return np.asarray(ids, dtype=np.int64)

    def rarest_words(self, tokens: Iterable[str], k: int) -> list[str]:
        """Return up to ``k`` distinct tokens sorted by ascending corpus frequency.

        Ties are broken alphabetically so the result is deterministic.  This is
        the primitive behind the paper's "k most unique words" style feature.
        """
        distinct = sorted(set(tokens))
        distinct.sort(key=lambda w: (self.term_frequency(w), w))
        return distinct[:k]
