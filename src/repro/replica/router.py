"""Freshness-aware read routing across follower replicas.

:class:`ReplicaRouter` lives inside the *primary's* gateway.  Each
eligible read (``GET /top_k``, ``POST /score_pairs``,
``POST /link_account``) asks :meth:`pick` for a backend: a round-robin
rotation over the configured follower endpoints **plus one local slot**
(``None``), so a primary with two followers answers ~1/3 of reads
itself and forwards the rest.  Forwarded calls reuse pooled
:class:`~repro.gateway.client.GatewayClient` connections on a thread
pool; the gateway awaits them without blocking its event loop.

Freshness: the router remembers each follower's newest observed
registry epoch (monotone, updated from every forwarded response and
``/replicas`` probe) and :meth:`pick` skips followers not yet known to
have reached the request's ``min_epoch`` floor — such reads fall
through to the primary, which is never stale.

Failure: a connection-level error marks the endpoint dead and the read
is re-answered locally (the caller retries local on
:class:`ReplicaUnavailable`), so a SIGKILLed follower costs zero failed
client requests.  Dead endpoints re-enter the rotation after
``retry_dead_seconds`` (half-open: one probe forward re-marks or
revives them).  A follower answering 412 (stale for the requested
floor) is *not* dead — the read just falls back locally; the epoch
estimate corrects on the next observation.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.gateway.client import GatewayClient, GatewayError, parse_endpoint

__all__ = ["ReplicaRouter", "ReplicaUnavailable"]

# read operations the router may forward, mapped to client methods
_FORWARDABLE = ("top_k", "score_pairs", "link_account")


class ReplicaUnavailable(RuntimeError):
    """The chosen follower could not answer; re-answer locally."""


class _Endpoint:
    """Per-follower connection pool, health, and freshness state."""

    def __init__(self, host: str, port: int, timeout: float):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.alive = True
        self.dead_since: float | None = None
        self.known_epoch = -1  # newest registry epoch observed
        self.forwards = 0
        self.errors = 0
        self.stale_skips = 0
        self._pool: queue.SimpleQueue = queue.SimpleQueue()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def acquire(self) -> GatewayClient:
        try:
            return self._pool.get_nowait()
        except queue.Empty:
            # forwarded calls never retry: a dead follower should fail
            # fast so the read can fall back to the primary
            return GatewayClient(
                self.host, self.port, timeout=self.timeout, max_attempts=1
            )

    def release(self, client: GatewayClient) -> None:
        self._pool.put(client)

    def observe_epoch(self, epoch) -> None:
        if isinstance(epoch, int) and epoch > self.known_epoch:
            self.known_epoch = epoch

    def mark_dead(self) -> None:
        self.alive = False
        self.dead_since = time.monotonic()
        self.errors += 1
        while True:
            try:
                self._pool.get_nowait().close()
            except queue.Empty:
                break

    def mark_alive(self) -> None:
        self.alive = True
        self.dead_since = None

    def drain(self) -> None:
        while True:
            try:
                self._pool.get_nowait().close()
            except queue.Empty:
                break


class ReplicaRouter:
    """Round-robin read router over follower endpoints + the primary.

    Parameters
    ----------
    endpoints:
        Follower addresses — ``"host:port"`` strings or ``(host, port)``
        tuples.
    timeout:
        Socket timeout for forwarded calls and status probes.
    retry_dead_seconds:
        How long a dead endpoint sits out before one half-open forward
        probes it again.
    """

    def __init__(
        self,
        endpoints,
        *,
        timeout: float = 10.0,
        retry_dead_seconds: float = 2.0,
    ):
        self._endpoints: list[_Endpoint] = []
        for spec in endpoints:
            host, port = (
                parse_endpoint(spec) if isinstance(spec, str)
                else (spec[0], int(spec[1]))
            )
            self._endpoints.append(_Endpoint(host, port, timeout))
        if not self._endpoints:
            raise ValueError("a replica router needs at least one endpoint")
        self.retry_dead_seconds = retry_dead_seconds
        self.local_reads = 0
        self._lock = threading.Lock()
        self._rotation = 0
        self.executor = ThreadPoolExecutor(
            max_workers=max(8, 4 * len(self._endpoints)),
            thread_name_prefix="replica-router",
        )

    # ------------------------------------------------------------------
    def pick(self, min_epoch: int | None = None) -> _Endpoint | None:
        """Choose a backend for one read; ``None`` means answer locally.

        The rotation has ``len(endpoints) + 1`` slots — every follower
        plus the primary — so local capacity stays in the read pool.
        Followers are eligible when alive (or due a half-open probe) and,
        given a ``min_epoch`` floor, known to have reached it.
        """
        with self._lock:
            slots = len(self._endpoints) + 1
            for _ in range(slots):
                slot = self._rotation % slots
                self._rotation += 1
                if slot == len(self._endpoints):
                    self.local_reads += 1
                    return None
                endpoint = self._endpoints[slot]
                if not endpoint.alive:
                    if (
                        endpoint.dead_since is None
                        or time.monotonic() - endpoint.dead_since
                        < self.retry_dead_seconds
                    ):
                        continue
                    # half-open: let this one forward probe it
                elif (
                    min_epoch is not None
                    and endpoint.known_epoch < min_epoch
                ):
                    endpoint.stale_skips += 1
                    continue
                return endpoint
            self.local_reads += 1
            return None

    def call(self, endpoint: _Endpoint, op: str, kwargs: dict) -> dict:
        """Forward one read to a follower (runs on the router executor).

        Raises :class:`ReplicaUnavailable` when the follower cannot
        serve it (connection failure → marked dead; 412 → stale for the
        requested floor); the caller then answers locally.
        """
        if op not in _FORWARDABLE:
            raise ValueError(f"operation {op!r} is not forwardable")
        client = endpoint.acquire()
        try:
            response = getattr(client, op)(**kwargs)
        except GatewayError as error:
            endpoint.release(client)
            if error.status == 412:
                # honest lag, not death: local read satisfies the floor
                endpoint.stale_skips += 1
                raise ReplicaUnavailable(
                    f"{endpoint.address} stale: {error}"
                ) from error
            if error.status in (429, 503):
                raise ReplicaUnavailable(
                    f"{endpoint.address} shedding load: {error}"
                ) from error
            raise  # 4xx the primary would also produce: surface as-is
        except Exception as error:
            client.close()
            endpoint.mark_dead()
            raise ReplicaUnavailable(
                f"{endpoint.address} unreachable: {error}"
            ) from error
        endpoint.mark_alive()
        endpoint.forwards += 1
        endpoint.observe_epoch(response.get("epoch"))
        endpoint.release(client)
        return response

    # ------------------------------------------------------------------
    def status(self) -> list[dict]:
        """Probe every follower's ``/healthz`` concurrently; merge state.

        Dead/unreachable followers still get a row (``alive: False``)
        so ``/replicas`` stays honest about a killed process.
        """

        def probe(endpoint: _Endpoint) -> dict:
            row = {
                "endpoint": endpoint.address,
                "alive": False,
                "epoch": None,
                "lag_records": None,
                "lag_seconds": None,
                "pid": None,
                "known_epoch": endpoint.known_epoch,
                "forwards": endpoint.forwards,
                "errors": endpoint.errors,
                "stale_skips": endpoint.stale_skips,
            }
            client = endpoint.acquire()
            try:
                health = client.healthz()
            except Exception:
                client.close()
                endpoint.mark_dead()
                return row
            endpoint.mark_alive()
            endpoint.release(client)
            replica = health.get("replica") or {}
            epoch = health.get("epoch")
            endpoint.observe_epoch(epoch)
            row.update(
                alive=True,
                epoch=epoch,
                lag_records=replica.get("lag_records"),
                lag_seconds=replica.get("lag_seconds"),
                pid=replica.get("pid", health.get("pid")),
                known_epoch=endpoint.known_epoch,
            )
            return row

        futures = [
            self.executor.submit(probe, endpoint)
            for endpoint in self._endpoints
        ]
        return [future.result() for future in futures]

    def snapshot(self) -> dict:
        """Router counters without touching the network."""
        return {
            "local_reads": self.local_reads,
            "endpoints": [
                {
                    "endpoint": endpoint.address,
                    "alive": endpoint.alive,
                    "known_epoch": endpoint.known_epoch,
                    "forwards": endpoint.forwards,
                    "errors": endpoint.errors,
                    "stale_skips": endpoint.stale_skips,
                }
                for endpoint in self._endpoints
            ],
        }

    @property
    def endpoints(self) -> list[_Endpoint]:
        return list(self._endpoints)

    def close(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)
        for endpoint in self._endpoints:
            endpoint.drain()
