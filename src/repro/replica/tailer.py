"""Following a live WAL directory through a durable cursor.

:class:`WalTailer` is the thin stateful wrapper a follower replica (or
any incremental consumer) keeps around :func:`repro.wal.tail.tail_read`:
it remembers the in-memory read frontier between polls, loads the
persisted frontier back from its cursor file on construction, and
separates *reading* (``poll`` — advance the in-memory cursor) from
*committing* (``commit`` — fsync the cursor to disk once the records it
covers are durably applied).  Keeping those separate is the whole
correctness story of replica restart: the cursor file must never run
ahead of the applied state, or a restarted follower would silently skip
records.

The tailer is **not** thread-safe; callers serialize access
(:class:`~repro.replica.follower.FollowerService` holds its own lock
around every poll/apply/commit).
"""

from __future__ import annotations

from pathlib import Path

from repro.wal.log import WalRecord
from repro.wal.tail import WalCursor, load_cursor, save_cursor, tail_read

__all__ = ["WalTailer"]


class WalTailer:
    """Incrementally read a (possibly live) WAL directory.

    Parameters
    ----------
    wal_dir:
        The primary's log directory (``{index:08d}.wal`` segments).  It
        may be empty, or not exist yet — polls return nothing until the
        writer creates it.
    cursor_path:
        Where to persist the read frontier.  ``None`` disables
        persistence (``commit`` becomes a no-op) — fine for one-shot
        consumers, wrong for a restartable follower.
    resume:
        When True (the default) and the cursor file exists, start from
        it; :attr:`resumed` records whether that happened.  When False
        the tailer starts from the log's beginning regardless (the
        cursor file is only overwritten on the next ``commit``).
    """

    def __init__(self, wal_dir, cursor_path=None, *, resume: bool = True):
        self.wal_dir = Path(wal_dir)
        self.cursor_path = Path(cursor_path) if cursor_path else None
        self._cursor = WalCursor()
        self._committed = WalCursor()
        self._resumed = False
        self._last_torn = False
        if resume and self.cursor_path is not None:
            persisted = load_cursor(self.cursor_path)
            if persisted is not None:
                self._cursor = persisted
                self._committed = persisted
                self._resumed = True

    # ------------------------------------------------------------------
    @property
    def cursor(self) -> WalCursor:
        """The in-memory read frontier (advanced by :meth:`poll`)."""
        return self._cursor

    @property
    def committed(self) -> WalCursor:
        """The durably persisted frontier (advanced by :meth:`commit`)."""
        return self._committed

    @property
    def resumed(self) -> bool:
        """True when construction restored a persisted cursor."""
        return self._resumed

    @property
    def last_torn(self) -> bool:
        """Whether the latest poll stopped at an incomplete tail."""
        return self._last_torn

    # ------------------------------------------------------------------
    def poll(self) -> tuple[WalRecord, ...]:
        """Read records appended since the last poll; advance the cursor.

        Returns an empty tuple when caught up (or when the log directory
        does not exist yet).  A torn/in-flight tail is not an error: the
        cursor parks before it and the next poll retries
        (:attr:`last_torn` reports the condition).
        """
        if not self.wal_dir.is_dir():
            self._last_torn = False
            return ()
        batch = tail_read(self.wal_dir, self._cursor)
        self._cursor = batch.cursor
        self._last_torn = batch.torn
        return batch.records

    def commit(self, cursor: WalCursor | None = None) -> None:
        """Durably persist the read frontier (or an explicit ``cursor``).

        Call only after the records up to that frontier have been
        applied; a committed cursor is where a restarted tailer resumes.
        """
        target = cursor if cursor is not None else self._cursor
        if self.cursor_path is not None:
            save_cursor(target, self.cursor_path)
        self._committed = target

    def seek(self, cursor: WalCursor) -> None:
        """Reposition the in-memory frontier (e.g. to a checkpoint's).

        Does not touch the cursor file — pair with :meth:`commit` when
        the new position is also the durable truth.
        """
        self._cursor = cursor
        self._last_torn = False
