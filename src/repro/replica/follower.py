"""A read-only replica that stays current by tailing the primary's WAL.

:class:`FollowerService` wraps a private
:class:`~repro.serving.LinkageService` built from the primary's artifact
and keeps it current by replaying the WAL's effective mutations through
the exact machinery crash recovery uses
(:func:`repro.wal.recovery.replay_records`).  Because replay applies the
very account payloads the primary logged, adopts the logged epochs, and
the follower scores with the same batch chunking, every read —
``score_pairs``, ``top_k``, ``link_account``, exact or approximate — is
**bit-identical to the primary at the same registry epoch**.

The one ordering hazard is the primary's write-ahead discipline: a
record is logged *before* it applies, and a failed apply appends an
``abort``.  A poll landing between the two would hand the follower a
mutation the primary rolled back.  Three defenses, cheapest first:

* in-batch cancellation — an abort arriving in the same batch as its
  target silently annihilates it before anything applies;
* apply-one-record-at-a-time — a record whose apply raises stays at the
  head of the pending queue (the primary's own apply failed the same
  way, so its abort is already in the log and cancels the record on the
  next poll);
* full resync — an abort targeting an *already applied* epoch (or a
  record that keeps failing) means the follower acted on rolled-back
  history: reload the source artifact and replay one atomic tail read
  from the log's beginning.  Rare, expensive, always correct.

Writes are rejected with :class:`ReplicaReadOnlyError` — the gateway
also refuses them up front (409) so a follower endpoint never mutates.

Restart durability: the follower commits its cursor after every applied
batch and (optionally, ``checkpoint_every``) persists its caught-up
linker as a checkpoint artifact plus a manifest.  On construction a
valid checkpoint short-circuits bootstrap — load it, seek the tailer to
the manifest's cursor, replay only the delta.  Correctness never
depends on the checkpoint: any validation failure falls back to a full
bootstrap from the source artifact at cursor zero, and epoch-based
replay (`after_epoch`) makes re-reading old records a no-op.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from pathlib import Path

from repro.persist.artifact import artifact_exists, save_linker
from repro.serving.service import LinkageService
from repro.wal.log import WalRecord
from repro.wal.recovery import replay_records
from repro.wal.tail import WalCursor, tail_read
from repro.replica.tailer import WalTailer

__all__ = ["FollowerService", "ReplicaReadOnlyError"]

_CURSOR_FILE = "cursor.json"
_MANIFEST_FILE = "manifest.json"
_CHECKPOINT_DIR = "checkpoint"

# consecutive apply failures of the same head record before concluding
# no abort is coming and resyncing from the source artifact
_HEAD_FAILURE_LIMIT = 3


class ReplicaReadOnlyError(RuntimeError):
    """A mutation was attempted on a follower replica."""


def _cancel_aborts(records, applied_epoch: int):
    """Resolve abort records against a pending batch.

    Returns ``(effective, resync_needed)`` — ``resync_needed`` is True
    when an abort targets an epoch at or below ``applied_epoch``,
    meaning this follower applied a mutation the primary rolled back.
    """
    effective: list[WalRecord] = []
    for record in records:
        if record.op != "abort":
            effective.append(record)
        elif effective and effective[-1].epoch == record.epoch:
            effective.pop()
        elif record.epoch <= applied_epoch:
            return effective, True
        # else: abort of a record this follower never saw applied — the
        # primary cancelled it before we read it; nothing to undo
    return effective, False


class FollowerService:
    """Read surface of :class:`LinkageService`, fed by tailing a WAL.

    Parameters
    ----------
    artifact:
        The primary's persisted artifact — the replay base.
    wal_dir:
        The primary's live WAL directory to tail.
    state_dir:
        Follower-private directory for the cursor file, checkpoint
        artifact, and manifest.  ``None`` keeps everything in memory
        (no restart resume).
    checkpoint_every:
        Persist a checkpoint after this many newly applied records
        (requires ``state_dir``); ``None`` disables checkpointing.
    poll:
        When True (default), catch up with the log once during
        construction.
    service_kwargs:
        Forwarded to :meth:`LinkageService.from_artifact` — must match
        the primary's (notably ``batch_size``) for bit-identical reads.
    """

    is_follower = True

    def __init__(
        self,
        artifact,
        wal_dir,
        *,
        state_dir=None,
        checkpoint_every: int | None = None,
        poll: bool = True,
        **service_kwargs,
    ):
        self.artifact = Path(artifact)
        self.wal_dir = Path(wal_dir)
        self.state_dir = Path(state_dir) if state_dir else None
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and self.state_dir is None:
            raise ValueError("checkpoint_every requires a state_dir")
        self.checkpoint_every = checkpoint_every
        self._service_kwargs = dict(service_kwargs)
        self._lock = threading.RLock()
        self._pending: list[WalRecord] = []
        self._head_failures = 0
        self._records_applied = 0
        self._resyncs = 0
        self._resumed = False
        self._checkpoint_epoch: int | None = None
        self._since_checkpoint = 0
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        cursor_path = (
            self.state_dir / _CURSOR_FILE if self.state_dir else None
        )
        self._tailer = WalTailer(self.wal_dir, cursor_path, resume=False)
        self._inner = self._bootstrap()
        self._applied_epoch = self._inner.registry_epoch
        self.base_epoch = self._applied_epoch
        if poll:
            self.poll()
            self.apply_pending()

    # ------------------------------------------------------------------
    # bootstrap / checkpoint
    # ------------------------------------------------------------------
    def _bootstrap(self) -> LinkageService:
        resumed = self._try_resume()
        if resumed is not None:
            self._resumed = True
            return resumed
        self._tailer.seek(WalCursor())
        return LinkageService.from_artifact(
            self.artifact, **self._service_kwargs
        )

    def _try_resume(self) -> LinkageService | None:
        """Load the checkpoint named by a valid manifest, else None."""
        if self.state_dir is None:
            return None
        manifest_path = self.state_dir / _MANIFEST_FILE
        checkpoint = self.state_dir / _CHECKPOINT_DIR
        if not manifest_path.is_file() or not artifact_exists(checkpoint):
            return None
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            cursor = WalCursor(
                segment=int(manifest["cursor"]["segment"]),
                offset=int(manifest["cursor"]["offset"]),
            )
            expected = int(manifest["checkpoint_epoch"])
            service = LinkageService.from_artifact(
                checkpoint, **self._service_kwargs
            )
        except Exception:
            return None
        if service.registry_epoch != expected:
            service.close()
            return None
        self._tailer.seek(cursor)
        self._checkpoint_epoch = expected
        return service

    def checkpoint(self) -> Path:
        """Persist the caught-up linker + manifest for fast restarts.

        Best-effort atomic: the checkpoint directory is staged and
        swapped in, the manifest written last (temp file + rename).  A
        crash mid-swap leaves a manifest/checkpoint mismatch that
        :meth:`_try_resume` detects and ignores.
        """
        if self.state_dir is None:
            raise ValueError("checkpointing requires a state_dir")
        with self._lock:
            target = self.state_dir / _CHECKPOINT_DIR
            staging = self.state_dir / (_CHECKPOINT_DIR + ".tmp")
            if staging.exists():
                shutil.rmtree(staging)
            save_linker(self._inner.linker, staging)
            if target.exists():
                shutil.rmtree(target)
            os.replace(staging, target)
            manifest = {
                "source_artifact": str(self.artifact),
                "wal_dir": str(self.wal_dir),
                "checkpoint_epoch": self._applied_epoch,
                "cursor": self._tailer.committed.as_dict(),
            }
            manifest_path = self.state_dir / _MANIFEST_FILE
            tmp = manifest_path.with_name(_MANIFEST_FILE + ".tmp")
            tmp.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
            os.replace(tmp, manifest_path)
            self._checkpoint_epoch = self._applied_epoch
            self._since_checkpoint = 0
            return target

    # ------------------------------------------------------------------
    # tailing
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Read newly logged records into the pending queue.

        Cheap (one incremental tail read) and safe to call from a
        different thread than :meth:`apply_pending`.  Returns the
        pending-record count.
        """
        with self._lock:
            self._pending.extend(self._tailer.poll())
            return len(self._pending)

    def apply_pending(self) -> int:
        """Replay the pending queue into the inner service.

        Callers that expose reads concurrently must hold their write
        fence around this (the gateway does) — the epoch and scores
        advance together underneath it.  Returns the number of records
        applied (resync counts everything it replayed).
        """
        with self._lock:
            if not self._pending:
                return 0
            effective, resync = _cancel_aborts(
                self._pending, self._applied_epoch
            )
            if resync:
                return self._resync()
            self._pending = effective
            count = 0
            while self._pending:
                record = self._pending[0]
                try:
                    applied, step = replay_records(
                        self._inner, [record],
                        after_epoch=self._applied_epoch,
                    )
                except Exception:
                    # the primary's own apply of this record failed the
                    # same way and its abort is already in the log; wait
                    # for it — unless it never comes, then resync
                    self._head_failures += 1
                    if self._head_failures >= _HEAD_FAILURE_LIMIT:
                        return count + self._resync()
                    break
                self._head_failures = 0
                self._applied_epoch = max(applied, self._applied_epoch)
                self._pending.pop(0)
                count += step
            if not self._pending:
                # read frontier == applied frontier: safe to persist
                self._tailer.commit()
            self._records_applied += count
            self._since_checkpoint += count
            if (
                self.checkpoint_every is not None
                and self._since_checkpoint >= self.checkpoint_every
                and not self._pending
            ):
                self.checkpoint()
            return count

    def _resync(self) -> int:
        """Rebuild from the source artifact + one atomic full tail read."""
        fresh = LinkageService.from_artifact(
            self.artifact, **self._service_kwargs
        )
        if self.wal_dir.is_dir():
            batch = tail_read(self.wal_dir, WalCursor())
            effective, _ = _cancel_aborts(batch.records, -1)
            applied, count = replay_records(
                fresh, effective, after_epoch=fresh.registry_epoch
            )
            cursor = batch.cursor
        else:
            applied, count, cursor = fresh.registry_epoch, 0, WalCursor()
        stale = self._inner
        self._inner = fresh
        self._applied_epoch = max(applied, fresh.registry_epoch)
        self._pending.clear()
        self._head_failures = 0
        self._tailer.seek(cursor)
        self._tailer.commit(cursor)
        self._records_applied += count
        self._since_checkpoint += count
        self._resyncs += 1
        stale.close()
        return count

    def status(self, *, poll: bool = True) -> dict:
        """Replication health: epoch, lag, cursor, counters."""
        with self._lock:
            if poll:
                self.poll()
            lag_seconds = 0.0
            if self._pending:
                oldest = self._pending[0].ts
                if oldest is not None:
                    lag_seconds = max(0.0, time.time() - oldest)
            return {
                "epoch": self._inner.registry_epoch,
                "base_epoch": self.base_epoch,
                "lag_records": len(self._pending),
                "lag_seconds": round(lag_seconds, 6),
                "records_applied": self._records_applied,
                "resyncs": self._resyncs,
                "resumed": self._resumed,
                "checkpoint_epoch": self._checkpoint_epoch,
                "torn_tail": self._tailer.last_torn,
                "cursor": self._tailer.committed.as_dict(),
                "pid": os.getpid(),
            }

    # ------------------------------------------------------------------
    # read surface (delegates to the inner service)
    # ------------------------------------------------------------------
    @property
    def registry_epoch(self) -> int:
        return self._inner.registry_epoch

    @property
    def world(self):
        return self._inner.world

    @property
    def linker(self):
        return self._inner.linker

    @property
    def wal(self):
        return None

    def platform_pairs(self):
        return self._inner.platform_pairs()

    def num_candidates(self) -> int:
        return self._inner.num_candidates()

    def candidate_pairs(self, key):
        return self._inner.candidate_pairs(key)

    def score_pairs(self, pairs, **kwargs):
        return self._inner.score_pairs(pairs, **kwargs)

    def score_pairs_grouped(self, groups, **kwargs):
        return self._inner.score_pairs_grouped(groups, **kwargs)

    def top_k(self, platform_a, platform_b, k=10, **kwargs):
        return self._inner.top_k(platform_a, platform_b, k, **kwargs)

    def link_account(self, platform, account_id, **kwargs):
        return self._inner.link_account(platform, account_id, **kwargs)

    def account_summary(self, ref):
        return self._inner.account_summary(ref)

    def behavior_distance(self, ref_a, ref_b) -> float:
        return self._inner.behavior_distance(ref_a, ref_b)

    def behavior_distances(self, pairs):
        return self._inner.behavior_distances(pairs)

    def stats(self):
        return self._inner.stats()

    # ------------------------------------------------------------------
    # write surface (rejected)
    # ------------------------------------------------------------------
    def add_accounts(self, *args, **kwargs):
        raise ReplicaReadOnlyError(
            "follower replicas are read-only; send writes to the primary"
        )

    def remove_account(self, *args, **kwargs):
        raise ReplicaReadOnlyError(
            "follower replicas are read-only; send writes to the primary"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._inner.close()

    def close_wal(self) -> None:
        """Follower services never attach a WAL; nothing to close."""

    def __enter__(self) -> "FollowerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
