"""Follower replicas over the ingest WAL: horizontal read scale-out.

The serving tier's read traffic (``top_k`` / ``link_account`` /
``score_pairs``) dwarfs its writes, yet durability (:mod:`repro.wal`)
and data sharding (:mod:`repro.shard`) still funnel every read through
the one process that owns the registry.  This package adds the
replication half of the WAL work (ROADMAP: "Follower replicas over the
ingest WAL"):

* :class:`WalTailer` — incrementally follows a primary's WAL directory
  through a durable ``(segment, offset)`` cursor
  (:mod:`repro.wal.tail`), tolerating in-progress tails and rotation
  races, and resuming from its cursor file after a restart;
* :class:`FollowerService` — bootstraps from the primary's artifact (or
  its own checkpoint), replays the effective logged mutations through
  the same machinery as crash recovery, and exposes the read surface of
  :class:`~repro.serving.LinkageService` with responses **bit-identical
  to the primary at the same registry epoch** (writes raise
  :class:`ReplicaReadOnlyError`);
* :class:`ReplicaRouter` — the primary gateway's read router: spreads
  read traffic across follower endpoints (primary included in the
  rotation), honors ``X-Min-Epoch`` freshness floors by skipping
  lagging followers, half-opens dead ones, and feeds the ``/replicas``
  status endpoint.

Run a follower with ``repro replica --artifact A --wal DIR`` (or
``repro serve --replica-of DIR``), and point the primary at it with
``repro serve --read-replicas host:port,...``.
"""

from repro.replica.follower import FollowerService, ReplicaReadOnlyError
from repro.replica.router import ReplicaRouter
from repro.replica.tailer import WalTailer

__all__ = [
    "FollowerService",
    "ReplicaReadOnlyError",
    "ReplicaRouter",
    "WalTailer",
]
