"""On-disk artifact format for fitted linkers.

An artifact is a directory with exactly two files:

``manifest.json``
    Format tag + version, the linker's hyper-parameter config, the candidate
    index (every candidate set with its rule evidence and pre-matches), the
    global row layout, per-block metadata, scalar model state, and feature
    names — everything human-inspectable.

``arrays.npz``
    The numeric state: the dual model's training matrix / expansion
    coefficients, each consistency block's ``M`` / ``D`` / index arrays, and
    one opaque ``state`` blob (a pickled ``{world, pipeline, filler}`` dict
    stored as a ``uint8`` array) carrying the fitted feature-pipeline caches
    and the social world they refer to.  The blob is pickled as a single
    object graph so the pipeline, the missing-value filler, and the world
    keep their shared references on reload.  The pipeline's packed account
    store (the batch featurization engine's array state, see
    :mod:`repro.features.batch`) rides inside the blob, and the manifest's
    ``packed_store`` section records its shape facts; :func:`load_linker`
    verifies the store arrived (rebuilding it for pre-batch-engine blobs) so
    a loaded service scores without re-packing.

Versioning is strict: :func:`load_linker` refuses artifacts whose ``format``
or ``version`` it does not understand, so stale artifacts fail loudly
instead of mis-scoring.  The ``state`` blob additionally records the
``repro`` release that wrote it; a release mismatch on load raises a
:class:`UserWarning` because pickled object layouts track the library code,
not the artifact format number.

.. warning::
   The ``state`` blob is a pickle: only load artifacts you (or your
   pipeline) wrote.  Unpickling an untrusted artifact can execute
   arbitrary code.
"""

from __future__ import annotations

import json
import pickle
import warnings
from pathlib import Path

import numpy as np

from repro.core.candidates import CandidateSet
from repro.core.consistency import ConsistencyBlock
from repro.core.hydra import HydraLinker
from repro.core.moo import MooConfig, MultiObjectiveModel
from repro.core.qp import QPResult

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "HEAD_FORMAT",
    "HEAD_VERSION",
    "ArtifactError",
    "artifact_exists",
    "artifact_summary",
    "load_linker",
    "load_scoring_head",
    "save_linker",
    "save_scoring_head",
]

ARTIFACT_FORMAT = "hydra-linker"
ARTIFACT_VERSION = 1

#: A scoring head is the decision function alone — kernel config + dual
#: expansion arrays + bias + feature names — with no pickled world/pipeline
#: state.  The sharded router loads one to score feature rows the shards
#: featurized, so the gateway process never unpickles a state blob.
HEAD_FORMAT = "hydra-scoring-head"
HEAD_VERSION = 1

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"
_HEAD_MANIFEST = "head.json"
_HEAD_ARRAYS = "head_arrays.npz"


class ArtifactError(RuntimeError):
    """Raised for unreadable, incomplete, or incompatible artifacts."""


def artifact_exists(path) -> bool:
    """True when ``path`` holds a complete artifact (both files present).

    A cheap existence probe — no version validation, no loading.  Parallel
    serving uses it to decide whether worker processes can initialize from
    disk or must receive the fitted objects directly.
    """
    path = Path(path)
    return (path / _MANIFEST).is_file() and (path / _ARRAYS).is_file()


# ----------------------------------------------------------------------
# json helpers: pairs are ((platform, id), (platform, id)) tuples
# ----------------------------------------------------------------------
def _pair_to_json(pair) -> list:
    return [list(pair[0]), list(pair[1])]


def _pair_from_json(data) -> tuple:
    return (tuple(data[0]), tuple(data[1]))


def _candidates_to_json(candidates: dict) -> list[dict]:
    out = []
    for key in sorted(candidates):
        cand = candidates[key]
        out.append(
            {
                "platform_a": cand.platform_a,
                "platform_b": cand.platform_b,
                "pairs": [_pair_to_json(p) for p in cand.pairs],
                "evidence": [sorted(rules) for rules in cand.evidence],
                "prematched": list(cand.prematched),
            }
        )
    return out


def _candidates_from_json(data: list[dict]) -> dict:
    out = {}
    for entry in data:
        cand = CandidateSet(
            platform_a=entry["platform_a"],
            platform_b=entry["platform_b"],
            pairs=[_pair_from_json(p) for p in entry["pairs"]],
            evidence=[frozenset(rules) for rules in entry["evidence"]],
            prematched=list(entry["prematched"]),
        )
        out[(cand.platform_a, cand.platform_b)] = cand
    return out


def _packed_store_summary(pipeline) -> dict | None:
    """Manifest facts about the pipeline's packed account store."""
    packed = getattr(pipeline, "_packed", None)
    if packed is None:
        return None
    return {
        "num_accounts": packed.num_accounts,
        "topic_scales": list(packed.topic_scales),
        "sensor_kinds": list(packed.sensor_kinds),
        "sensor_scales": list(packed.sensor_scales),
        "style_ks": list(packed.style_ks),
    }


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def save_linker(
    linker: HydraLinker, path, *, extra_manifest: dict | None = None
) -> Path:
    """Write a fitted linker to the artifact directory ``path``.

    The directory is created if needed; existing artifact files are
    overwritten.  Returns the artifact path.

    ``extra_manifest`` merges additional top-level sections into the
    manifest (e.g. the shard planner's ``shard`` section recording the
    shard's index and served account set); keys must not collide with the
    standard sections.
    """
    if linker.model_ is None or linker._filler is None or linker._world is None:
        raise ArtifactError("linker is not fitted; fit() before save()")
    model = linker.model_
    if model.x_train_ is None or model.alpha_ is None:
        raise ArtifactError("fitted model is missing its dual expansion state")

    from repro import __version__  # lazy: repro.__init__ re-exports this module

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    builder = linker.consistency_builder
    qp = model.qp_result_
    manifest = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "repro_version": __version__,
        "config": {
            "moo": {
                "gamma_l": model.config.gamma_l,
                "gamma_m": model.config.gamma_m,
                "p": model.config.p,
                "kernel": model.config.kernel,
                "kernel_params": dict(model.config.kernel_params),
                "max_smo_iterations": model.config.max_smo_iterations,
                "smo_tol": model.config.smo_tol,
                "reweight_iterations": model.config.reweight_iterations,
                "jitter": model.config.jitter,
            },
            "consistency": {
                "sigma1": builder.sigma1,
                "sigma1_scale": builder.sigma1_scale,
                "sigma2": builder.sigma2,
                "max_hops": builder.max_hops,
            },
            "missing_strategy": linker.missing_strategy,
            "threshold": linker.threshold,
            "one_to_one": linker.one_to_one,
            "use_prematched": linker.use_prematched,
            "seed": linker.seed,
        },
        "platform_pairs": [list(p) for p in linker.platform_pairs_],
        "num_labeled": linker.num_labeled_,
        "global_pairs": [_pair_to_json(p) for p in linker.global_pairs_],
        "candidates": _candidates_to_json(linker.candidates_),
        "blocks": [
            {
                "platform_a": block.platform_a,
                "platform_b": block.platform_b,
                "weight": block.weight,
            }
            for block in linker.blocks_
        ],
        "model": {
            "bias": model.bias_,
            "objective_values": list(model.objective_values_),
            "qp": (
                {
                    "objective": qp.objective,
                    "iterations": qp.iterations,
                    "support_fraction": qp.support_fraction,
                }
                if qp is not None
                else None
            ),
        },
        "feature_names": list(linker.pipeline.feature_names),
        "packed_store": _packed_store_summary(linker.pipeline),
        "stage_timings": dict(linker.stage_timings_),
        # online-ingestion provenance: a non-zero epoch marks a linker whose
        # serving registry (accounts, candidate sets) was mutated after fit
        "ingest": {
            "epoch": getattr(linker, "ingest_epoch_", 0),
        },
    }
    # fit-time Nyström landmark selection (repro.approx) rides in the
    # artifact so a reload serves the approximate path without reselecting
    fast_scorer = getattr(linker, "fast_scorer_", None)
    if fast_scorer is not None:
        manifest["approx"] = fast_scorer.manifest_entry()
    if extra_manifest:
        collisions = set(extra_manifest) & set(manifest)
        if collisions:
            raise ArtifactError(
                f"extra_manifest collides with standard sections: "
                f"{sorted(collisions)}"
            )
        manifest.update(extra_manifest)
    (path / _MANIFEST).write_text(json.dumps(manifest, indent=2, sort_keys=True))

    arrays: dict[str, np.ndarray] = {
        "model_x_train": model.x_train_,
        "model_alpha": model.alpha_,
        "model_beta": model.beta_ if model.beta_ is not None else np.zeros(0),
    }
    for i, block in enumerate(linker.blocks_):
        arrays[f"block_{i}_m"] = block.m
        arrays[f"block_{i}_d"] = block.d
        arrays[f"block_{i}_indices"] = block.indices
    state_blob = pickle.dumps(
        {
            "world": linker._world,
            "pipeline": linker.pipeline,
            "filler": linker._filler,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    arrays["state"] = np.frombuffer(state_blob, dtype=np.uint8)
    if fast_scorer is not None:
        arrays.update(fast_scorer.arrays())
    np.savez_compressed(path / _ARRAYS, **arrays)
    # remember where this linker lives on disk: parallel serving hands the
    # path to worker-process initializers so each worker loads the artifact
    # instead of receiving a pickled copy of the parent's objects
    linker.artifact_path_ = str(path)
    return path


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def _read_manifest(path: Path) -> dict:
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise ArtifactError(f"no artifact manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"corrupt artifact manifest at {manifest_path}: {exc}")
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"unknown artifact format {manifest.get('format')!r} "
            f"(expected {ARTIFACT_FORMAT!r})"
        )
    if manifest.get("version") != ARTIFACT_VERSION:
        raise ArtifactError(
            f"unsupported artifact version {manifest.get('version')!r} "
            f"(this build reads version {ARTIFACT_VERSION})"
        )
    return manifest


def load_linker(path, *, linker_cls: type[HydraLinker] = HydraLinker) -> HydraLinker:
    """Reconstruct a fitted :class:`HydraLinker` from an artifact directory.

    The loaded linker serves :meth:`~repro.core.hydra.HydraLinker.score_pairs`
    and :meth:`~repro.core.hydra.HydraLinker.linkage` with decision values
    bit-identical to the linker that was saved — no refitting happens.
    ``linker_cls`` lets :class:`HydraLinker` subclasses (custom stages or
    query behavior) reload as themselves; it must accept the base
    constructor keywords.
    """
    from repro import __version__

    path = Path(path)
    manifest = _read_manifest(path)
    saved_version = manifest.get("repro_version")
    if saved_version != __version__:
        # the format number guards the manifest/array layout; the pickled
        # state blob tracks library code, so a release skew deserves a
        # loud warning even when the artifact version still matches
        warnings.warn(
            f"artifact at {path} was written by repro {saved_version}; "
            f"this is repro {__version__} — pickled pipeline state may be "
            "incompatible; refit and re-save if scoring misbehaves",
            UserWarning,
            stacklevel=2,
        )
    arrays_path = path / _ARRAYS
    if not arrays_path.is_file():
        raise ArtifactError(f"artifact arrays missing at {arrays_path}")

    with np.load(arrays_path) as arrays:
        state = pickle.loads(arrays["state"].tobytes())
        model_x_train = arrays["model_x_train"]
        model_alpha = arrays["model_alpha"]
        model_beta = arrays["model_beta"]
        block_arrays = [
            (
                arrays[f"block_{i}_m"],
                arrays[f"block_{i}_d"],
                arrays[f"block_{i}_indices"],
            )
            for i in range(len(manifest["blocks"]))
        ]
        fast_scorer = None
        if "approx" in manifest and "approx_landmarks" in arrays:
            from repro.approx import FastScorer

            fast_scorer = FastScorer.from_persisted(manifest["approx"], arrays)

    config = manifest["config"]
    linker = linker_cls(
        missing_strategy=config["missing_strategy"],
        threshold=config["threshold"],
        one_to_one=config["one_to_one"],
        use_prematched=config["use_prematched"],
        sigma1=config["consistency"]["sigma1"],
        sigma1_scale=config["consistency"]["sigma1_scale"],
        sigma2=config["consistency"]["sigma2"],
        max_hops=config["consistency"]["max_hops"],
        seed=config["seed"],
    )
    linker.moo_config = MooConfig(**config["moo"])
    linker.pipeline = state["pipeline"]
    linker._world = state["world"]
    linker._filler = state["filler"]

    model = MultiObjectiveModel(linker.moo_config)
    model.x_train_ = model_x_train
    model.alpha_ = model_alpha
    model.beta_ = model_beta if model_beta.size else None
    model.bias_ = float(manifest["model"]["bias"])
    model.objective_values_ = list(manifest["model"]["objective_values"])
    qp = manifest["model"]["qp"]
    if qp is not None:
        model.qp_result_ = QPResult(
            beta=model_beta,
            objective=float(qp["objective"]),
            iterations=int(qp["iterations"]),
            support_fraction=float(qp["support_fraction"]),
        )
    linker.model_ = model

    # the packed account store travels inside the state blob; artifacts from
    # pre-batch-engine pipelines (or blobs that dropped it) are re-packed
    # here, once, so serving never packs lazily — then cross-checked against
    # the manifest facts recorded at save time
    linker.pipeline.ensure_packed()
    expected = manifest.get("packed_store")
    if expected is not None:
        packed = linker.pipeline.packed_store
        if packed.num_accounts != expected["num_accounts"]:
            raise ArtifactError(
                f"packed store at {path} holds {packed.num_accounts} accounts; "
                f"manifest recorded {expected['num_accounts']}"
            )

    linker.platform_pairs_ = [tuple(p) for p in manifest["platform_pairs"]]
    linker.num_labeled_ = int(manifest["num_labeled"])
    linker.global_pairs_ = [_pair_from_json(p) for p in manifest["global_pairs"]]
    linker.candidates_ = _candidates_from_json(manifest["candidates"])
    linker.blocks_ = [
        ConsistencyBlock(
            platform_a=meta["platform_a"],
            platform_b=meta["platform_b"],
            indices=indices,
            m=m,
            d=d,
            weight=meta["weight"],
        )
        for meta, (m, d, indices) in zip(manifest["blocks"], block_arrays)
    ]
    linker.stage_timings_ = dict(manifest.get("stage_timings", {}))
    linker.ingest_epoch_ = int(manifest.get("ingest", {}).get("epoch", 0))
    # pre-approx artifacts leave this None; ensure_fast_scorer() rebuilds
    # the identical scorer (deterministic selection) on first approximate use
    linker.fast_scorer_ = fast_scorer
    linker.artifact_path_ = str(path)
    return linker


def artifact_summary(path) -> dict:
    """Cheap artifact inspection: manifest facts without loading arrays."""
    path = Path(path)
    manifest = _read_manifest(path)
    summary = {
        "path": str(path),
        "format": manifest["format"],
        "version": manifest["version"],
        "repro_version": manifest.get("repro_version"),
        "platform_pairs": [tuple(p) for p in manifest["platform_pairs"]],
        "num_candidates": len(manifest["global_pairs"]),
        "num_labeled": manifest["num_labeled"],
        "missing_strategy": manifest["config"]["missing_strategy"],
        "kernel": manifest["config"]["moo"]["kernel"],
        "feature_dim": len(manifest["feature_names"]),
        "ingest_epoch": manifest.get("ingest", {}).get("epoch", 0),
    }
    if "shard" in manifest:
        summary["shard"] = manifest["shard"]
    return summary


# ----------------------------------------------------------------------
# scoring head: the decision function without the world
# ----------------------------------------------------------------------
def save_scoring_head(linker: HydraLinker, path) -> Path:
    """Write ``linker``'s decision function alone to directory ``path``.

    The head carries the kernel/MOO config, the dual expansion arrays, the
    bias, the decision threshold, and the feature-name schema — everything
    needed to turn featurized rows into scores, and nothing else.  Unlike a
    full artifact there is no pickled state blob, so loading a head is
    cheap and safe (pure JSON + arrays).
    """
    if linker.model_ is None:
        raise ArtifactError("linker is not fitted; fit() before save")
    model = linker.model_
    if model.x_train_ is None or model.alpha_ is None:
        raise ArtifactError("fitted model is missing its dual expansion state")

    from repro import __version__

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    manifest = {
        "format": HEAD_FORMAT,
        "version": HEAD_VERSION,
        "repro_version": __version__,
        "moo": {
            "gamma_l": model.config.gamma_l,
            "gamma_m": model.config.gamma_m,
            "p": model.config.p,
            "kernel": model.config.kernel,
            "kernel_params": dict(model.config.kernel_params),
            "max_smo_iterations": model.config.max_smo_iterations,
            "smo_tol": model.config.smo_tol,
            "reweight_iterations": model.config.reweight_iterations,
            "jitter": model.config.jitter,
        },
        "bias": model.bias_,
        "threshold": linker.threshold,
        "feature_names": list(linker.pipeline.feature_names),
    }
    head_arrays = {
        "x_train": model.x_train_,
        "alpha": model.alpha_,
        "beta": model.beta_ if model.beta_ is not None else np.zeros(0),
    }
    # the head carries the fit-time landmark selection too, so a sharded
    # router's approximate ranking uses the very same compressed kernel as
    # the single-process service
    fast_scorer = getattr(linker, "fast_scorer_", None)
    if fast_scorer is not None:
        manifest["approx"] = fast_scorer.manifest_entry()
        head_arrays.update(fast_scorer.arrays())
    (path / _HEAD_MANIFEST).write_text(
        json.dumps(manifest, indent=2, sort_keys=True)
    )
    np.savez_compressed(path / _HEAD_ARRAYS, **head_arrays)
    return path


def load_scoring_head(path) -> dict:
    """Load a scoring head saved by :func:`save_scoring_head`.

    Returns ``{"model": MultiObjectiveModel, "feature_names": [...],
    "threshold": float, "fast_scorer": FastScorer | None}`` (the fast
    scorer is the fit-time Nyström landmark state when the head carries
    one); ``model.decision_function(x)`` reproduces the
    source linker's ``score_features`` bit for bit on identical feature
    rows (same chunk shapes, same operands).
    """
    path = Path(path)
    manifest_path = path / _HEAD_MANIFEST
    if not manifest_path.is_file():
        raise ArtifactError(f"no scoring head at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"corrupt scoring head at {manifest_path}: {exc}")
    if manifest.get("format") != HEAD_FORMAT:
        raise ArtifactError(
            f"unknown head format {manifest.get('format')!r} "
            f"(expected {HEAD_FORMAT!r})"
        )
    if manifest.get("version") != HEAD_VERSION:
        raise ArtifactError(
            f"unsupported head version {manifest.get('version')!r} "
            f"(this build reads version {HEAD_VERSION})"
        )
    arrays_path = path / _HEAD_ARRAYS
    if not arrays_path.is_file():
        raise ArtifactError(f"scoring head arrays missing at {arrays_path}")
    with np.load(arrays_path) as arrays:
        x_train = arrays["x_train"]
        alpha = arrays["alpha"]
        beta = arrays["beta"]
        fast_scorer = None
        if "approx" in manifest and "approx_landmarks" in arrays:
            from repro.approx import FastScorer

            fast_scorer = FastScorer.from_persisted(manifest["approx"], arrays)
    model = MultiObjectiveModel(MooConfig(**manifest["moo"]))
    model.x_train_ = x_train
    model.alpha_ = alpha
    model.beta_ = beta if beta.size else None
    model.bias_ = float(manifest["bias"])
    return {
        "model": model,
        "feature_names": list(manifest["feature_names"]),
        "threshold": float(manifest["threshold"]),
        "fast_scorer": fast_scorer,
    }
