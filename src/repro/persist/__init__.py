"""Persistable linkage artifacts: fit once, serve anywhere.

A fitted :class:`~repro.core.hydra.HydraLinker` serializes to an on-disk
artifact directory (``manifest.json`` + ``arrays.npz``) and reloads in a
fresh process with bit-identical decision values — the offline-training /
online-serving split that production identity-linkage deployments require.

Entry points: :func:`save_linker`, :func:`load_linker`, or the
:meth:`~repro.core.hydra.HydraLinker.save` /
:meth:`~repro.core.hydra.HydraLinker.load` convenience methods.
:func:`save_scoring_head` / :func:`load_scoring_head` persist the decision
function alone (no pickled world state) for the sharded gateway router.
"""

from repro.persist.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    HEAD_FORMAT,
    HEAD_VERSION,
    ArtifactError,
    artifact_exists,
    artifact_summary,
    load_linker,
    load_scoring_head,
    save_linker,
    save_scoring_head,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "HEAD_FORMAT",
    "HEAD_VERSION",
    "ArtifactError",
    "artifact_exists",
    "artifact_summary",
    "load_linker",
    "load_scoring_head",
    "save_linker",
    "save_scoring_head",
]
