"""Pattern-matching sensors (Section 5.4).

A sensor inspects one behavior modality of two accounts inside one temporal
window and emits a stimulus in [0, 1] — "if matched patterns are identified
within the selected range of a pattern-matching sensor, a positive stimuli
signal would be generated".  The paper builds two:

* **Location matching sensor** — "calculates location adjacency by a Gaussian
  kernel on geo-coordinates of user i and user i' within the predefined
  spatial range";
* **Near duplicate multimedia sensor** — "a near duplicated image sensor or
  down-sampling method [9]": two media fingerprints match when their
  down-sampled representations (item bits) coincide.

Sensors are stateless; the multi-resolution pooling machinery in
:mod:`repro.features.temporal` slides them across window scales.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.datagen.media import item_of

__all__ = ["PatternSensor", "LocationMatchingSensor", "NearDuplicateMediaSensor"]

#: Degrees of latitude per kilometre (spherical approximation, fine at city scale).
_KM_PER_DEG = 111.0


class PatternSensor(Protocol):
    """Stimulus producer over one modality of paired event windows."""

    #: Event-store kind this sensor consumes ("checkin", "media", ...).
    kind: str

    def stimulus(self, payloads_a: Sequence, payloads_b: Sequence) -> float:
        """Match strength in [0, 1] between two windows of payloads."""
        ...  # pragma: no cover - protocol


class LocationMatchingSensor:
    """Gaussian-kernel geo adjacency within a spatial search range.

    Parameters
    ----------
    bandwidth_km:
        Gaussian kernel bandwidth sigma, in kilometres.
    max_range_km:
        The "predefined spatial range": coordinate pairs farther apart than
        this contribute zero stimulus.
    """

    kind = "checkin"

    def __init__(self, *, bandwidth_km: float = 2.0, max_range_km: float = 25.0):
        if bandwidth_km <= 0:
            raise ValueError(f"bandwidth_km must be > 0, got {bandwidth_km}")
        if max_range_km <= 0:
            raise ValueError(f"max_range_km must be > 0, got {max_range_km}")
        self.bandwidth_km = bandwidth_km
        self.max_range_km = max_range_km

    def stimulus(self, payloads_a: Sequence, payloads_b: Sequence) -> float:
        """Strongest Gaussian adjacency between any in-window coordinate pair."""
        if not payloads_a or not payloads_b:
            return 0.0
        coords_a = np.asarray(payloads_a, dtype=float)
        coords_b = np.asarray(payloads_b, dtype=float)
        # pairwise km distances on the equirectangular approximation
        lat_a = coords_a[:, 0:1]
        lat_b = coords_b[:, 0].reshape(1, -1)
        lon_a = coords_a[:, 1:2]
        lon_b = coords_b[:, 1].reshape(1, -1)
        mean_lat = np.deg2rad((lat_a + lat_b) / 2.0)
        d_lat = (lat_a - lat_b) * _KM_PER_DEG
        d_lon = (lon_a - lon_b) * _KM_PER_DEG * np.cos(mean_lat)
        dist_km = np.sqrt(d_lat**2 + d_lon**2)
        dist_km = np.where(dist_km <= self.max_range_km, dist_km, np.inf)
        best = float(dist_km.min())
        if not np.isfinite(best):
            return 0.0
        # best * best (not best**2): multiplication is bit-identical between
        # the scalar and the batch engine's array path; C pow(x, 2) is not
        return float(np.exp(-(best * best) / (2.0 * self.bandwidth_km**2)))


class NearDuplicateMediaSensor:
    """Down-sampled fingerprint matching for shared multimedia items."""

    kind = "media"

    def stimulus(self, payloads_a: Sequence, payloads_b: Sequence) -> float:
        """Fraction-of-smaller-window overlap in down-sampled items, in [0, 1].

        1.0 when every item of the sparser window reappears (as any
        near-duplicate variant) in the other; 0.0 with no shared item.
        """
        if not payloads_a or not payloads_b:
            return 0.0
        items_a = {item_of(int(f)) for f in payloads_a}
        items_b = {item_of(int(f)) for f in payloads_b}
        overlap = len(items_a & items_b)
        return overlap / float(min(len(items_a), len(items_b)))
