"""User attribute modeling (Section 5.1, textual attributes).

Two pieces:

* :func:`attribute_match_vector` — per-attribute match indicators between two
  profiles; an attribute absent on either side yields NaN ("If a_k is absent
  for user i or i', it is denoted as a missing feature").
* :class:`AttributeImportanceModel` — the paper's Eqn 3: the relative
  importance of attribute k is the smoothed fraction of *positive* labeled
  pairs among all labeled pairs matched on k, normalized across attributes.
  Common values (gender, popular names) match many negative pairs and receive
  low weight; near-unique ones (email) receive high weight.

Username similarity is computed separately — usernames are never missing but
are unreliable, so they enter the feature vector as a continuous string
similarity rather than a hard match.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.socialnet.platform import Profile

__all__ = [
    "ATTRIBUTE_MATCHERS",
    "attribute_match_vector",
    "username_similarity",
    "AttributeImportanceModel",
]


def _jaccard(a: set, b: set) -> float:
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


def _match_gender(a: Profile, b: Profile) -> float:
    return 1.0 if a.gender == b.gender else 0.0


def _match_birth(a: Profile, b: Profile) -> float:
    # tolerate one year of rounding (sign-up forms differ in cutoff dates)
    return 1.0 if abs(a.birth - b.birth) <= 1 else 0.0


def _match_bio(a: Profile, b: Profile) -> float:
    return 1.0 if _jaccard(set(a.bio.split()), set(b.bio.split())) >= 0.5 else 0.0


def _match_tag(a: Profile, b: Profile) -> float:
    return 1.0 if _jaccard(set(a.tag), set(b.tag)) >= 1.0 / 3.0 else 0.0


def _match_edu(a: Profile, b: Profile) -> float:
    return 1.0 if a.edu == b.edu else 0.0


def _match_job(a: Profile, b: Profile) -> float:
    return 1.0 if a.job == b.job else 0.0


def _match_email(a: Profile, b: Profile) -> float:
    return 1.0 if a.email == b.email else 0.0


#: Ordered attribute -> matcher registry.  Matchers are only invoked when the
#: attribute is present on both profiles.
ATTRIBUTE_MATCHERS: dict[str, Callable[[Profile, Profile], float]] = {
    "gender": _match_gender,
    "birth": _match_birth,
    "bio": _match_bio,
    "tag": _match_tag,
    "edu": _match_edu,
    "job": _match_job,
    "email": _match_email,
}


def attribute_match_vector(a: Profile, b: Profile) -> np.ndarray:
    """Per-attribute match indicators; NaN where either side is missing."""
    out = np.empty(len(ATTRIBUTE_MATCHERS))
    for idx, (name, matcher) in enumerate(ATTRIBUTE_MATCHERS.items()):
        if getattr(a, name) is None or getattr(b, name) is None:
            out[idx] = np.nan
        else:
            out[idx] = matcher(a, b)
    return out


def _char_ngrams(text: str, n: int = 2) -> set[str]:
    padded = f"^{text}$"
    if len(padded) < n:
        return {padded}
    return {padded[i : i + n] for i in range(len(padded) - n + 1)}


def username_similarity(a: str, b: str) -> float:
    """Character-bigram Jaccard similarity of two usernames in [0, 1].

    Robust to the decorations the generator (and real users) apply — digits,
    eccentric wrappers, concatenated family names — because the core name's
    bigrams survive; unrelated nicknames share almost no bigrams.
    """
    if not a or not b:
        return 0.0
    return _jaccard(_char_ngrams(a.lower()), _char_ngrams(b.lower()))


class AttributeImportanceModel:
    """Relative attribute importance learned from labeled pairs (Eqn 3).

    Parameters
    ----------
    epsilon:
        The paper's ``ε`` smoothing "used to avoid over-fitting" — additive
        mass in the normalization so unseen attributes keep nonzero weight.

    Attributes
    ----------
    weights_:
        Normalized importance per attribute (sums to 1), ordered like
        :data:`ATTRIBUTE_MATCHERS`.  Populated by :meth:`fit`.
    """

    def __init__(self, *, epsilon: float = 0.01):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        self.epsilon = epsilon
        self.weights_: np.ndarray | None = None

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute order of :attr:`weights_` and the match vectors."""
        return tuple(ATTRIBUTE_MATCHERS)

    def fit(
        self,
        positive_pairs: list[tuple[Profile, Profile]],
        negative_pairs: list[tuple[Profile, Profile]],
    ) -> "AttributeImportanceModel":
        """Estimate importance from labeled profile pairs by data counting.

        ``PD(k)`` counts positive pairs matched on attribute k, ``ND(k)``
        negative pairs matched on k; ``mt(k) = PD / (PD + ND)`` smoothed and
        normalized (Eqn 3).
        """
        num_attrs = len(ATTRIBUTE_MATCHERS)
        pd_counts = np.zeros(num_attrs)
        nd_counts = np.zeros(num_attrs)
        for pairs, counts in ((positive_pairs, pd_counts), (negative_pairs, nd_counts)):
            for prof_a, prof_b in pairs:
                matches = attribute_match_vector(prof_a, prof_b)
                counts += np.nan_to_num(matches, nan=0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            raw = np.where(
                pd_counts + nd_counts > 0, pd_counts / (pd_counts + nd_counts), 0.0
            )
        smoothed = raw + self.epsilon
        self.weights_ = smoothed / smoothed.sum()
        return self

    def weighted_matches(self, a: Profile, b: Profile) -> np.ndarray:
        """Importance-weighted match vector (NaN propagates for missing).

        Weights are rescaled so a full match across all attributes scores 1
        on the strongest attribute: ``weight_k / max(weights)`` keeps each
        dimension in [0, 1] while preserving the learned ratios.
        """
        if self.weights_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        scale = self.weights_ / self.weights_.max()
        return attribute_match_vector(a, b) * scale
