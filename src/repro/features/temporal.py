"""Multi-resolution temporal behavior matching (Section 5.4, Fig 6, Eqn 5).

For each sensor and each temporal scale, the time axis is divided into
windows; the sensor emits one stimulus per co-active window.  The collected
stimuli are pooled with the lq-norm

    S_mr = ( (1/N) * sum_k s_mr(k)^q )^(1/q),   q >= 1

— "when q approaches infinity, the signal selection tends to better
approximate the maximum stimulation (i.e., max-pooling)" — then squashed by
the sigmoid ``S_hat = 1 / (1 + exp(-lambda * S_mr))`` into a stimulated
signal in [0, 1].  One output dimension per (sensor, scale).
"""

from __future__ import annotations

import numpy as np

from repro.features.sensors import PatternSensor
from repro.socialnet.storage import EventStore

__all__ = ["SENSOR_SCALES_DAYS", "lq_pool", "stimulated_sigmoid", "MultiResolutionMatcher"]

#: Five temporal search ranges ("Scale 1 ... Scale 5" in Fig 6), in days.
SENSOR_SCALES_DAYS: tuple[float, ...] = (2.0, 4.0, 8.0, 16.0, 32.0)


def lq_pool(stimuli: np.ndarray, q: float) -> float:
    """Eqn 5: lq-norm pooling of a stimulus set.

    ``q = 1`` is mean pooling; ``q -> inf`` approaches max pooling.  Empty
    stimulus sets pool to 0 (no matched behavior observed).
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    s = np.asarray(stimuli, dtype=float)
    if s.size == 0:
        return 0.0
    if (s < 0).any():
        raise ValueError("stimuli must be non-negative")
    # np.power (not np.float64.__pow__) so the scalar result is bit-identical
    # to the batch engine's array-at-a-time pooling
    return float(np.power(np.mean(s**q), 1.0 / q))


def stimulated_sigmoid(value: float, lam: float) -> float:
    """The nonlinear transformation ``1 / (1 + exp(-lambda * value))``."""
    if lam <= 0:
        raise ValueError(f"lambda must be > 0, got {lam}")
    return float(1.0 / (1.0 + np.exp(-lam * value)))


class MultiResolutionMatcher:
    """Pools sensor stimuli across temporal scales into a feature vector.

    Parameters
    ----------
    sensors:
        The pattern-matching sensors (location, near-duplicate media, ...).
    scales_days:
        Temporal window widths; sensors are evaluated at each scale.
    q:
        lq-norm pooling order.
    lam:
        Sigmoid steepness ("the parameter lambda can be tuned on the specific
        validation dataset").
    time_range:
        Global (t0, t1) observation window.
    """

    def __init__(
        self,
        sensors: list[PatternSensor],
        *,
        scales_days: tuple[float, ...] = SENSOR_SCALES_DAYS,
        q: float = 3.0,
        lam: float = 4.0,
        time_range: tuple[float, float] = (0.0, 365.0),
    ):
        if not sensors:
            raise ValueError("at least one sensor is required")
        if not scales_days or any(s <= 0 for s in scales_days):
            raise ValueError(f"scales_days must be positive, got {scales_days}")
        self.sensors = list(sensors)
        self.scales_days = tuple(float(s) for s in scales_days)
        self.q = float(q)
        self.lam = float(lam)
        self.time_range = time_range
        # validate pooling params eagerly
        lq_pool(np.array([0.0]), self.q)
        stimulated_sigmoid(0.0, self.lam)

    @property
    def output_dim(self) -> int:
        """One dimension per (sensor, scale)."""
        return len(self.sensors) * len(self.scales_days)

    def feature_names(self) -> list[str]:
        """Stable names like ``checkin@8d`` for each output dimension."""
        return [
            f"{sensor.kind}@{scale:g}d"
            for sensor in self.sensors
            for scale in self.scales_days
        ]

    # ------------------------------------------------------------------
    def _bucketize(
        self, store: EventStore, account: str, kind: str, scale: float
    ) -> dict[int, list]:
        """Window index -> payload list for one account/modality/scale."""
        t0, _ = self.time_range
        times = store.timestamps_for(account, kind)
        payloads = store.payloads_for(account, kind)
        buckets: dict[int, list] = {}
        if times.size:
            idx = np.floor((times - t0) / scale).astype(int)
            for window, payload in zip(idx, payloads):
                buckets.setdefault(int(window), []).append(payload)
        return buckets

    def account_buckets(
        self, store: EventStore, account: str
    ) -> dict[tuple[str, float], dict[int, list]]:
        """Precompute one account's windowed payloads for every (sensor, scale).

        Pair-independent, so pipelines cache it per account and combine two
        cached bucket maps with :meth:`match_from_buckets`.
        """
        out: dict[tuple[str, float], dict[int, list]] = {}
        for sensor in self.sensors:
            for scale in self.scales_days:
                out[(sensor.kind, scale)] = self._bucketize(
                    store, account, sensor.kind, scale
                )
        return out

    def match_from_buckets(
        self,
        buckets_a: dict[tuple[str, float], dict[int, list]],
        buckets_b: dict[tuple[str, float], dict[int, list]],
    ) -> np.ndarray:
        """The multi-dimensional pattern-matching feature from cached buckets.

        Per (sensor, scale): collect the sensor stimulus in every window where
        *both* accounts have events of the modality, lq-pool, sigmoid.  When
        either account has no events of a modality at all, that sensor's
        dimensions are NaN (missing modality, e.g. a platform without
        check-ins) rather than zero.
        """
        out = np.empty(self.output_dim)
        pos = 0
        for sensor in self.sensors:
            any_a = any(buckets_a[(sensor.kind, s)] for s in self.scales_days)
            any_b = any(buckets_b[(sensor.kind, s)] for s in self.scales_days)
            if not any_a or not any_b:
                out[pos : pos + len(self.scales_days)] = np.nan
                pos += len(self.scales_days)
                continue
            for scale in self.scales_days:
                windows_a = buckets_a[(sensor.kind, scale)]
                windows_b = buckets_b[(sensor.kind, scale)]
                stimuli = [
                    sensor.stimulus(windows_a[w], windows_b[w])
                    for w in sorted(windows_a.keys() & windows_b.keys())
                ]
                pooled = lq_pool(np.asarray(stimuli), self.q)
                out[pos] = stimulated_sigmoid(pooled, self.lam)
                pos += 1
        return out

    def match_vector(
        self,
        store_a: EventStore,
        account_a: str,
        store_b: EventStore,
        account_b: str,
    ) -> np.ndarray:
        """One-shot convenience wrapper around the cached-bucket path."""
        return self.match_from_buckets(
            self.account_buckets(store_a, account_a),
            self.account_buckets(store_b, account_b),
        )
