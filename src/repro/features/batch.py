"""Vectorized batch featurization: packed account stores + array-at-a-time
pair scoring.

The reference path (:meth:`repro.features.pipeline.FeaturePipeline.pair_vector`)
featurizes one pair at a time in pure Python — per-pair dict lookups, per-pair
kernel evaluations, per-pair sigmoid calls.  That is fine for inspecting a
single pair but dominates wall-clock when fitting or serving thousands of
candidate pairs (HYDRA's Section 7 efficiency claim is about exactly this
regime).  This module computes the same D-dimensional similarity vectors for a
whole *batch* of pairs with NumPy array operations:

:class:`PackedAccountStore`
    Built once per fitted pipeline.  Stacks every account's per-scale
    topic/sentiment bucket profiles, style signatures, face embeddings,
    attribute codes and behavior summaries into contiguous ndarrays indexed
    by an ``AccountRef -> row`` map, and encodes each account's sensor
    buckets in a CSR-style layout (per-``(kind, scale)`` window-id arrays
    with an account indptr, plus window extents into one contiguous payload
    array per modality).  The store is plain arrays + small Python maps, so
    it pickles into a persisted artifact and reloads without re-packing.
    It is also *appendable*: online ingestion delta-packs newly arrived
    accounts onto it in O(new) (:meth:`PackedAccountStore.append`),
    bit-identical to a from-scratch re-pack over all accounts.

:class:`BatchFeaturizer`
    Evaluates :meth:`BatchFeaturizer.matrix` over a pair batch: row indices
    are gathered once, then every feature block — chi-square / histogram-
    intersection bucket kernels, lq-pooled sensor matching (Eqn 5), style
    ``S_lea``, importance-weighted attribute matches, username bigram
    Jaccard, face confidence — is computed array-at-a-time.

The engine is **bit-identical** to the reference path.  Floating-point
reductions are kept order-compatible: every per-pair reduction (bucket-kernel
means, lq pooling) runs over the same operands in the same order as the
per-pair code, using row-wise reductions over the contiguous last axis of
same-length segment groups (see :func:`segment_means`), which NumPy reduces
exactly like the equivalent 1-D array.  Elementwise ufuncs (``exp``, ``cos``,
``sqrt``, ``power``) are shape-independent, and the remaining feature values
are ratios of small integers, which float division reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.media import item_of
from repro.features.attributes import _char_ngrams, _jaccard
from repro.features.face import FaceMatcher
from repro.features.sensors import (
    _KM_PER_DEG,
    LocationMatchingSensor,
    NearDuplicateMediaSensor,
    PatternSensor,
)
from repro.features.topics import row_kernel

__all__ = ["PackedAccountStore", "BatchFeaturizer", "segment_means"]

AccountRef = tuple[str, str]

#: Equality-matched profile attributes packed as integer codes; the remaining
#: matchers (birth tolerance, bio/tag Jaccard) keep their own layouts.
_EQ_ATTRIBUTES: tuple[str, ...] = ("gender", "edu", "job", "email")

#: Feature order of the attribute block (must mirror ``ATTRIBUTE_MATCHERS``).
_ATTRIBUTE_ORDER: tuple[str, ...] = (
    "gender", "birth", "bio", "tag", "edu", "job", "email",
)


# ----------------------------------------------------------------------
# exact segment reductions
# ----------------------------------------------------------------------
def segment_means(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment means of a flat value array, bit-identical to per-segment
    ``np.mean``.

    ``values`` concatenates variable-length segments; ``lengths[i]`` is the
    size of segment ``i``.  Segments of equal length are stacked into one
    ``(group, L)`` matrix and reduced along the contiguous last axis — NumPy
    applies the same pairwise summation per row as it does for a 1-D array of
    length ``L``, so the result matches a per-segment ``values[o:o+L].mean()``
    loop exactly.  Empty segments yield NaN.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    out = np.full(lengths.shape[0], np.nan)
    if lengths.shape[0] == 0:
        return out
    values = np.ascontiguousarray(values, dtype=float)
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    for length in np.unique(lengths):
        if length == 0:
            continue
        sel = np.flatnonzero(lengths == length)
        idx = offsets[sel][:, None] + np.arange(length)[None, :]
        out[sel] = values[idx].mean(axis=1)
    return out


# ----------------------------------------------------------------------
# packed per-(kind, scale) sensor windows
# ----------------------------------------------------------------------
@dataclass
class _WindowCSR:
    """CSR-style window layout for one ``(kind, scale)``.

    ``acct_ptr`` (n_accounts + 1) slices the flat window arrays per account;
    ``win_ids`` holds each account's occupied window indices (ascending);
    ``win_start`` / ``win_end`` are extents into the modality's contiguous
    payload array.
    """

    acct_ptr: np.ndarray
    win_ids: np.ndarray
    win_start: np.ndarray
    win_end: np.ndarray
    num_windows: int  # global window-axis length for this scale


@dataclass
class PackedAccountStore:
    """Contiguous per-account feature state for the batch engine.

    Everything is indexed by ``row_of[ref]``; build with :meth:`pack` from a
    fitted pipeline's caches.  All members are ndarrays or small Python
    containers, so the store round-trips through pickle (and therefore
    through :mod:`repro.persist` artifacts) unchanged.
    """

    refs: list[AccountRef]
    row_of: dict[AccountRef, int]
    # --- profile attributes ------------------------------------------------
    eq_codes: np.ndarray          # (n, len(_EQ_ATTRIBUTES)) int64; -1 missing
    birth: np.ndarray             # (n,) float64; NaN missing
    bio_words: list               # frozenset[str] | None per account
    tag_sets: list                # frozenset[str] | None per account
    username_bigrams: list        # frozenset[str] per account
    username_nonempty: np.ndarray  # (n,) bool
    # --- face --------------------------------------------------------------
    face_emb: np.ndarray          # (n, d) float64 (zero rows where absent)
    face_present: np.ndarray      # (n,) bool — an embedding was uploaded
    face_detected: np.ndarray     # (n,) bool — present and detector fired
    face_norm: np.ndarray         # (n,) float64
    # --- multi-scale distribution profiles ---------------------------------
    topic_scales: tuple           # scale ladder (days), genre block
    topic_means: list             # per scale: (n, B_s, K) float64
    topic_has: list               # per scale: (n, B_s) bool
    senti_means: list             # per scale: (n, B_s, 4) float64
    senti_has: list               # per scale: (n, B_s) bool
    # --- style signatures ---------------------------------------------------
    style_ks: tuple               # ascending k ladder
    style_ids: dict               # k -> (n, k) int64, padded with -1
    style_len: dict               # k -> (n,) int64 signature sizes
    # --- sensor buckets (CSR) ----------------------------------------------
    sensor_kinds: tuple           # modality per sensor, in sensor order
    sensor_scales: tuple          # scale ladder (days)
    has_kind: dict                # kind -> (n,) bool (any event of modality)
    payloads: dict                # kind -> contiguous payload array
    windows: dict                 # (kind, scale) -> _WindowCSR
    # --- behavior summaries -------------------------------------------------
    summaries: np.ndarray         # (n, S) float64
    # --- id-space seeds for delta packing -----------------------------------
    # attr -> {value -> code} and {style word -> id}: the running code maps
    # behind eq_codes / style_ids, retained so append() can extend the same
    # id spaces (stores pickled before online ingestion existed lack them —
    # callers fall back to a one-time re-pack)
    eq_code_maps: dict | None = None
    style_vocab: dict | None = None

    @property
    def num_accounts(self) -> int:
        return len(self.refs)

    # ------------------------------------------------------------------
    @classmethod
    def pack(
        cls,
        world,
        refs: list[AccountRef],
        caches: dict,
        *,
        face: FaceMatcher,
        sensors: list[PatternSensor],
        sensor_scales: tuple,
        topic_scales: tuple,
        time_range: tuple,
        style_ks: tuple,
        topic_dim: int,
        senti_dim: int,
        eq_code_maps: dict | None = None,
        style_vocab: dict | None = None,
    ) -> "PackedAccountStore":
        """Stack every account's cached behavior state into arrays.

        ``caches`` maps each ref to an object exposing ``topic_profile``,
        ``sentiment_profile``, ``style`` and ``behavior_summary`` (the
        pipeline's per-account cache entries).  ``eq_code_maps`` /
        ``style_vocab`` seed the attribute-code and style-word id spaces —
        :meth:`append` passes an existing store's maps so a delta pack lands
        in the same id space (the dicts are extended in place).
        """
        refs = list(refs)
        n = len(refs)
        row_of = {ref: row for row, ref in enumerate(refs)}
        profiles = [
            world.platforms[ref[0]].accounts[ref[1]].profile for ref in refs
        ]

        # --- profile attributes ---------------------------------------
        if eq_code_maps is None:
            eq_code_maps = {attr: {} for attr in _EQ_ATTRIBUTES}
        eq_codes = np.full((n, len(_EQ_ATTRIBUTES)), -1, dtype=np.int64)
        for col, attr in enumerate(_EQ_ATTRIBUTES):
            code_of = eq_code_maps[attr]
            for row, prof in enumerate(profiles):
                value = getattr(prof, attr)
                if value is None:
                    continue
                eq_codes[row, col] = code_of.setdefault(value, len(code_of))
        birth = np.array(
            [np.nan if p.birth is None else float(p.birth) for p in profiles]
        )
        bio_words = [
            None if p.bio is None else frozenset(p.bio.split()) for p in profiles
        ]
        tag_sets = [
            None if p.tag is None else frozenset(p.tag) for p in profiles
        ]
        username_bigrams = [
            _char_ngrams(p.username.lower()) if p.username else frozenset()
            for p in profiles
        ]
        username_nonempty = np.array([bool(p.username) for p in profiles])

        # --- face ------------------------------------------------------
        face_dim = 1
        for prof in profiles:
            if prof.face_embedding is not None:
                face_dim = int(np.asarray(prof.face_embedding).shape[0])
                break
        face_emb = np.zeros((n, face_dim))
        face_present = np.zeros(n, dtype=bool)
        face_detected = np.zeros(n, dtype=bool)
        face_norm = np.zeros(n)
        for row, prof in enumerate(profiles):
            emb = prof.face_embedding
            if emb is None:
                continue
            arr = np.asarray(emb, dtype=float)
            if arr.shape != (face_dim,):
                raise ValueError(
                    f"face embeddings disagree in shape: {arr.shape} vs ({face_dim},)"
                )
            face_emb[row] = arr
            face_present[row] = True
            face_detected[row] = face.detects_face(emb)
            face_norm[row] = float(np.linalg.norm(arr))

        # --- multi-scale distribution profiles -------------------------
        topic_means, topic_has = cls._stack_profiles(
            [caches[ref].topic_profile for ref in refs], topic_dim
        )
        senti_means, senti_has = cls._stack_profiles(
            [caches[ref].sentiment_profile for ref in refs], senti_dim
        )

        # --- style signatures -------------------------------------------
        ks = tuple(sorted(style_ks))
        word_ids: dict[str, int] = style_vocab if style_vocab is not None else {}
        style_ids = {k: np.full((n, k), -1, dtype=np.int64) for k in ks}
        style_len = {k: np.zeros(n, dtype=np.int64) for k in ks}
        for row, ref in enumerate(refs):
            signatures = caches[ref].style.signatures
            for k in ks:
                words = signatures[k]
                style_len[k][row] = len(words)
                for j, word in enumerate(words):
                    style_ids[k][row, j] = word_ids.setdefault(word, len(word_ids))

        # --- sensor buckets (CSR per (kind, scale)) ---------------------
        kinds = tuple(sensor.kind for sensor in sensors)
        scales = tuple(float(s) for s in sensor_scales)
        t0, t1 = time_range
        has_kind: dict = {}
        payloads: dict = {}
        windows: dict = {}
        for kind in kinds:
            if kind not in ("checkin", "media"):
                raise ValueError(
                    f"batch engine cannot pack sensor modality {kind!r}"
                )
            times_per_acct = []
            payload_parts = []
            has = np.zeros(n, dtype=bool)
            for row, ref in enumerate(refs):
                store = world.platforms[ref[0]].events
                times = store.timestamps_for(ref[1], kind)
                raw = store.payloads_for(ref[1], kind)
                times_per_acct.append(times)
                has[row] = times.size > 0
                if kind == "checkin":
                    payload_parts.append(
                        np.asarray(raw, dtype=float).reshape(len(raw), 2)
                    )
                else:  # media fingerprints
                    payload_parts.append(
                        np.asarray([int(f) for f in raw], dtype=np.int64)
                    )
            has_kind[kind] = has
            payloads[kind] = (
                np.concatenate(payload_parts)
                if payload_parts
                else np.zeros((0, 2) if kind == "checkin" else 0)
            )
            acct_offsets = np.concatenate(
                [[0], np.cumsum([len(t) for t in times_per_acct])]
            ).astype(np.int64)
            for scale in scales:
                acct_ptr = np.zeros(n + 1, dtype=np.int64)
                ids_parts, start_parts, end_parts = [], [], []
                for row, times in enumerate(times_per_acct):
                    if times.size:
                        # same windowing arithmetic as the reference bucketizer
                        idx = np.floor((times - t0) / scale).astype(int)
                        bounds = np.flatnonzero(idx[1:] != idx[:-1]) + 1
                        starts = np.concatenate([[0], bounds])
                        ends = np.concatenate([bounds, [times.size]])
                        ids_parts.append(idx[starts].astype(np.int64))
                        start_parts.append(acct_offsets[row] + starts)
                        end_parts.append(acct_offsets[row] + ends)
                        acct_ptr[row + 1] = acct_ptr[row] + starts.size
                    else:
                        acct_ptr[row + 1] = acct_ptr[row]
                windows[(kind, scale)] = _WindowCSR(
                    acct_ptr=acct_ptr,
                    win_ids=(
                        np.concatenate(ids_parts)
                        if ids_parts
                        else np.zeros(0, dtype=np.int64)
                    ),
                    win_start=(
                        np.concatenate(start_parts).astype(np.int64)
                        if start_parts
                        else np.zeros(0, dtype=np.int64)
                    ),
                    win_end=(
                        np.concatenate(end_parts).astype(np.int64)
                        if end_parts
                        else np.zeros(0, dtype=np.int64)
                    ),
                    num_windows=int(np.floor((t1 - t0) / scale)) + 1,
                )

        summaries = (
            np.stack([caches[ref].behavior_summary for ref in refs])
            if refs
            else np.zeros((0, 0))
        )

        return cls(
            refs=refs,
            row_of=row_of,
            eq_codes=eq_codes,
            birth=birth,
            bio_words=bio_words,
            tag_sets=tag_sets,
            username_bigrams=username_bigrams,
            username_nonempty=username_nonempty,
            face_emb=face_emb,
            face_present=face_present,
            face_detected=face_detected,
            face_norm=face_norm,
            topic_scales=tuple(float(s) for s in topic_scales),
            topic_means=topic_means,
            topic_has=topic_has,
            senti_means=senti_means,
            senti_has=senti_has,
            style_ks=ks,
            style_ids=style_ids,
            style_len=style_len,
            sensor_kinds=kinds,
            sensor_scales=scales,
            has_kind=has_kind,
            payloads=payloads,
            windows=windows,
            summaries=summaries,
            eq_code_maps=eq_code_maps,
            style_vocab=word_ids,
        )

    # ------------------------------------------------------------------
    def append(
        self,
        world,
        refs: list[AccountRef],
        caches: dict,
        *,
        face: FaceMatcher,
        sensors: list[PatternSensor],
        sensor_scales: tuple,
        topic_scales: tuple,
        time_range: tuple,
        style_ks: tuple,
        topic_dim: int,
        senti_dim: int,
    ) -> int:
        """Delta-pack ``refs`` onto this store in place, in O(new) work.

        The new accounts are packed through the same :meth:`pack` code path
        as a fit-time build — seeded with this store's attribute-code and
        style-word id maps so the appended rows land in the same id space —
        and every per-account array is extended by concatenation.  The
        result is bit-identical to re-packing all accounts from scratch in
        ``old refs + new refs`` order, which is what makes ingested and
        fit-time-built services agree exactly.

        Returns the account count *before* the append (the first new row),
        so callers holding derived state (:class:`BatchFeaturizer`) can
        extend incrementally.  Raises on duplicate or already-packed refs,
        and on stores pickled before ingestion support existed (re-pack once
        via the pipeline to upgrade those).
        """
        refs = list(refs)
        old_n = self.num_accounts
        if not refs:
            return old_n
        if len(set(refs)) != len(refs):
            raise ValueError("duplicate refs in append request")
        known = [ref for ref in refs if ref in self.row_of]
        if known:
            raise ValueError(f"refs already packed: {known[:3]}")
        eq_code_maps = getattr(self, "eq_code_maps", None)
        style_vocab = getattr(self, "style_vocab", None)
        if eq_code_maps is None or style_vocab is None:
            raise ValueError(
                "store lacks its id-space seed maps (packed before online "
                "ingestion existed); re-pack it before appending"
            )
        if tuple(sorted(style_ks)) != self.style_ks:
            raise ValueError(
                f"style ladder {style_ks!r} disagrees with the packed store"
            )
        # extend copies of the seed maps; adopt them only on success
        eq_code_maps = {attr: dict(m) for attr, m in eq_code_maps.items()}
        style_vocab = dict(style_vocab)
        delta = PackedAccountStore.pack(
            world,
            refs,
            caches,
            face=face,
            sensors=sensors,
            sensor_scales=sensor_scales,
            topic_scales=topic_scales,
            time_range=time_range,
            style_ks=style_ks,
            topic_dim=topic_dim,
            senti_dim=senti_dim,
            eq_code_maps=eq_code_maps,
            style_vocab=style_vocab,
        )
        # --- validate everything BEFORE the first in-place mutation, so a
        # failed append leaves the store exactly as it was -----------------
        for name, mine, theirs in (
            ("topic scales", self.topic_scales, delta.topic_scales),
            ("sensor kinds", self.sensor_kinds, delta.sensor_kinds),
            ("sensor scales", self.sensor_scales, delta.sensor_scales),
        ):
            if mine != theirs:
                raise ValueError(f"{name} disagree: {mine!r} vs {theirs!r}")
        for kind in self.sensor_kinds:
            for scale in self.sensor_scales:
                old_windows = self.windows[(kind, scale)].num_windows
                new_windows = delta.windows[(kind, scale)].num_windows
                if old_windows != new_windows:
                    raise ValueError(
                        f"window axis disagrees for ({kind}, {scale}): "
                        f"{old_windows} vs {new_windows}"
                    )
        # faces: a side with no embeddings at all carries placeholder zero
        # rows; widen it to the other side's dimensionality (what a from-
        # scratch pack over the union would have inferred)
        if delta.face_emb.shape[1] != self.face_emb.shape[1]:
            if not self.face_present.any():
                pass  # widened below, after validation
            elif not delta.face_present.any():
                delta.face_emb = np.zeros(
                    (delta.num_accounts, self.face_emb.shape[1])
                )
            else:
                raise ValueError(
                    f"face embeddings disagree in shape: "
                    f"{delta.face_emb.shape[1]} vs {self.face_emb.shape[1]}"
                )
        if delta.face_emb.shape[1] != self.face_emb.shape[1]:
            self.face_emb = np.zeros((old_n, delta.face_emb.shape[1]))

        self.refs.extend(delta.refs)
        for ref, row in delta.row_of.items():
            self.row_of[ref] = old_n + row
        self.eq_codes = np.concatenate([self.eq_codes, delta.eq_codes])
        self.birth = np.concatenate([self.birth, delta.birth])
        self.bio_words.extend(delta.bio_words)
        self.tag_sets.extend(delta.tag_sets)
        self.username_bigrams.extend(delta.username_bigrams)
        self.username_nonempty = np.concatenate(
            [self.username_nonempty, delta.username_nonempty]
        )
        self.face_emb = np.concatenate([self.face_emb, delta.face_emb])
        self.face_present = np.concatenate(
            [self.face_present, delta.face_present]
        )
        self.face_detected = np.concatenate(
            [self.face_detected, delta.face_detected]
        )
        self.face_norm = np.concatenate([self.face_norm, delta.face_norm])
        self.topic_means = [
            np.concatenate([old, new])
            for old, new in zip(self.topic_means, delta.topic_means)
        ]
        self.topic_has = [
            np.concatenate([old, new])
            for old, new in zip(self.topic_has, delta.topic_has)
        ]
        self.senti_means = [
            np.concatenate([old, new])
            for old, new in zip(self.senti_means, delta.senti_means)
        ]
        self.senti_has = [
            np.concatenate([old, new])
            for old, new in zip(self.senti_has, delta.senti_has)
        ]
        self.style_ids = {
            k: np.concatenate([self.style_ids[k], delta.style_ids[k]])
            for k in self.style_ks
        }
        self.style_len = {
            k: np.concatenate([self.style_len[k], delta.style_len[k]])
            for k in self.style_ks
        }
        for kind in self.sensor_kinds:
            self.has_kind[kind] = np.concatenate(
                [self.has_kind[kind], delta.has_kind[kind]]
            )
            shift = np.shape(self.payloads[kind])[0]
            self.payloads[kind] = np.concatenate(
                [self.payloads[kind], delta.payloads[kind]]
            )
            for scale in self.sensor_scales:
                old_csr = self.windows[(kind, scale)]
                new_csr = delta.windows[(kind, scale)]
                self.windows[(kind, scale)] = _WindowCSR(
                    acct_ptr=np.concatenate(
                        [old_csr.acct_ptr, old_csr.acct_ptr[-1] + new_csr.acct_ptr[1:]]
                    ),
                    win_ids=np.concatenate([old_csr.win_ids, new_csr.win_ids]),
                    win_start=np.concatenate(
                        [old_csr.win_start, new_csr.win_start + shift]
                    ),
                    win_end=np.concatenate(
                        [old_csr.win_end, new_csr.win_end + shift]
                    ),
                    num_windows=old_csr.num_windows,
                )
        if self.summaries.size == 0 and old_n == 0:
            self.summaries = delta.summaries
        else:
            self.summaries = np.concatenate([self.summaries, delta.summaries])
        self.eq_code_maps = eq_code_maps
        self.style_vocab = style_vocab
        return old_n

    # ------------------------------------------------------------------
    def subset(self, refs: list[AccountRef]) -> "PackedAccountStore":
        """A new store holding only ``refs``, in the given order.

        This is the shard-shipping primitive: a worker that will only ever
        score pairs drawn from a known account subset (one shard of a
        partitioned corpus, one machine of a multi-machine layout) can
        receive a sliced store instead of the full one.  Every per-account
        array is gathered to the new row order; the CSR sensor layout is
        re-based onto compacted payload arrays, so the subset carries no
        payload bytes for accounts outside ``refs``.  Featurizing a pair
        through a subset store is bit-identical to the full store — all
        state is strictly per-account.

        Raises :class:`KeyError` for refs that were never packed and
        :class:`ValueError` on duplicates.
        """
        rows = np.array([self.row_of[ref] for ref in refs], dtype=np.int64)
        if len(set(refs)) != len(refs):
            raise ValueError("duplicate refs in subset request")

        topic_means = [m[rows] for m in self.topic_means]
        topic_has = [h[rows] for h in self.topic_has]
        senti_means = [m[rows] for m in self.senti_means]
        senti_has = [h[rows] for h in self.senti_has]
        style_ids = {k: v[rows] for k, v in self.style_ids.items()}
        style_len = {k: v[rows] for k, v in self.style_len.items()}

        has_kind = {kind: has[rows] for kind, has in self.has_kind.items()}
        payloads: dict = {}
        windows: dict = {}
        for kind in self.sensor_kinds:
            # per-account payload extents: every scale's windows tile the
            # account's event range exactly, so any scale yields the extents
            csr0 = self.windows[(kind, self.sensor_scales[0])]
            ext_lo = np.zeros(rows.shape[0], dtype=np.int64)
            ext_hi = np.zeros(rows.shape[0], dtype=np.int64)
            occupied = csr0.acct_ptr[rows + 1] > csr0.acct_ptr[rows]
            ext_lo[occupied] = csr0.win_start[csr0.acct_ptr[rows[occupied]]]
            ext_hi[occupied] = csr0.win_end[
                csr0.acct_ptr[rows[occupied] + 1] - 1
            ]
            sizes = ext_hi - ext_lo
            new_offsets = np.concatenate([[0], np.cumsum(sizes)])
            payload = self.payloads[kind]
            parts = [payload[lo:hi] for lo, hi in zip(ext_lo, ext_hi)]
            payloads[kind] = (
                np.concatenate(parts) if parts else payload[:0]
            )
            for scale in self.sensor_scales:
                csr = self.windows[(kind, scale)]
                acct_ptr = np.zeros(rows.shape[0] + 1, dtype=np.int64)
                ids_parts, start_parts, end_parts = [], [], []
                for new_row, old_row in enumerate(rows):
                    lo, hi = csr.acct_ptr[old_row], csr.acct_ptr[old_row + 1]
                    acct_ptr[new_row + 1] = acct_ptr[new_row] + (hi - lo)
                    if hi > lo:
                        shift = new_offsets[new_row] - ext_lo[new_row]
                        ids_parts.append(csr.win_ids[lo:hi])
                        start_parts.append(csr.win_start[lo:hi] + shift)
                        end_parts.append(csr.win_end[lo:hi] + shift)
                empty = np.zeros(0, dtype=np.int64)
                windows[(kind, scale)] = _WindowCSR(
                    acct_ptr=acct_ptr,
                    win_ids=np.concatenate(ids_parts) if ids_parts else empty,
                    win_start=(
                        np.concatenate(start_parts) if start_parts else empty
                    ),
                    win_end=np.concatenate(end_parts) if end_parts else empty,
                    num_windows=csr.num_windows,
                )

        return PackedAccountStore(
            refs=list(refs),
            row_of={ref: row for row, ref in enumerate(refs)},
            eq_codes=self.eq_codes[rows],
            birth=self.birth[rows],
            bio_words=[self.bio_words[r] for r in rows],
            tag_sets=[self.tag_sets[r] for r in rows],
            username_bigrams=[self.username_bigrams[r] for r in rows],
            username_nonempty=self.username_nonempty[rows],
            face_emb=self.face_emb[rows],
            face_present=self.face_present[rows],
            face_detected=self.face_detected[rows],
            face_norm=self.face_norm[rows],
            topic_scales=self.topic_scales,
            topic_means=topic_means,
            topic_has=topic_has,
            senti_means=senti_means,
            senti_has=senti_has,
            style_ks=self.style_ks,
            style_ids=style_ids,
            style_len=style_len,
            sensor_kinds=self.sensor_kinds,
            sensor_scales=self.sensor_scales,
            has_kind=has_kind,
            payloads=payloads,
            windows=windows,
            summaries=self.summaries[rows],
            # code values are preserved by row gathering, so the (super)maps
            # stay valid seeds for future appends onto the subset
            eq_code_maps=(
                {attr: dict(m) for attr, m in maps.items()}
                if (maps := getattr(self, "eq_code_maps", None)) is not None
                else None
            ),
            style_vocab=(
                dict(vocab)
                if (vocab := getattr(self, "style_vocab", None)) is not None
                else None
            ),
        )

    @staticmethod
    def _stack_profiles(profiles: list, dim: int) -> tuple[list, list]:
        """Stack per-scale ``(bucket_means, has_data)`` profiles across accounts.

        Accounts with no messages carry ``(B, 0)``-shaped means (the bucket
        aggregator emits dim 0 for empty inputs); they are widened to zeros of
        the model dimension — their ``has_data`` rows are all-False, so the
        padding is never gathered.
        """
        if not profiles:
            return [], []
        num_scales = len(profiles[0])
        means_out, has_out = [], []
        for s in range(num_scales):
            buckets = {p[s][0].shape[0] for p in profiles}
            if len(buckets) != 1:
                raise ValueError(
                    f"bucket counts disagree across accounts at scale {s}: {buckets}"
                )
            num_buckets = buckets.pop()
            means = np.zeros((len(profiles), num_buckets, dim))
            has = np.zeros((len(profiles), num_buckets), dtype=bool)
            for row, profile in enumerate(profiles):
                bucket_means, bucket_has = profile[s]
                if bucket_means.shape[1]:
                    means[row] = bucket_means
                has[row] = bucket_has
            means_out.append(means)
            has_out.append(has)
        return means_out, has_out


# ----------------------------------------------------------------------
# the batch featurizer
# ----------------------------------------------------------------------
class BatchFeaturizer:
    """Array-at-a-time pair featurization over a :class:`PackedAccountStore`.

    Parameters
    ----------
    store:
        The packed per-account state.
    importance_scale:
        The attribute-importance weights rescaled by their maximum (the
        exact multiplier the reference ``weighted_matches`` applies).
    face:
        The fitted pipeline's face matcher (calibration parameters).
    topic_kernel:
        Bucket-kernel name shared by the genre and sentiment blocks.
    sensors:
        The pattern sensors, in feature order.
    sensor_q / sensor_lam:
        Eqn 5 pooling order and sigmoid steepness.
    """

    def __init__(
        self,
        store: PackedAccountStore,
        *,
        importance_scale: np.ndarray,
        face: FaceMatcher,
        topic_kernel: str,
        sensors: list[PatternSensor],
        sensor_q: float,
        sensor_lam: float,
    ):
        self.store = store
        self.importance_scale = np.asarray(importance_scale, dtype=float)
        if self.importance_scale.shape[0] != len(_ATTRIBUTE_ORDER):
            raise ValueError(
                f"expected {len(_ATTRIBUTE_ORDER)} attribute weights, "
                f"got {self.importance_scale.shape[0]}"
            )
        self.face = face
        self.topic_kernel = topic_kernel
        self._row_kernel = row_kernel(topic_kernel)
        self.sensors = list(sensors)
        if tuple(s.kind for s in self.sensors) != store.sensor_kinds:
            raise ValueError("sensor order disagrees with the packed store")
        self.sensor_q = float(sensor_q)
        self.sensor_lam = float(sensor_lam)
        self._build_derived()

    # ------------------------------------------------------------------
    def _build_derived(self) -> None:
        """Dense presence/position grids and per-window media item sets.

        Derived from the CSR layout; excluded from pickling (rebuilt on
        unpickle) so persisted artifacts carry only the canonical arrays.
        Initialized empty and filled by :meth:`refresh_derived`, which also
        extends the grids incrementally after a store ``append`` — delta
        ingestion derives state only for the appended rows.
        """
        store = self.store
        self._pres: dict = {}
        self._win_pos: dict = {}
        self._media_sets: dict = {}
        self._media_sizes: dict = {}
        self._derived_accounts = 0
        for (kind, scale), csr in store.windows.items():
            self._pres[(kind, scale)] = np.zeros(
                (0, csr.num_windows), dtype=bool
            )
            self._win_pos[(kind, scale)] = np.zeros(
                (0, csr.num_windows), dtype=np.int64
            )
            if kind == "media":
                self._media_sets[scale] = []
                self._media_sizes[scale] = np.zeros(0, dtype=np.int64)
        self.refresh_derived()

    def refresh_derived(self) -> None:
        """Extend the derived grids over rows appended to the store.

        A store ``append`` only concatenates new accounts' CSR tail windows,
        so the presence/position grids and media window sets grow by exactly
        the new rows — existing rows are copied (cheap) but never recomputed.
        """
        store = self.store
        n = store.num_accounts
        start = self._derived_accounts
        if start == n:
            return
        for (kind, scale), csr in store.windows.items():
            pres = np.zeros((n - start, csr.num_windows), dtype=bool)
            win_pos = np.zeros((n - start, csr.num_windows), dtype=np.int64)
            for row in range(start, n):
                lo, hi = csr.acct_ptr[row], csr.acct_ptr[row + 1]
                ids = csr.win_ids[lo:hi]
                pres[row - start, ids] = True
                win_pos[row - start, ids] = np.arange(lo, hi)
            self._pres[(kind, scale)] = np.vstack(
                [self._pres[(kind, scale)], pres]
            )
            self._win_pos[(kind, scale)] = np.vstack(
                [self._win_pos[(kind, scale)], win_pos]
            )
            if kind == "media":
                payload = store.payloads[kind]
                done = len(self._media_sets[scale])
                sets = [
                    frozenset(
                        item_of(int(v))
                        for v in payload[csr.win_start[w]: csr.win_end[w]]
                    )
                    for w in range(done, csr.win_ids.shape[0])
                ]
                self._media_sets[scale].extend(sets)
                self._media_sizes[scale] = np.concatenate(
                    [
                        self._media_sizes[scale],
                        np.array([len(s) for s in sets], dtype=np.int64),
                    ]
                )
        self._derived_accounts = n

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for key in (
            "_pres", "_win_pos", "_media_sets", "_media_sizes",
            "_derived_accounts",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._build_derived()

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Feature-vector dimensionality D (same layout as the pipeline)."""
        store = self.store
        return (
            len(_ATTRIBUTE_ORDER)
            + 2  # username similarity + face confidence
            + 2 * len(store.topic_scales)
            + len(store.style_ks)
            + len(store.sensor_kinds) * len(store.sensor_scales)
        )

    def matrix(self, pairs: list) -> np.ndarray:
        """Feature matrix ``(n_pairs, D)``; rows keep NaN for missing.

        Raises :class:`KeyError` when a ref was not packed (i.e. was not part
        of the fitted world), mirroring the reference path's cache miss.
        """
        n = len(pairs)
        if n == 0:
            return np.zeros((0, self.dim))
        store = self.store
        left = np.fromiter(
            (store.row_of[a] for a, _ in pairs), dtype=np.int64, count=n
        )
        right = np.fromiter(
            (store.row_of[b] for _, b in pairs), dtype=np.int64, count=n
        )
        out = np.empty((n, self.dim))
        col = 0
        col = self._fill_attributes(out, col, left, right)
        col = self._fill_username(out, col, left, right)
        col = self._fill_face(out, col, left, right)
        col = self._fill_profile_block(
            out, col, left, right, store.topic_means, store.topic_has
        )
        col = self._fill_profile_block(
            out, col, left, right, store.senti_means, store.senti_has
        )
        col = self._fill_style(out, col, left, right)
        col = self._fill_sensors(out, col, left, right)
        assert col == self.dim
        return out

    # ------------------------------------------------------------------
    # feature blocks
    # ------------------------------------------------------------------
    def _fill_attributes(self, out, col, left, right) -> int:
        store = self.store
        n = left.shape[0]
        block = np.empty((n, len(_ATTRIBUTE_ORDER)))
        eq_col = {attr: i for i, attr in enumerate(_EQ_ATTRIBUTES)}
        for j, attr in enumerate(_ATTRIBUTE_ORDER):
            if attr in eq_col:
                codes = store.eq_codes[:, eq_col[attr]]
                ca, cb = codes[left], codes[right]
                present = (ca >= 0) & (cb >= 0)
                block[:, j] = np.where(
                    present, (ca == cb).astype(float), np.nan
                )
            elif attr == "birth":
                ba, bb = store.birth[left], store.birth[right]
                with np.errstate(invalid="ignore"):
                    match = (np.abs(ba - bb) <= 1.0).astype(float)
                block[:, j] = np.where(
                    np.isfinite(ba) & np.isfinite(bb), match, np.nan
                )
            else:  # bio / tag: per-pair Jaccard over tiny precomputed sets
                sets = store.bio_words if attr == "bio" else store.tag_sets
                threshold = 0.5 if attr == "bio" else 1.0 / 3.0
                column = block[:, j]
                for i in range(n):
                    sa, sb = sets[left[i]], sets[right[i]]
                    if sa is None or sb is None:
                        column[i] = np.nan
                    else:
                        column[i] = 1.0 if _jaccard(sa, sb) >= threshold else 0.0
        out[:, col: col + block.shape[1]] = block * self.importance_scale[None, :]
        return col + block.shape[1]

    def _fill_username(self, out, col, left, right) -> int:
        store = self.store
        grams = store.username_bigrams
        nonempty = store.username_nonempty
        column = out[:, col]
        for i in range(left.shape[0]):
            la, rb = left[i], right[i]
            if nonempty[la] and nonempty[rb]:
                column[i] = _jaccard(grams[la], grams[rb])
            else:
                column[i] = 0.0
        return col + 1

    def _fill_face(self, out, col, left, right) -> int:
        store = self.store
        denom = store.face_norm[left] * store.face_norm[right]
        valid = (
            store.face_present[left]
            & store.face_present[right]
            & store.face_detected[left]
            & store.face_detected[right]
            & (denom != 0.0)
        )
        column = np.full(left.shape[0], np.nan)
        if valid.any():
            a = store.face_emb[left[valid]]
            b = store.face_emb[right[valid]]
            cosine = (a * b).sum(axis=1) / denom[valid]
            column[valid] = 1.0 / (
                1.0
                + np.exp(-self.face.steepness * (cosine - self.face.threshold))
            )
        out[:, col] = column
        return col + 1

    def _fill_profile_block(self, out, col, left, right, means_list, has_list) -> int:
        # one segment_means pass over all scales: segment order is
        # scale-major then pair-major, matching the concatenated kernel values
        num_scales = len(means_list)
        value_parts = []
        lengths = np.empty((num_scales, left.shape[0]), dtype=np.int64)
        for s, (means, has) in enumerate(zip(means_list, has_list)):
            num_buckets, dim = means.shape[1], means.shape[2]
            both = has[left] & has[right]
            lengths[s] = both.sum(axis=1)
            pair_idx, bucket_idx = np.nonzero(both)
            flat = means.reshape(-1, dim)
            p = flat[left[pair_idx] * num_buckets + bucket_idx]
            q = flat[right[pair_idx] * num_buckets + bucket_idx]
            value_parts.append(self._row_kernel(p, q))
        means_flat = segment_means(
            np.concatenate(value_parts) if value_parts else np.zeros(0),
            lengths.ravel(),
        )
        out[:, col: col + num_scales] = means_flat.reshape(
            num_scales, left.shape[0]
        ).T
        return col + num_scales

    def _fill_style(self, out, col, left, right) -> int:
        store = self.store
        for k in store.style_ks:
            ids = store.style_ids[k]
            ids_a, ids_b = ids[left], ids[right]
            overlap = (
                (ids_a[:, :, None] == ids_b[:, None, :])
                & (ids_a[:, :, None] >= 0)
            ).sum(axis=(1, 2))
            empty = (store.style_len[k][left] == 0) | (
                store.style_len[k][right] == 0
            )
            out[:, col] = np.where(empty, np.nan, overlap / float(k))
            col += 1
        return col

    def _fill_sensors(self, out, col, left, right) -> int:
        # gather every (sensor, scale)'s stimuli first, run ONE segment_means
        # pass over the concatenation, then pool/sigmoid per combination
        pending = []  # (column, valid_mask, lengths)
        powered_parts = []
        for sensor in self.sensors:
            has = self.store.has_kind[sensor.kind]
            valid = has[left] & has[right]
            any_valid = valid.any()
            for scale in self.store.sensor_scales:
                out[:, col] = np.nan
                if any_valid:
                    stimuli, lengths = self._sensor_scale_stimuli(
                        sensor, scale, left[valid], right[valid]
                    )
                    powered_parts.append(stimuli ** self.sensor_q)
                    pending.append((col, valid, lengths))
                col += 1
        if pending:
            means_all = segment_means(
                np.concatenate(powered_parts),
                np.concatenate([lengths for _, _, lengths in pending]),
            )
            offset = 0
            for column, valid, lengths in pending:
                means = means_all[offset: offset + lengths.shape[0]]
                offset += lengths.shape[0]
                pooled = np.zeros(lengths.shape[0])
                active = lengths > 0
                pooled[active] = means[active] ** (1.0 / self.sensor_q)
                out[valid, column] = 1.0 / (
                    1.0 + np.exp(-self.sensor_lam * pooled)
                )
        return col

    def _sensor_scale_stimuli(self, sensor, scale, left, right):
        """Co-active-window stimuli (Eqn 5 input) for one (sensor, scale).

        Returns the flat stimulus array (pair-major, windows ascending — the
        reference iteration order) and the per-pair segment lengths.
        """
        key = (sensor.kind, scale)
        pres = self._pres[key]
        win_pos = self._win_pos[key]
        both = pres[left] & pres[right]
        lengths = both.sum(axis=1)
        pair_idx, window_idx = np.nonzero(both)
        wa = win_pos[left[pair_idx], window_idx]
        wb = win_pos[right[pair_idx], window_idx]
        if isinstance(sensor, NearDuplicateMediaSensor):
            return self._media_stimuli(scale, wa, wb), lengths
        if isinstance(sensor, LocationMatchingSensor):
            return self._location_stimuli(sensor, scale, wa, wb), lengths
        raise TypeError(
            f"batch engine has no vectorized stimulus for {type(sensor)!r}"
        )

    def _media_stimuli(self, scale, wa, wb) -> np.ndarray:
        """Per co-active window: shared down-sampled items over the sparser set."""
        sets = self._media_sets[scale]
        sizes = self._media_sizes[scale]
        overlap = np.fromiter(
            (len(sets[a] & sets[b]) for a, b in zip(wa, wb)),
            dtype=np.int64,
            count=wa.shape[0],
        )
        return overlap / np.minimum(sizes[wa], sizes[wb]).astype(float)

    def _location_stimuli(self, sensor, scale, wa, wb) -> np.ndarray:
        """Gaussian geo adjacency per co-active window, all windows at once.

        Replicates :meth:`LocationMatchingSensor.stimulus` elementwise over
        the concatenated coordinate cross-products; the per-window reduction
        is a minimum, which is order-independent and exact.
        """
        if wa.shape[0] == 0:
            return np.zeros(0)
        csr = self.store.windows[("checkin", scale)]
        coords = self.store.payloads["checkin"]
        na = csr.win_end[wa] - csr.win_start[wa]
        nb = csr.win_end[wb] - csr.win_start[wb]
        sizes = na * nb
        seg_offsets = np.concatenate([[0], np.cumsum(sizes)])
        seg_id = np.repeat(np.arange(sizes.shape[0]), sizes)
        local = np.arange(seg_offsets[-1]) - seg_offsets[seg_id]
        ai = csr.win_start[wa][seg_id] + local // nb[seg_id]
        bi = csr.win_start[wb][seg_id] + local % nb[seg_id]
        lat_a, lon_a = coords[ai, 0], coords[ai, 1]
        lat_b, lon_b = coords[bi, 0], coords[bi, 1]
        mean_lat = np.deg2rad((lat_a + lat_b) / 2.0)
        d_lat = (lat_a - lat_b) * _KM_PER_DEG
        d_lon = (lon_a - lon_b) * _KM_PER_DEG * np.cos(mean_lat)
        dist_km = np.sqrt(d_lat**2 + d_lon**2)
        dist_km = np.where(dist_km <= sensor.max_range_km, dist_km, np.inf)
        best = np.minimum.reduceat(dist_km, seg_offsets[:-1])
        stimuli = np.zeros(wa.shape[0])
        finite = np.isfinite(best)
        best_f = best[finite]
        stimuli[finite] = np.exp(
            -(best_f * best_f) / (2.0 * sensor.bandwidth_km**2)
        )
        return stimuli
