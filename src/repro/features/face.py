"""Visual attribute matching: the Fig 4 face-recognition workflow, simulated.

The paper pipes profile images through image detection -> face detection ->
feature extraction -> a pre-trained classifier emitting "a confidence score in
[0, 1] indicating how likely the two faces belong to one person", aborting
(missing feature) when either image is absent or contains no detectable face.

Our substrate replaces pixel data with latent unit-norm *face embeddings*
(:mod:`repro.datagen` gives each person one; profiles carry noisy or impostor
copies).  The workflow structure is preserved exactly:

1. *image detector* — a ``None`` embedding means no image was uploaded: abort;
2. *face detector* — detection failure is simulated deterministically from the
   embedding content (a hash-derived coin), so the same image always
   detects or fails identically, like a real detector would: abort;
3. *classifier* — logistic calibration of cosine similarity between the two
   embeddings, the standard form of verification heads on embedding models.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["FaceMatcher"]


class FaceMatcher:
    """Simulated face verification with the paper's abort semantics.

    Parameters
    ----------
    detection_failure_rate:
        Fraction of images in which the detector finds no face (poor
        illumination, occlusion).  Failure is a deterministic function of the
        image, not of call order.
    steepness, threshold:
        Logistic calibration ``score = sigmoid(steepness * (cos - threshold))``
        mapping cosine similarity to a same-person confidence.
    """

    def __init__(
        self,
        *,
        detection_failure_rate: float = 0.1,
        steepness: float = 8.0,
        threshold: float = 0.5,
    ):
        if not 0.0 <= detection_failure_rate < 1.0:
            raise ValueError(
                f"detection_failure_rate must be in [0, 1), got {detection_failure_rate}"
            )
        self.detection_failure_rate = detection_failure_rate
        self.steepness = steepness
        self.threshold = threshold

    # ------------------------------------------------------------------
    def detects_face(self, embedding: np.ndarray) -> bool:
        """Deterministic face-detector simulation on one image."""
        digest = hashlib.blake2b(
            np.ascontiguousarray(embedding, dtype=np.float64).tobytes(),
            digest_size=8,
        ).digest()
        coin = int.from_bytes(digest, "little") / float(1 << 64)
        return coin >= self.detection_failure_rate

    def score(
        self, embedding_a: np.ndarray | None, embedding_b: np.ndarray | None
    ) -> float:
        """Run the Fig 4 workflow; returns confidence in [0, 1] or NaN on abort."""
        # image detector stage
        if embedding_a is None or embedding_b is None:
            return float("nan")
        # face detector stage
        if not self.detects_face(embedding_a) or not self.detects_face(embedding_b):
            return float("nan")
        # feature extraction + classifier stage
        a = np.asarray(embedding_a, dtype=float)
        b = np.asarray(embedding_b, dtype=float)
        denom = float(np.linalg.norm(a) * np.linalg.norm(b))
        if denom == 0.0:
            return float("nan")
        # elementwise product + pairwise-sum reduction (not BLAS dot), so the
        # batch engine's row-wise (n, d) reduction is bit-identical to this
        cosine = float((a * b).sum()) / denom
        return float(1.0 / (1.0 + np.exp(-self.steepness * (cosine - self.threshold))))
