"""Multi-scale temporal topic similarity (Section 5.2, Fig 5).

"First, the time axis is divided into multiple time buckets with different
scales (we use 1, 2, 4, 8, 16 and 32 days ...), then all the topic
distribution vectors within each bucket are aggregated into a single
distribution ... the similarity of topic evolution of a specific scale
between two users can be simply calculated by averaging over the similarities
of all temporal intervals, where each similarity can be measured by the
chi-square kernel or histogram intersection kernel.  Finally, all the
similarities calculated using different time scales are concatenated into a
similarity vector."

The same machinery serves both distribution types the paper analyzes this way
(content genre and sentiment pattern): callers hand in per-message
distributions + timestamps for the two accounts.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "TOPIC_SCALES_DAYS",
    "chi_square_similarity",
    "histogram_intersection",
    "bucket_aggregate",
    "row_kernel",
    "MultiScaleTopicSimilarity",
]

#: The paper's bucket scales, in days.
TOPIC_SCALES_DAYS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def chi_square_similarity(p: np.ndarray, q: np.ndarray) -> float:
    """Chi-square kernel ``sum 2 p_i q_i / (p_i + q_i)`` in [0, 1] for distributions."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    denom = p + q
    mask = denom > 0
    return float(np.sum(2.0 * p[mask] * q[mask] / denom[mask]))


def histogram_intersection(p: np.ndarray, q: np.ndarray) -> float:
    """Histogram intersection kernel ``sum min(p_i, q_i)`` in [0, 1]."""
    return float(np.minimum(np.asarray(p, float), np.asarray(q, float)).sum())


def _chi_square_rows(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Row-wise chi-square kernel over two (n, dim) stacks."""
    denom = p + q
    with np.errstate(invalid="ignore", divide="ignore"):
        terms = np.where(denom > 0, 2.0 * p * q / np.where(denom > 0, denom, 1.0), 0.0)
    return terms.sum(axis=1)


def _histogram_intersection_rows(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Row-wise histogram-intersection kernel over two (n, dim) stacks."""
    return np.minimum(p, q).sum(axis=1)


_KERNELS = {
    "chi_square": chi_square_similarity,
    "histogram_intersection": histogram_intersection,
}

_ROW_KERNELS = {
    "chi_square": _chi_square_rows,
    "histogram_intersection": _histogram_intersection_rows,
}


def row_kernel(name: str):
    """The row-wise bucket kernel for ``name`` — shared by the per-pair path
    and the batch featurization engine so both evaluate identical operations."""
    if name not in _ROW_KERNELS:
        raise ValueError(f"unknown kernel {name!r}; options: {sorted(_ROW_KERNELS)}")
    return _ROW_KERNELS[name]


def bucket_aggregate(
    distributions: np.ndarray,
    timestamps: np.ndarray,
    *,
    scale_days: float,
    t0: float,
    t1: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate per-message distributions into per-bucket mean distributions.

    Returns ``(bucket_means, bucket_has_data)`` where ``bucket_means`` is
    ``(n_buckets, dim)`` and ``bucket_has_data`` flags buckets containing at
    least one message.  Bucket count is ``ceil((t1 - t0) / scale_days)``.
    """
    if scale_days <= 0:
        raise ValueError(f"scale_days must be > 0, got {scale_days}")
    if t1 <= t0:
        raise ValueError(f"empty time range: ({t0}, {t1})")
    distributions = np.atleast_2d(np.asarray(distributions, dtype=float))
    timestamps = np.asarray(timestamps, dtype=float)
    n_buckets = int(np.ceil((t1 - t0) / scale_days))
    dim = distributions.shape[1] if distributions.size else 0
    means = np.zeros((n_buckets, dim))
    counts = np.zeros(n_buckets)
    if timestamps.size:
        idx = np.clip(((timestamps - t0) / scale_days).astype(int), 0, n_buckets - 1)
        np.add.at(means, idx, distributions)
        np.add.at(counts, idx, 1.0)
    has_data = counts > 0
    means[has_data] /= counts[has_data, None]
    return means, has_data


class MultiScaleTopicSimilarity:
    """Computes the concatenated multi-scale similarity vector for a pair.

    Parameters
    ----------
    scales_days:
        Bucket widths; one output dimension per scale.
    kernel:
        ``"chi_square"`` or ``"histogram_intersection"``.
    time_range:
        Global ``(t0, t1)`` observation window shared by both accounts.
    """

    def __init__(
        self,
        *,
        scales_days: tuple[float, ...] = TOPIC_SCALES_DAYS,
        kernel: str = "chi_square",
        time_range: tuple[float, float] = (0.0, 365.0),
    ):
        if not scales_days:
            raise ValueError("scales_days must not be empty")
        if kernel not in _KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; options: {sorted(_KERNELS)}")
        self.scales_days = tuple(float(s) for s in scales_days)
        self.kernel_name = kernel
        self._kernel = _KERNELS[kernel]
        self._row_kernel = _ROW_KERNELS[kernel]
        self.time_range = time_range

    @property
    def output_dim(self) -> int:
        """One similarity per scale."""
        return len(self.scales_days)

    def account_profile(
        self, distributions: np.ndarray, timestamps: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Precompute one account's per-scale bucket aggregates.

        The profile is pair-independent, so featurizing many pairs sharing an
        account computes it once; :meth:`similarity_from_profiles` combines
        two cached profiles in O(buckets).
        """
        t0, t1 = self.time_range
        return [
            bucket_aggregate(distributions, timestamps, scale_days=s, t0=t0, t1=t1)
            for s in self.scales_days
        ]

    def similarity_from_profiles(
        self,
        profile_a: list[tuple[np.ndarray, np.ndarray]],
        profile_b: list[tuple[np.ndarray, np.ndarray]],
    ) -> np.ndarray:
        """Per-scale average bucket similarity from two cached profiles.

        Only buckets where *both* users produced content contribute — empty
        buckets are not evidence of dissimilarity, they are missing data (the
        paper's robustness-to-missing design).  Scales with no co-active
        bucket are NaN.
        """
        out = np.empty(len(self.scales_days))
        for s_idx, ((means_a, has_a), (means_b, has_b)) in enumerate(
            zip(profile_a, profile_b)
        ):
            both = has_a & has_b
            if not both.any():
                out[s_idx] = np.nan
                continue
            out[s_idx] = float(
                self._row_kernel(means_a[both], means_b[both]).mean()
            )
        return out

    def similarity_vector(
        self,
        dists_a: np.ndarray,
        times_a: np.ndarray,
        dists_b: np.ndarray,
        times_b: np.ndarray,
    ) -> np.ndarray:
        """One-shot convenience wrapper around the profile-based path."""
        return self.similarity_from_profiles(
            self.account_profile(dists_a, times_a),
            self.account_profile(dists_b, times_b),
        )
