"""User style similarity: unique-word matching (Section 5.3, Eqn 4).

``S_lea = #matched_words / k`` over the k most unique words of each user
(after normalization to "a uniform format, such as lower-case and singular
form" — handled by the tokenizer when the signatures were extracted).
"""

from __future__ import annotations

import numpy as np

from repro.text.style import UserStyle

__all__ = ["style_similarity"]


def style_similarity(style_a: UserStyle, style_b: UserStyle) -> np.ndarray:
    """Eqn 4 at every k level shared by the two signatures.

    Returns one value per k (ascending k order).  A level where either user
    has an empty signature (no usable unique words, e.g. an account that never
    posted) is NaN — missing, not zero.
    """
    ks = sorted(set(style_a.signatures) & set(style_b.signatures))
    if not ks:
        raise ValueError("styles share no signature levels")
    out = np.empty(len(ks))
    for idx, k in enumerate(ks):
        words_a = set(style_a.signatures[k])
        words_b = set(style_b.signatures[k])
        if not words_a or not words_b:
            out[idx] = np.nan
            continue
        out[idx] = len(words_a & words_b) / float(k)
    return out
