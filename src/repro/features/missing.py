"""Missing-feature resolution strategies (Section 6.3, "Dealing with Missing
Information").

Two strategies, matching the paper's two model variants:

* :class:`ZeroFiller` — HYDRA-Z: "a missing feature is automatically filled
  with zeros based on the assumption that the values do exist but are not
  observed" (the previous-work behavior the paper argues against);
* :class:`CoreStructureFiller` — HYDRA-M (Eqn 18): the missing dimension of a
  pair (i, i') is filled with the average of that same similarity measure
  over the 3 x 3 pairs of their top-3 most-interacting friends,
  ``s(i,i') = (1/9) * sum_p sum_q s(i_p, i'_q)``; "if the information of
  their friends are still missing, we automatically fill the corresponding
  dimension as 0".
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.features.pipeline import AccountRef, FeaturePipeline
from repro.socialnet.platform import SocialWorld

__all__ = ["MissingFiller", "ZeroFiller", "CoreStructureFiller"]


class MissingFiller(Protocol):
    """Strategy turning NaN-bearing feature matrices into complete ones."""

    def fill_matrix(
        self, pairs: list[tuple[AccountRef, AccountRef]], matrix: np.ndarray
    ) -> np.ndarray:
        """Return a copy of ``matrix`` with every NaN resolved."""
        ...  # pragma: no cover - protocol


class ZeroFiller:
    """HYDRA-Z: missing dimensions become zeros."""

    def fill_matrix(
        self, pairs: list[tuple[AccountRef, AccountRef]], matrix: np.ndarray
    ) -> np.ndarray:
        """NaN -> 0, unconditionally."""
        return np.nan_to_num(np.asarray(matrix, dtype=float), nan=0.0)


class CoreStructureFiller:
    """HYDRA-M: Eqn 18 fill from the core social network.

    Parameters
    ----------
    world:
        The social world (for the per-platform interaction graphs).
    pipeline:
        A fitted :class:`~repro.features.pipeline.FeaturePipeline`; friend-pair
        vectors are computed through it on demand and memoized, so filling a
        batch of pairs shares work across pairs with common friends.
    top_k:
        Number of most-interacting friends per side (the paper uses 3).
    pair_vector:
        Override for the friend-pair featurizer (tests / custom fills).
        When omitted, friend-pair vectors come from ``pipeline.matrix`` —
        i.e. the batch engine — and :meth:`fill_matrix` prefetches every
        friend pair a batch needs in one array-at-a-time call.
    engine:
        Featurization engine forwarded to ``pipeline.matrix`` for the
        prefetch (``None`` = the pipeline default).  A fit that forces the
        reference path should force it here too, so Eqn 18 vectors come
        from the same code path as the rest of the matrix.
    cache_limit:
        Upper bound on each memo (friend-pair vectors, Eqn 18 averages);
        oldest entries are evicted first so a long-running service scoring
        a stream of novel pairs stays bounded.
    """

    #: default bound for the per-pair memos (vectors are D floats each)
    DEFAULT_CACHE_LIMIT = 131072

    def __init__(
        self,
        world: SocialWorld,
        pipeline: FeaturePipeline,
        *,
        top_k: int = 3,
        pair_vector: Callable[[AccountRef, AccountRef], np.ndarray] | None = None,
        engine: str | None = None,
        cache_limit: int = DEFAULT_CACHE_LIMIT,
    ):
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if cache_limit < 1:
            raise ValueError(f"cache_limit must be >= 1, got {cache_limit}")
        self.world = world
        self.pipeline = pipeline
        self.top_k = top_k
        self.engine = engine
        self.cache_limit = cache_limit
        if pair_vector is not None:
            self._pair_vector = pair_vector
            self._matrix = None
        else:
            self._pair_vector = pipeline.pair_vector
            self._matrix = pipeline.matrix
        self._vector_cache: dict[tuple[AccountRef, AccountRef], np.ndarray] = {}
        self._friend_cache: dict[AccountRef, list[str]] = {}
        self._average_cache: dict[tuple[AccountRef, AccountRef], np.ndarray] = {}

    def __setstate__(self, state: dict) -> None:
        # fillers pickled by pre-batch-engine builds (the artifact layer
        # explicitly supports their blobs) predate several attributes
        self.__dict__.update(state)
        self.__dict__.setdefault("engine", None)
        self.__dict__.setdefault("cache_limit", self.DEFAULT_CACHE_LIMIT)
        self.__dict__.setdefault("_friend_cache", {})
        self.__dict__.setdefault("_average_cache", {})
        if "_matrix" not in self.__dict__:
            pair_vector = self.__dict__.get("_pair_vector")
            pipeline = self.__dict__.get("pipeline")
            self._matrix = (
                pipeline.matrix
                if pipeline is not None
                and getattr(pair_vector, "__self__", None) is pipeline
                else None
            )

    def clear_memos(self) -> None:
        """Drop every memo (after the world's accounts or edges mutate).

        The friend lists, friend-pair vectors and Eqn 18 averages are pure
        caches over the current world state; online ingestion calls this so
        fills reflect the mutated social graph.
        """
        self._vector_cache.clear()
        self._friend_cache.clear()
        self._average_cache.clear()

    def _bounded_insert(self, cache: dict, key, value) -> None:
        """Insert with FIFO eviction (dicts preserve insertion order)."""
        cache[key] = value
        if len(cache) > self.cache_limit:
            del cache[next(iter(cache))]

    def _cached_vector(self, ref_a: AccountRef, ref_b: AccountRef) -> np.ndarray:
        key = (ref_a, ref_b)
        vec = self._vector_cache.get(key)
        if vec is None:
            vec = self._pair_vector(ref_a, ref_b)
            self._bounded_insert(self._vector_cache, key, vec)
        return vec

    def _top_friends(self, ref: AccountRef) -> list[str]:
        friends = self._friend_cache.get(ref)
        if friends is None:
            friends = self.world.platforms[ref[0]].graph.top_friends(
                ref[1], self.top_k
            )
            self._friend_cache[ref] = friends
        return friends

    def _featurizable(self, ref: AccountRef) -> bool:
        """Whether the pipeline can featurize ``ref``.

        A friend that was withdrawn from serving (online removal) stays in
        the social graph but has no featurized state any more; per the
        paper's rule its contribution is simply *missing* — the Eqn 18
        average skips the friend pairs that involve it.  Only enforced for
        pipeline-backed fills; a custom ``pair_vector`` override answers
        for arbitrary refs.
        """
        if self._matrix is None:
            return True
        cache = getattr(self.pipeline, "_cache", None)
        return cache is None or ref in cache

    def _prefetch_friend_vectors(
        self, pairs: list[tuple[AccountRef, AccountRef]], matrix: np.ndarray
    ) -> None:
        """Batch-compute every friend-pair vector the fill will need.

        Only rows carrying NaN trigger Eqn 18; their top-k x top-k friend
        pairs are collected, deduplicated against the memo, and featurized in
        one batched call so the fill loop below is pure cache hits.
        """
        if self._matrix is None:
            return
        needed: list[tuple[AccountRef, AccountRef]] = []
        seen: set[tuple[AccountRef, AccountRef]] = set()
        for row in np.flatnonzero(np.isnan(matrix).any(axis=1)):
            ref_a, ref_b = pairs[row]
            for fa in self._top_friends(ref_a):
                for fb in self._top_friends(ref_b):
                    key = ((ref_a[0], fa), (ref_b[0], fb))
                    if (
                        key not in self._vector_cache
                        and key not in seen
                        and self._featurizable(key[0])
                        and self._featurizable(key[1])
                    ):
                        seen.add(key)
                        needed.append(key)
        if needed:
            if self.engine is None:
                vectors = self._matrix(needed)
            else:
                vectors = self._matrix(needed, engine=self.engine)
            for key, vector in zip(needed, vectors):
                self._bounded_insert(self._vector_cache, key, vector)

    def friend_pair_average(
        self, ref_a: AccountRef, ref_b: AccountRef
    ) -> np.ndarray:
        """Eqn 18: dimension-wise mean over the top-k x top-k friend pairs.

        Dimensions missing on *every* friend pair stay NaN (the caller zeros
        them, per the paper).  The average is query-independent, so it is
        memoized per pair — repeat scoring of the same pairs (the serving
        path) pays the friend-matrix reduction once.
        """
        key = (ref_a, ref_b)
        cached = self._average_cache.get(key)
        if cached is not None:
            return cached
        average = self._friend_pair_average(ref_a, ref_b)
        self._bounded_insert(self._average_cache, key, average)
        return average

    def _friend_pair_average(
        self, ref_a: AccountRef, ref_b: AccountRef
    ) -> np.ndarray:
        friends_a = self._top_friends(ref_a)
        friends_b = self._top_friends(ref_b)
        if not friends_a or not friends_b:
            return np.full(self.pipeline.dim, np.nan)
        vectors = [
            self._cached_vector((ref_a[0], fa), (ref_b[0], fb))
            for fa in friends_a
            for fb in friends_b
            if self._featurizable((ref_a[0], fa))
            and self._featurizable((ref_b[0], fb))
        ]
        if not vectors:
            return np.full(self.pipeline.dim, np.nan)
        stacked = np.vstack(vectors)
        # nanmean of an all-NaN column is NaN by design (caller zeros it);
        # compute it manually to avoid the noisy RuntimeWarning
        valid = ~np.isnan(stacked)
        counts = valid.sum(axis=0)
        sums = np.where(valid, stacked, 0.0).sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        return means

    def fill_vector(
        self, ref_a: AccountRef, ref_b: AccountRef, vector: np.ndarray
    ) -> np.ndarray:
        """Fill one pair's vector; falls back to 0 where friends are silent too."""
        vec = np.array(vector, dtype=float, copy=True)
        missing = np.isnan(vec)
        if not missing.any():
            return vec
        fill = self.friend_pair_average(ref_a, ref_b)
        vec[missing] = fill[missing]
        return np.nan_to_num(vec, nan=0.0)

    def fill_matrix(
        self, pairs: list[tuple[AccountRef, AccountRef]], matrix: np.ndarray
    ) -> np.ndarray:
        """Fill every row; ``pairs[i]`` must correspond to ``matrix[i]``."""
        matrix = np.asarray(matrix, dtype=float)
        if len(pairs) != matrix.shape[0]:
            raise ValueError(
                f"pairs ({len(pairs)}) and matrix rows ({matrix.shape[0]}) disagree"
            )
        self._prefetch_friend_vectors(pairs, matrix)
        out = matrix.copy()
        for row in np.flatnonzero(np.isnan(matrix).any(axis=1)):
            ref_a, ref_b = pairs[row]
            fill = self.friend_pair_average(ref_a, ref_b)
            mask = np.isnan(out[row])
            out[row, mask] = fill[mask]
        return np.nan_to_num(out, copy=False, nan=0.0)
