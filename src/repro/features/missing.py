"""Missing-feature resolution strategies (Section 6.3, "Dealing with Missing
Information").

Two strategies, matching the paper's two model variants:

* :class:`ZeroFiller` — HYDRA-Z: "a missing feature is automatically filled
  with zeros based on the assumption that the values do exist but are not
  observed" (the previous-work behavior the paper argues against);
* :class:`CoreStructureFiller` — HYDRA-M (Eqn 18): the missing dimension of a
  pair (i, i') is filled with the average of that same similarity measure
  over the 3 x 3 pairs of their top-3 most-interacting friends,
  ``s(i,i') = (1/9) * sum_p sum_q s(i_p, i'_q)``; "if the information of
  their friends are still missing, we automatically fill the corresponding
  dimension as 0".
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.features.pipeline import AccountRef, FeaturePipeline
from repro.socialnet.platform import SocialWorld

__all__ = ["MissingFiller", "ZeroFiller", "CoreStructureFiller"]


class MissingFiller(Protocol):
    """Strategy turning NaN-bearing feature matrices into complete ones."""

    def fill_matrix(
        self, pairs: list[tuple[AccountRef, AccountRef]], matrix: np.ndarray
    ) -> np.ndarray:
        """Return a copy of ``matrix`` with every NaN resolved."""
        ...  # pragma: no cover - protocol


class ZeroFiller:
    """HYDRA-Z: missing dimensions become zeros."""

    def fill_matrix(
        self, pairs: list[tuple[AccountRef, AccountRef]], matrix: np.ndarray
    ) -> np.ndarray:
        """NaN -> 0, unconditionally."""
        return np.nan_to_num(np.asarray(matrix, dtype=float), nan=0.0)


class CoreStructureFiller:
    """HYDRA-M: Eqn 18 fill from the core social network.

    Parameters
    ----------
    world:
        The social world (for the per-platform interaction graphs).
    pipeline:
        A fitted :class:`~repro.features.pipeline.FeaturePipeline`; friend-pair
        vectors are computed through it on demand and memoized, so filling a
        batch of pairs shares work across pairs with common friends.
    top_k:
        Number of most-interacting friends per side (the paper uses 3).
    """

    def __init__(
        self,
        world: SocialWorld,
        pipeline: FeaturePipeline,
        *,
        top_k: int = 3,
        pair_vector: Callable[[AccountRef, AccountRef], np.ndarray] | None = None,
    ):
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.world = world
        self.pipeline = pipeline
        self.top_k = top_k
        self._pair_vector = (
            pair_vector if pair_vector is not None else pipeline.pair_vector
        )
        self._vector_cache: dict[tuple[AccountRef, AccountRef], np.ndarray] = {}

    def _cached_vector(self, ref_a: AccountRef, ref_b: AccountRef) -> np.ndarray:
        key = (ref_a, ref_b)
        vec = self._vector_cache.get(key)
        if vec is None:
            vec = self._pair_vector(ref_a, ref_b)
            self._vector_cache[key] = vec
        return vec

    def friend_pair_average(
        self, ref_a: AccountRef, ref_b: AccountRef
    ) -> np.ndarray:
        """Eqn 18: dimension-wise mean over the top-k x top-k friend pairs.

        Dimensions missing on *every* friend pair stay NaN (the caller zeros
        them, per the paper).
        """
        platform_a = self.world.platforms[ref_a[0]]
        platform_b = self.world.platforms[ref_b[0]]
        friends_a = platform_a.graph.top_friends(ref_a[1], self.top_k)
        friends_b = platform_b.graph.top_friends(ref_b[1], self.top_k)
        if not friends_a or not friends_b:
            return np.full(self.pipeline.dim, np.nan)
        vectors = [
            self._cached_vector((ref_a[0], fa), (ref_b[0], fb))
            for fa in friends_a
            for fb in friends_b
        ]
        stacked = np.vstack(vectors)
        # nanmean of an all-NaN column is NaN by design (caller zeros it);
        # compute it manually to avoid the noisy RuntimeWarning
        valid = ~np.isnan(stacked)
        counts = valid.sum(axis=0)
        sums = np.where(valid, stacked, 0.0).sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        return means

    def fill_vector(
        self, ref_a: AccountRef, ref_b: AccountRef, vector: np.ndarray
    ) -> np.ndarray:
        """Fill one pair's vector; falls back to 0 where friends are silent too."""
        vec = np.array(vector, dtype=float, copy=True)
        missing = np.isnan(vec)
        if not missing.any():
            return vec
        fill = self.friend_pair_average(ref_a, ref_b)
        vec[missing] = fill[missing]
        return np.nan_to_num(vec, nan=0.0)

    def fill_matrix(
        self, pairs: list[tuple[AccountRef, AccountRef]], matrix: np.ndarray
    ) -> np.ndarray:
        """Fill every row; ``pairs[i]`` must correspond to ``matrix[i]``."""
        matrix = np.asarray(matrix, dtype=float)
        if len(pairs) != matrix.shape[0]:
            raise ValueError(
                f"pairs ({len(pairs)}) and matrix rows ({matrix.shape[0]}) disagree"
            )
        out = np.empty_like(matrix)
        for row, (ref_a, ref_b) in enumerate(pairs):
            out[row] = self.fill_vector(ref_a, ref_b, matrix[row])
        return out
