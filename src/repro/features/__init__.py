"""Heterogeneous behavior modeling (Section 5 of the paper).

Turns a pair of accounts on two platforms into the D-dimensional pair-wise
similarity vector ``x_ii'`` consumed by the multi-objective learner:
importance-weighted attribute matches (Eqn 3), the simulated face-matching
workflow (Fig 4), multi-scale temporal topic and sentiment similarities
(Fig 5), unique-word style similarity (Eqn 4), and multi-resolution
sensor-pooled trajectory/media matching (Eqn 5, Fig 6).  Missing entries are
NaN until a fill strategy (zero fill for HYDRA-Z, core-structure fill Eqn 18
for HYDRA-M) resolves them.
"""

from repro.features.attributes import (
    ATTRIBUTE_MATCHERS,
    AttributeImportanceModel,
    attribute_match_vector,
    username_similarity,
)
from repro.features.batch import BatchFeaturizer, PackedAccountStore, segment_means
from repro.features.face import FaceMatcher
from repro.features.topics import MultiScaleTopicSimilarity, TOPIC_SCALES_DAYS
from repro.features.style_sim import style_similarity
from repro.features.temporal import MultiResolutionMatcher, SENSOR_SCALES_DAYS
from repro.features.sensors import LocationMatchingSensor, NearDuplicateMediaSensor
from repro.features.pipeline import FeaturePipeline, PairFeatureResult
from repro.features.missing import CoreStructureFiller, ZeroFiller

__all__ = [
    "ATTRIBUTE_MATCHERS",
    "AttributeImportanceModel",
    "attribute_match_vector",
    "username_similarity",
    "BatchFeaturizer",
    "PackedAccountStore",
    "segment_means",
    "FaceMatcher",
    "MultiScaleTopicSimilarity",
    "TOPIC_SCALES_DAYS",
    "style_similarity",
    "MultiResolutionMatcher",
    "SENSOR_SCALES_DAYS",
    "LocationMatchingSensor",
    "NearDuplicateMediaSensor",
    "FeaturePipeline",
    "PairFeatureResult",
    "CoreStructureFiller",
    "ZeroFiller",
]
