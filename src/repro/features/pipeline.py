"""The similarity-vector pipeline: account pair -> x_ii' (Section 5 end-to-end).

:class:`FeaturePipeline` fits all shared models on a
:class:`~repro.socialnet.platform.SocialWorld` — vocabulary, LDA topic model,
sentiment lexicon encoding, style signatures, attribute-importance weights —
precomputes per-account behavior caches, and then emits the D-dimensional
pair-wise similarity vector for any cross-platform account pair.

Feature layout (``feature_names`` gives exact order):

========================  ====  =============================================
block                     dims  source
========================  ====  =============================================
attribute matches            7  Eqn 3 importance-weighted profile matching
username similarity          1  char-bigram Jaccard (Section 5.1)
face confidence              1  Fig 4 workflow (:mod:`repro.features.face`)
genre multi-scale            6  Fig 5 over LDA topic distributions
sentiment multi-scale        6  Fig 5 over sentiment distributions
style S_lea                  3  Eqn 4 at k = 1, 3, 5
sensor pooling              10  Eqn 5: {location, media} x 5 temporal scales
========================  ====  =============================================

Missing values stay NaN; resolve them with a strategy from
:mod:`repro.features.missing` before model training.

Two featurization paths
-----------------------

:meth:`FeaturePipeline.pair_vector` is the **reference path**: one pair at a
time, straight through the per-feature modules.  It stays the readable,
debuggable ground truth, and the core-structure missing filler's golden
definition.

:meth:`FeaturePipeline.matrix` runs the **batch path** by default: at the end
of :meth:`FeaturePipeline.fit` every account's cached behavior state is packed
into a :class:`~repro.features.batch.PackedAccountStore` — contiguous
per-scale bucket-profile stacks, style-signature id grids, face-embedding
rows, attribute codes, and CSR-encoded sensor windows, all indexed by an
``AccountRef -> row`` map — and a
:class:`~repro.features.batch.BatchFeaturizer` evaluates whole pair batches
with array operations.  The batch path is bit-identical to stacking
``pair_vector`` calls (the parity is covered by tests); pass
``engine="reference"`` to force the per-pair path for debugging or
verification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.attributes import (
    ATTRIBUTE_MATCHERS,
    AttributeImportanceModel,
    username_similarity,
)
from repro.features.batch import BatchFeaturizer, PackedAccountStore
from repro.features.face import FaceMatcher
from repro.features.sensors import LocationMatchingSensor, NearDuplicateMediaSensor
from repro.features.style_sim import style_similarity
from repro.features.temporal import MultiResolutionMatcher, SENSOR_SCALES_DAYS
from repro.features.topics import MultiScaleTopicSimilarity, TOPIC_SCALES_DAYS
from repro.socialnet.platform import SocialWorld
from repro.text.sentiment import SentimentModel
from repro.text.style import StyleExtractor, UserStyle
from repro.text.tokenizer import Tokenizer
from repro.text.variational import VariationalLDA
from repro.text.vocabulary import Vocabulary
from repro.utils.rng import RngFactory

__all__ = ["AccountRef", "PairFeatureResult", "FeaturePipeline"]

#: An account is addressed as ``(platform_name, account_id)`` everywhere above
#: the platform layer.
AccountRef = tuple[str, str]


@dataclass(frozen=True)
class PairFeatureResult:
    """A featurized pair: the raw vector (NaN = missing) plus its names."""

    pair: tuple[AccountRef, AccountRef]
    vector: np.ndarray
    names: tuple[str, ...]

    def missing_mask(self) -> np.ndarray:
        """Boolean mask of missing dimensions."""
        return np.isnan(self.vector)


@dataclass
class _AccountCache:
    """Per-account precomputed behavior state."""

    topic_profile: list  # per-scale bucket aggregates of LDA distributions
    sentiment_profile: list  # per-scale bucket aggregates of sentiment dists
    sensor_buckets: dict  # (kind, scale) -> window -> payloads
    style: UserStyle
    behavior_summary: np.ndarray  # compact vector for structure consistency


class FeaturePipeline:
    """Fits shared feature models and featurizes account pairs.

    Parameters
    ----------
    num_topics:
        LDA topic count.
    topic_kernel:
        Bucket similarity kernel: ``"chi_square"`` (default) or
        ``"histogram_intersection"``.
    sensor_q, sensor_lam:
        lq-pooling order and sigmoid steepness of the multi-resolution
        matcher (Eqn 5).
    topic_scales / sensor_scales:
        Temporal scale ladders (days).
    max_lda_docs:
        Training-corpus cap for LDA fitting (all messages are still
        *transformed*); keeps fitting cost bounded on large worlds.
    seed:
        Root seed for LDA initialization.
    """

    def __init__(
        self,
        *,
        num_topics: int = 12,
        topic_kernel: str = "chi_square",
        sensor_q: float = 3.0,
        sensor_lam: float = 4.0,
        topic_scales: tuple[float, ...] = TOPIC_SCALES_DAYS,
        sensor_scales: tuple[float, ...] = SENSOR_SCALES_DAYS,
        style_ks: tuple[int, ...] = (1, 3, 5),
        max_lda_docs: int = 6000,
        face_matcher: FaceMatcher | None = None,
        seed: int = 0,
    ):
        self.num_topics = num_topics
        self.topic_kernel = topic_kernel
        self.sensor_q = sensor_q
        self.sensor_lam = sensor_lam
        self.topic_scales = topic_scales
        self.sensor_scales = sensor_scales
        self.style_ks = style_ks
        self.max_lda_docs = max_lda_docs
        self.face = face_matcher if face_matcher is not None else FaceMatcher()
        self.seed = seed

        self.tokenizer = Tokenizer()
        self.sentiment = SentimentModel()
        self.style_extractor = StyleExtractor(ks=style_ks, tokenizer=self.tokenizer)
        self.importance = AttributeImportanceModel()

        self._world: SocialWorld | None = None
        self._cache: dict[AccountRef, _AccountCache] = {}
        self._names: tuple[str, ...] | None = None
        self._packed: PackedAccountStore | None = None
        self._batch: BatchFeaturizer | None = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        world: SocialWorld,
        positive_pairs: list[tuple[AccountRef, AccountRef]],
        negative_pairs: list[tuple[AccountRef, AccountRef]],
    ) -> "FeaturePipeline":
        """Fit every shared model and precompute per-account caches.

        ``positive_pairs`` / ``negative_pairs`` are the labeled account pairs
        that train the attribute-importance weights (Eqn 3); everything else
        is unsupervised over the whole world.
        """
        factory = RngFactory(self.seed)
        self._world = world
        time_lo = np.inf
        time_hi = -np.inf
        for platform in world.platforms.values():
            lo, hi = platform.events.time_range()
            if len(platform.events):
                time_lo = min(time_lo, lo)
                time_hi = max(time_hi, hi)
        if not np.isfinite(time_lo):
            time_lo, time_hi = 0.0, 1.0
        time_range = (float(time_lo), float(time_hi) + 1e-9)

        self._topic_sim = MultiScaleTopicSimilarity(
            scales_days=self.topic_scales, kernel=self.topic_kernel,
            time_range=time_range,
        )
        self._sentiment_sim = MultiScaleTopicSimilarity(
            scales_days=self.topic_scales, kernel=self.topic_kernel,
            time_range=time_range,
        )
        self._matcher = MultiResolutionMatcher(
            [LocationMatchingSensor(), NearDuplicateMediaSensor()],
            scales_days=self.sensor_scales,
            q=self.sensor_q,
            lam=self.sensor_lam,
            time_range=time_range,
        )

        # --- corpus: tokenize every post on every platform ----------------
        refs: list[AccountRef] = []
        docs_per_ref: dict[AccountRef, tuple[list[list[str]], np.ndarray]] = {}
        vocabulary = Vocabulary()
        for platform_name in world.platform_names():
            platform = world.platforms[platform_name]
            for account_id in platform.account_ids():
                ref = (platform_name, account_id)
                refs.append(ref)
                texts = platform.events.texts_of(account_id)
                tokens = self.tokenizer.tokenize_many(texts)
                times = platform.events.timestamps_for(account_id, "post")
                docs_per_ref[ref] = (tokens, times)
                vocabulary.add_corpus(tokens)
        self.vocabulary = vocabulary

        # --- LDA over the pooled corpus ------------------------------------
        all_docs: list[np.ndarray] = []
        doc_slices: dict[AccountRef, slice] = {}
        for ref in refs:
            tokens, _ = docs_per_ref[ref]
            start = len(all_docs)
            for doc in tokens:
                all_docs.append(vocabulary.encode(doc, skip_unknown=True))
            doc_slices[ref] = slice(start, len(all_docs))
        self.lda = VariationalLDA(
            num_topics=self.num_topics,
            vocab_size=max(len(vocabulary), 1),
            seed=factory.child("lda"),
        )
        if all_docs:
            if len(all_docs) > self.max_lda_docs:
                pick = factory.child("lda-sample").choice(
                    len(all_docs), size=self.max_lda_docs, replace=False
                )
                train_docs = [all_docs[i] for i in pick]
            else:
                train_docs = all_docs
            self.lda.fit(train_docs)
            all_theta = self.lda.transform(all_docs)
        else:
            all_theta = np.zeros((0, self.num_topics))

        # --- per-account caches --------------------------------------------
        self._cache = {}
        for ref in refs:
            platform = world.platforms[ref[0]]
            tokens, times = docs_per_ref[ref]
            theta = all_theta[doc_slices[ref]]
            senti = self.sentiment.corpus_distributions(tokens)
            topic_profile = self._topic_sim.account_profile(theta, times)
            sentiment_profile = self._sentiment_sim.account_profile(senti, times)
            buckets = self._matcher.account_buckets(platform.events, ref[1])
            # the corpus pass already tokenized this account's posts — reuse
            # the token docs instead of tokenizing a second time
            style = self.style_extractor.extract_from_tokens(tokens, vocabulary)
            summary = self._behavior_summary(theta, senti, platform, ref[1])
            self._cache[ref] = _AccountCache(
                topic_profile=topic_profile,
                sentiment_profile=sentiment_profile,
                sensor_buckets=buckets,
                style=style,
                behavior_summary=summary,
            )

        # --- attribute importance from labeled pairs ------------------------
        def profiles(pairs):
            return [
                (
                    world.platforms[a[0]].accounts[a[1]].profile,
                    world.platforms[b[0]].accounts[b[1]].profile,
                )
                for a, b in pairs
            ]

        self.importance.fit(profiles(positive_pairs), profiles(negative_pairs))

        self._names = self._build_names()
        self._build_batch_engine()
        return self

    def _pack_params(self) -> dict:
        """The fitted parameters every pack/append shares."""
        return dict(
            face=self.face,
            sensors=self._matcher.sensors,
            sensor_scales=self._matcher.scales_days,
            topic_scales=self._topic_sim.scales_days,
            time_range=self._matcher.time_range,
            style_ks=self.style_ks,
            topic_dim=self.num_topics,
            senti_dim=self.sentiment.num_categories,
        )

    def _make_featurizer(self, store: PackedAccountStore) -> BatchFeaturizer:
        return BatchFeaturizer(
            store,
            importance_scale=self.importance.weights_ / self.importance.weights_.max(),
            face=self.face,
            topic_kernel=self.topic_kernel,
            sensors=self._matcher.sensors,
            sensor_q=self.sensor_q,
            sensor_lam=self.sensor_lam,
        )

    def _build_batch_engine(self) -> None:
        """Pack the per-account caches and stand up the batch featurizer."""
        self._packed = PackedAccountStore.pack(
            self._world, list(self._cache), self._cache, **self._pack_params()
        )
        self._batch = self._make_featurizer(self._packed)

    def ensure_packed(self) -> bool:
        """Build the packed store/batch engine if absent; True when built.

        A no-op on pipelines fitted by this code; used when unpickling
        pipeline state written before the batch engine existed.
        """
        if getattr(self, "_batch", None) is not None:
            return False
        if self._world is None:
            raise RuntimeError("pipeline is not fitted; call fit() first")
        self._build_batch_engine()
        return True

    @property
    def packed_store(self) -> PackedAccountStore:
        """The packed per-account store behind the batch engine."""
        if self._packed is None:
            raise RuntimeError("pipeline is not fitted; call fit() first")
        return self._packed

    @property
    def batch_featurizer(self) -> BatchFeaturizer:
        """The array-at-a-time featurization engine."""
        if self._batch is None:
            raise RuntimeError("pipeline is not fitted; call fit() first")
        return self._batch

    # ------------------------------------------------------------------
    # online account ingestion (post-fit, frozen models)
    # ------------------------------------------------------------------
    def _compute_account_cache(self, ref: AccountRef) -> _AccountCache:
        """One account's behavior cache under the *frozen* fit-time models.

        Tokenization, vocabulary encoding, LDA inference, sentiment
        encoding, bucket profiles, style signature and behavior summary all
        run through the models fitted at :meth:`fit` time — nothing refits.
        LDA's variational initialization draws from a generator derived from
        ``(seed, platform, account_id)``, so an ingested account's features
        are reproducible and independent of arrival order or batching.
        """
        world = self._world
        platform = world.platforms[ref[0]]
        t0, t1 = self._matcher.time_range
        for kind in {sensor.kind for sensor in self._matcher.sensors}:
            times = platform.events.timestamps_for(ref[1], kind)
            if times.size and (times.min() < t0 or times.max() > t1):
                raise ValueError(
                    f"{ref} has {kind!r} events outside the fitted "
                    f"observation window [{t0:g}, {t1:g}]; the frozen "
                    "temporal grids cannot absorb them — refit instead"
                )
        texts = platform.events.texts_of(ref[1])
        tokens = self.tokenizer.tokenize_many(texts)
        times = platform.events.timestamps_for(ref[1], "post")
        docs = [self.vocabulary.encode(doc, skip_unknown=True) for doc in tokens]
        rng = RngFactory(self.seed).spawn("ingest").child(f"{ref[0]}/{ref[1]}")
        theta = self.lda.transform(docs, rng=rng)
        senti = self.sentiment.corpus_distributions(tokens)
        style = self.style_extractor.extract_from_tokens(tokens, self.vocabulary)
        return _AccountCache(
            topic_profile=self._topic_sim.account_profile(theta, times),
            sentiment_profile=self._sentiment_sim.account_profile(senti, times),
            sensor_buckets=self._matcher.account_buckets(platform.events, ref[1]),
            style=style,
            behavior_summary=self._behavior_summary(theta, senti, platform, ref[1]),
        )

    def add_accounts(self, refs: list[AccountRef]) -> None:
        """Featurize new world accounts in O(new): caches + delta-pack.

        The accounts must already exist in the world (see
        :meth:`~repro.socialnet.platform.PlatformData.ingest_account`) and
        must not have been featurized before.  After this call the batch
        engine scores pairs involving them bit-identically to a store that
        was re-packed from scratch over all accounts.
        """
        if self._world is None:
            raise RuntimeError("pipeline is not fitted; call fit() first")
        refs = list(refs)
        if len(set(refs)) != len(refs):
            raise ValueError("duplicate refs in add_accounts request")
        for ref in refs:
            platform = self._world.platforms.get(ref[0])
            if platform is None:
                raise KeyError(f"unknown platform: {ref[0]!r}")
            if ref[1] not in platform.accounts:
                raise KeyError(
                    f"{ref} is not in the world; ingest it into its "
                    "platform first"
                )
            if ref in self._cache:
                raise ValueError(f"{ref} is already featurized")
        self.ensure_packed()
        if (
            getattr(self._packed, "style_vocab", None) is None
            or getattr(self._packed, "eq_code_maps", None) is None
        ):
            # store pickled before delta packing existed: upgrade once
            self._build_batch_engine()
        caches = {ref: self._compute_account_cache(ref) for ref in refs}
        # append before adopting the caches: a failed append must not leave
        # refs looking featurizable while absent from the packed store
        self._packed.append(self._world, refs, caches, **self._pack_params())
        self._cache.update(caches)
        self._batch.refresh_derived()

    def remove_accounts(self, refs: list[AccountRef]) -> None:
        """Drop accounts from the caches and the packed store.

        O(all) — the store is re-sliced via ``subset`` — but touches no
        model state; removal is expected to be far rarer than arrival.
        """
        if self._world is None:
            raise RuntimeError("pipeline is not fitted; call fit() first")
        drop = set(refs)
        missing = [ref for ref in drop if ref not in self._cache]
        if missing:
            raise KeyError(f"refs not featurized: {sorted(missing)[:3]}")
        self.ensure_packed()
        keep = [ref for ref in self._packed.refs if ref not in drop]
        self._packed = self._packed.subset(keep)
        for ref in drop:
            del self._cache[ref]
        self._batch = self._make_featurizer(self._packed)

    def repack(self) -> None:
        """Bulk re-pack over every account currently in the world.

        The O(all) baseline the delta path is measured against: caches are
        computed (same frozen models, same per-account seeds) for every
        world account missing one, caches of accounts no longer in the
        world are dropped, and the store and batch engine are rebuilt from
        scratch.
        """
        if self._world is None:
            raise RuntimeError("pipeline is not fitted; call fit() first")
        world_refs = [
            (name, account_id)
            for name in self._world.platform_names()
            for account_id in self._world.platforms[name].account_ids()
        ]
        for ref in world_refs:
            if ref not in self._cache:
                self._cache[ref] = self._compute_account_cache(ref)
        alive = set(world_refs)
        for ref in [r for r in self._cache if r not in alive]:
            del self._cache[ref]
        self._build_batch_engine()

    def _behavior_summary(
        self, theta: np.ndarray, senti: np.ndarray, platform, account_id: str
    ) -> np.ndarray:
        """Compact per-account behavior vector for structure consistency.

        Mean topic distribution, mean sentiment distribution and log-scaled
        modality volumes — the user-level representation behind ``M(a, a)``.
        """
        mean_topic = (
            theta.mean(axis=0) if theta.size else np.full(self.num_topics, np.nan)
        )
        mean_senti = senti.mean(axis=0) if senti.size else np.full(4, np.nan)
        volumes = np.log1p(
            [
                platform.events.count(account_id, "post"),
                platform.events.count(account_id, "checkin"),
                platform.events.count(account_id, "media"),
            ]
        ) / np.log(1000.0)
        return np.concatenate([mean_topic, mean_senti, volumes])

    # ------------------------------------------------------------------
    # featurization
    # ------------------------------------------------------------------
    def _build_names(self) -> tuple[str, ...]:
        names = [f"attr:{a}" for a in ATTRIBUTE_MATCHERS]
        names.append("username_sim")
        names.append("face_score")
        names.extend(f"genre@{s:g}d" for s in self.topic_scales)
        names.extend(f"sentiment@{s:g}d" for s in self.topic_scales)
        names.extend(f"style@k{k}" for k in sorted(self.style_ks))
        names.extend(self._matcher.feature_names())
        return tuple(names)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Names of the vector dimensions, in order."""
        if self._names is None:
            raise RuntimeError("pipeline is not fitted; call fit() first")
        return self._names

    @property
    def dim(self) -> int:
        """Feature-vector dimensionality D."""
        return len(self.feature_names)

    def behavior_summary(self, ref: AccountRef) -> np.ndarray:
        """Cached per-account behavior vector (for structure consistency)."""
        return self._cache[ref].behavior_summary

    def pair_vector(self, ref_a: AccountRef, ref_b: AccountRef) -> np.ndarray:
        """The D-dimensional similarity vector x_ii' (NaN = missing)."""
        if self._world is None:
            raise RuntimeError("pipeline is not fitted; call fit() first")
        world = self._world
        prof_a = world.platforms[ref_a[0]].accounts[ref_a[1]].profile
        prof_b = world.platforms[ref_b[0]].accounts[ref_b[1]].profile
        cache_a = self._cache[ref_a]
        cache_b = self._cache[ref_b]

        parts = [
            self.importance.weighted_matches(prof_a, prof_b),
            np.array([username_similarity(prof_a.username, prof_b.username)]),
            np.array([self.face.score(prof_a.face_embedding, prof_b.face_embedding)]),
            self._topic_sim.similarity_from_profiles(
                cache_a.topic_profile, cache_b.topic_profile
            ),
            self._sentiment_sim.similarity_from_profiles(
                cache_a.sentiment_profile, cache_b.sentiment_profile
            ),
            style_similarity(cache_a.style, cache_b.style),
            self._matcher.match_from_buckets(
                cache_a.sensor_buckets, cache_b.sensor_buckets
            ),
        ]
        return np.concatenate(parts)

    def featurize(self, ref_a: AccountRef, ref_b: AccountRef) -> PairFeatureResult:
        """Vector plus metadata for one pair."""
        return PairFeatureResult(
            pair=(ref_a, ref_b),
            vector=self.pair_vector(ref_a, ref_b),
            names=self.feature_names,
        )

    def matrix(
        self,
        pairs: list[tuple[AccountRef, AccountRef]],
        *,
        engine: str | None = None,
    ) -> np.ndarray:
        """Feature matrix (n_pairs, D) for a pair list; rows keep NaNs.

        ``engine`` selects the featurization path: ``None`` (default) uses
        the batch engine when the pipeline has one (every pipeline fitted by
        this code does), ``"batch"`` requires it, ``"reference"`` forces the
        per-pair path.  Both paths return bit-identical matrices.
        """
        if engine not in (None, "batch", "reference"):
            raise ValueError(
                f"engine must be None, 'batch' or 'reference', got {engine!r}"
            )
        if not pairs:
            return np.zeros((0, self.dim))
        batch = getattr(self, "_batch", None)
        if engine == "batch" and batch is None:
            raise RuntimeError(
                "no batch engine available; fit() the pipeline or call ensure_packed()"
            )
        if batch is not None and engine != "reference":
            return batch.matrix(pairs)
        return np.vstack([self.pair_vector(a, b) for a, b in pairs])
