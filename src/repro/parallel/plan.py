"""Deterministic shard planning for pair-parallel execution.

A :class:`ShardPlan` partitions ``num_items`` work items (candidate pairs,
feature rows) into contiguous, index-ordered shards.  The plan is a pure
function of ``(num_items, workers, shard_size)`` — it never consults the
machine, the scheduler, or a clock — so the same inputs produce the same
shards on every host, and a merge in shard order reassembles worker output
bit-identically to a single-process pass over the same items.

Contiguity matters: each shard is a ``[start, stop)`` slice of the original
item order, so per-item results (scores, feature rows) concatenate back into
exactly the array the serial path would have produced.  Load balancing comes
from oversubscription (several shards per worker, see
:data:`DEFAULT_SHARDS_PER_WORKER`) rather than from dynamic splitting, which
would make shard boundaries timing-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DEFAULT_SHARDS_PER_WORKER", "Shard", "ShardPlan"]

#: Shards per worker in the default plan: enough oversubscription that a slow
#: shard does not stall the pool, few enough that dispatch overhead stays
#: negligible next to shard compute.
DEFAULT_SHARDS_PER_WORKER = 4


@dataclass(frozen=True)
class Shard:
    """One contiguous slice ``[start, stop)`` of the work-item order."""

    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def take(self, items):
        """The shard's slice of an item sequence."""
        return items[self.start : self.stop]


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of ``num_items`` into contiguous shards."""

    num_items: int
    shard_size: int
    shards: tuple[Shard, ...]

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        num_items: int,
        *,
        workers: int = 1,
        shard_size: int | None = None,
    ) -> "ShardPlan":
        """Plan ``num_items`` items for ``workers`` processes.

        ``shard_size`` fixes the shard length explicitly; when omitted it is
        derived so each worker receives about
        :data:`DEFAULT_SHARDS_PER_WORKER` shards.  ``workers=1`` yields a
        single shard (the serial plan).  The result depends only on the
        arguments, never on the host.
        """
        if num_items < 0:
            raise ValueError(f"num_items must be >= 0, got {num_items}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_size is None:
            if workers == 1:
                shard_size = max(num_items, 1)
            else:
                slots = workers * DEFAULT_SHARDS_PER_WORKER
                shard_size = max(1, -(-num_items // slots))  # ceil division
        elif shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        starts = range(0, num_items, shard_size)
        shards = tuple(
            Shard(index=i, start=s, stop=min(s + shard_size, num_items))
            for i, s in enumerate(starts)
        )
        return cls(num_items=num_items, shard_size=shard_size, shards=shards)

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def is_serial(self) -> bool:
        """True when the plan cannot use more than one worker."""
        return self.num_shards <= 1

    def __iter__(self):
        return iter(self.shards)

    def merge(self, parts: list) -> np.ndarray:
        """Concatenate per-shard result arrays back into item order.

        ``parts[i]`` must be shard ``i``'s result with ``shards[i].size``
        leading rows; the merge is a plain concatenation, so it is
        bit-identical to computing the whole array in one pass whenever the
        per-item computation is item-independent.
        """
        if len(parts) != self.num_shards:
            raise ValueError(
                f"expected {self.num_shards} shard results, got {len(parts)}"
            )
        for shard, part in zip(self.shards, parts):
            if np.shape(part)[0] != shard.size:
                raise ValueError(
                    f"shard {shard.index} returned {np.shape(part)[0]} rows, "
                    f"expected {shard.size}"
                )
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts, axis=0)
