"""The sharded executor: a process pool with a deterministic serial fallback.

:class:`ShardedExecutor` owns an optional :class:`concurrent.futures.
ProcessPoolExecutor` whose workers are initialized once (see
:mod:`repro.parallel.worker`) and then fed shard tasks.  Results are
re-ordered by shard index before they are returned, so callers can merge
them with :meth:`~repro.parallel.plan.ShardPlan.merge` regardless of
completion order.

With ``workers=1`` no processes are spawned at all: the initializer and every
task run inline in the calling process, under a private state dict swapped in
around each call (:func:`~repro.parallel.worker.swap_state`), so two live
serial executors never clobber each other.  Serial and pooled execution run
the same task functions over the same shard plan, which is what makes the
``workers=N`` output bit-identical to ``workers=1``.

The pool prefers the ``fork`` start method where the platform offers it
(workers inherit the parent's fitted state copy-on-write — no pickling);
elsewhere it falls back to the platform default (``spawn``), for which the
initializer arguments must pickle — the serving and featurization payloads
all do.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

__all__ = ["ShardedExecutor", "default_mp_context"]


def default_mp_context():
    """The preferred multiprocessing context: ``fork`` when available.

    Forked workers share the parent's fitted state copy-on-write, so even
    multi-megabyte packed stores cost nothing to distribute.  Platforms
    without ``fork`` (Windows, and macOS defaults) use their own default.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ShardedExecutor:
    """Run shard tasks across worker processes, or inline when ``workers=1``.

    Parameters
    ----------
    workers:
        Process count.  ``1`` means no pool: tasks run inline, in order.
    initializer / initargs:
        Per-process setup, run once per worker (or once, lazily, for the
        inline mode) — see the initializers in :mod:`repro.parallel.worker`.
    mp_context:
        Override the multiprocessing context (tests, spawn-only debugging).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        initializer=None,
        initargs: tuple = (),
        mp_context=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._initializer = initializer
        self._initargs = initargs
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._serial_state: dict | None = None

    # ------------------------------------------------------------------
    def run(self, fn, tasks: list[tuple]) -> list:
        """Execute ``fn(*task)`` for every task; results ordered by ``.index``.

        ``fn`` must return an object with an ``index`` attribute (the
        :class:`~repro.parallel.worker.ShardResult` contract); completion
        order is irrelevant — the returned list is sorted by shard index so
        a plan merge reassembles item order deterministically.
        """
        if not tasks:
            return []
        if self.workers == 1:
            results = self._run_inline(fn, tasks)
        else:
            results = list(self._ensure_pool().map(_apply, [(fn, t) for t in tasks]))
        return sorted(results, key=lambda result: result.index)

    def close(self) -> None:
        """Shut the pool down; the executor can be garbage-collected after."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = (
                self._mp_context if self._mp_context is not None else default_mp_context()
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._pool

    def _run_inline(self, fn, tasks: list[tuple]) -> list:
        """Serial fallback: same tasks, same state contract, no processes."""
        from repro.parallel import worker

        if self._serial_state is None:
            outer = worker.swap_state({})
            try:
                if self._initializer is not None:
                    self._initializer(*self._initargs)
            finally:
                self._serial_state = worker.swap_state(outer)
        outer = worker.swap_state(self._serial_state)
        try:
            return [fn(*task) for task in tasks]
        finally:
            self._serial_state = worker.swap_state(outer)


def _apply(packed):
    """Top-level task trampoline (must be picklable for pool submission)."""
    fn, task = packed
    return fn(*task)
