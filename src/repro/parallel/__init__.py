"""Sharded parallel execution: deterministic pair-sharding across processes.

The scale story of this reproduction is embarrassingly parallel pair work —
featurizing and scoring candidate pairs — so this package fans it out:

:mod:`repro.parallel.plan`
    :class:`ShardPlan` partitions work items into contiguous shards as a pure
    function of ``(num_items, workers, shard_size)``; merging shard results
    in index order is bit-identical to the serial pass.

:mod:`repro.parallel.worker`
    Per-process state (a loaded artifact, a shipped linker, or a fitted
    pipeline + filler) set once by a pool initializer, plus the shard task
    functions (``score_shard``, ``featurize_shard``).

:mod:`repro.parallel.engine`
    :class:`ShardedExecutor` — a ``ProcessPoolExecutor`` wrapper with an
    inline serial fallback that runs the identical task functions, so
    ``workers=N`` and ``workers=1`` produce the same bytes.

Consumers: :class:`repro.core.stages.FeaturizeStage` (fit-time featurization
shards), :class:`repro.serving.LinkageService` (serving-time ``score_pairs``
/ ``top_k`` sharding), and the ``--workers`` / ``--shard-size`` CLI flags.
"""

from repro.parallel.engine import ShardedExecutor, default_mp_context
from repro.parallel.plan import DEFAULT_SHARDS_PER_WORKER, Shard, ShardPlan
from repro.parallel.worker import (
    ShardResult,
    featurize_shard,
    init_featurizer,
    init_scorer_from_artifact,
    init_scorer_from_linker,
    init_shard_worker,
    score_shard,
    worker_state,
)

__all__ = [
    "DEFAULT_SHARDS_PER_WORKER",
    "Shard",
    "ShardPlan",
    "ShardResult",
    "ShardedExecutor",
    "default_mp_context",
    "featurize_shard",
    "init_featurizer",
    "init_scorer_from_artifact",
    "init_scorer_from_linker",
    "init_shard_worker",
    "score_shard",
    "worker_state",
]
