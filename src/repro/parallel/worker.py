"""Per-process worker state and shard task functions.

A worker process is initialized exactly once (via its pool's ``initializer``)
with the heavy, read-only state — a fitted linker for serving, or a fitted
pipeline plus missing-value filler for fit-time featurization.  Shard tasks
then carry only the lightweight per-shard payload (the pair slice and a shard
index) and return a :class:`ShardResult` whose arrays the caller merges in
shard order.

Initializers come in two flavors:

:func:`init_scorer_from_artifact`
    The worker loads the persisted artifact (:mod:`repro.persist`) itself —
    the parent ships only a path, and each process pays one load.  Release-
    skew warnings are suppressed in workers; the parent already warned once.

:func:`init_scorer_from_linker` / :func:`init_featurizer`
    The parent ships the fitted objects directly (pickled by the pool
    machinery under the ``spawn`` start method, inherited copy-on-write
    under ``fork``).

State lives in a module-level dict so task functions can reach it without
re-pickling per shard.  :func:`swap_state` exists for the serial fallback in
:mod:`repro.parallel.engine`, which runs initializer and tasks in the parent
process and must not clobber unrelated state between interleaved executors.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ShardResult",
    "featurize_shard",
    "init_featurizer",
    "init_scorer_from_artifact",
    "init_scorer_from_linker",
    "init_shard_worker",
    "score_chunked",
    "score_grouped",
    "score_shard",
    "swap_state",
    "worker_state",
]

#: Per-process worker state: ``linker`` (serving) or ``pipeline`` + ``filler``
#: (+ optional ``engine``) for fit-time featurization.
_STATE: dict = {}


def swap_state(new: dict) -> dict:
    """Replace the module state dict, returning the previous one.

    Used by the serial fallback to sandbox its state between calls; worker
    processes never need it (each owns the module outright).
    """
    global _STATE
    old = _STATE
    _STATE = new
    return old


def worker_id() -> str:
    """A stable per-process tag for stats attribution."""
    return f"pid:{os.getpid()}"


@dataclass(frozen=True)
class ShardResult:
    """One shard's output: the values plus attribution for stats rollup."""

    index: int
    values: np.ndarray
    num_items: int
    worker: str
    seconds: float


# ----------------------------------------------------------------------
# initializers
# ----------------------------------------------------------------------
def init_scorer_from_artifact(path: str) -> None:
    """Load a persisted linker into this process (serving worker)."""
    from repro.persist import load_linker

    with warnings.catch_warnings():
        # the parent process already surfaced any release-skew warning once;
        # N workers repeating it is noise
        warnings.simplefilter("ignore", UserWarning)
        _STATE["linker"] = load_linker(path)


def init_scorer_from_linker(linker) -> None:
    """Adopt an already-fitted linker shipped by the parent (serving worker)."""
    _STATE["linker"] = linker


def init_featurizer(pipeline, filler, engine: str | None = None) -> None:
    """Adopt a fitted pipeline + filler for fit-time featurization shards."""
    _STATE["pipeline"] = pipeline
    _STATE["filler"] = filler
    _STATE["engine"] = engine


def init_shard_worker(path: str, batch_size: int = 256) -> None:
    """Load one shard artifact and stand up its serving state.

    The distributed serving tier (:mod:`repro.shard`) initializes each
    per-shard worker process with this function: it reuses
    :func:`init_scorer_from_artifact` to load the shard's packed-subset
    linker, then wraps it in a full :class:`~repro.serving.LinkageService`
    (caches, registry, candidate maintenance) and records the shard's
    manifest metadata — in particular the *served* account set, the refs
    whose Eqn 18 fill closure is fully resident on this shard and whose
    pair scores are therefore bit-exact.
    """
    from repro.persist import artifact_summary
    from repro.serving.service import LinkageService

    init_scorer_from_artifact(path)
    _STATE["shard_service"] = LinkageService(
        _STATE["linker"], batch_size=batch_size
    )
    meta = artifact_summary(path).get("shard") or {}
    _STATE["shard_meta"] = meta
    _STATE["shard_served"] = {
        (ref[0], ref[1]) for ref in meta.get("served", [])
    }


def worker_state() -> dict:
    """The live per-process state dict (shard task functions mutate it)."""
    return _STATE


# ----------------------------------------------------------------------
# shard tasks
# ----------------------------------------------------------------------
def score_chunked(linker, pairs: list, batch_size: int) -> np.ndarray:
    """Score ``pairs`` in fixed ``batch_size`` chunks.

    This is the one chunking loop behind both the inline serving path
    (:meth:`repro.serving.LinkageService._score`) and the sharded worker
    task: the workers=N bit-identity contract requires both paths to
    present identical chunk compositions to the kernel, so they must share
    this implementation rather than mirror it.
    """
    out = np.empty(len(pairs))
    for lo in range(0, len(pairs), batch_size):
        chunk = pairs[lo : lo + batch_size]
        out[lo : lo + len(chunk)] = linker.score_pairs(chunk)
    return out


def score_grouped(
    linker, groups: list[list], batch_size: int
) -> list[np.ndarray]:
    """Score several independent pair lists in one featurization sweep.

    The coalescing primitive behind the gateway's micro-batcher
    (:mod:`repro.gateway.batcher`), built on the same two stages
    ``HydraLinker.score_pairs`` itself composes
    (:meth:`~repro.core.hydra.HydraLinker.featurize_pairs` +
    :meth:`~repro.core.hydra.HydraLinker.score_features`), so the paths
    cannot drift apart: the groups' pairs are concatenated and featurized +
    missing-filled array-at-a-time in ``batch_size`` chunks — featurization
    is row-independent, so every feature row is bit-identical to
    featurizing its group alone.  The kernel decision then runs per group
    over that group's rows, chunked exactly as a standalone
    ``score_chunked(linker, group, batch_size)`` call would chunk them, so
    each group's scores are bit-identical to scoring the group by itself
    while the featurization fixed costs amortize across all groups.
    """
    all_pairs = [pair for group in groups for pair in group]
    if not all_pairs:
        return [np.zeros(0) for _ in groups]
    x = np.vstack([
        linker.featurize_pairs(all_pairs[lo : lo + batch_size])
        for lo in range(0, len(all_pairs), batch_size)
    ])
    out: list[np.ndarray] = []
    offset = 0
    for group in groups:
        scores = np.empty(len(group))
        for lo in range(0, len(group), batch_size):
            hi = min(lo + batch_size, len(group))
            scores[lo:hi] = linker.score_features(x[offset + lo : offset + hi])
        out.append(scores)
        offset += len(group)
    return out


def score_shard(
    index: int,
    pairs: list,
    batch_size: int,
    expected_epoch: int | None = None,
) -> ShardResult:
    """Score one shard of pairs through the process-local linker.

    Featurization runs in ``batch_size`` chunks exactly like the serial
    serving path (same :func:`score_chunked` loop), so each pair's score is
    computed by the same code on the same operands — the merged result is
    bit-identical to a serial pass.

    ``expected_epoch`` is the caller's registry epoch (see online ingestion
    in :mod:`repro.serving.service`): a worker whose linker snapshot
    predates a mutation must fail loudly rather than silently score against
    the stale account registry.
    """
    linker = _STATE["linker"]
    if expected_epoch is not None:
        epoch = getattr(linker, "ingest_epoch_", 0)
        if epoch != expected_epoch:
            raise RuntimeError(
                f"worker holds registry epoch {epoch}, caller expects "
                f"{expected_epoch}; the scoring pool must be rebuilt after "
                "an ingestion mutation"
            )
    start = time.perf_counter()
    out = score_chunked(linker, pairs, batch_size)
    return ShardResult(
        index=index,
        values=out,
        num_items=len(pairs),
        worker=worker_id(),
        seconds=time.perf_counter() - start,
    )


def featurize_shard(index: int, pairs: list) -> ShardResult:
    """Featurize + missing-fill one shard of pairs (fit-time worker).

    Returns the filled feature block for the shard's rows; both the raw
    featurization and the Eqn 18 fill are row-independent, so the merged
    matrix matches the serial featurize stage bit for bit.
    """
    pipeline = _STATE["pipeline"]
    filler = _STATE["filler"]
    engine = _STATE.get("engine")
    start = time.perf_counter()
    x_raw = pipeline.matrix(pairs, engine=engine)
    filled = filler.fill_matrix(pairs, x_raw)
    return ShardResult(
        index=index,
        values=filled,
        num_items=len(pairs),
        worker=worker_id(),
        seconds=time.perf_counter() - start,
    )
