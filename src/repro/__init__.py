"""repro — a full reproduction of HYDRA (SIGMOD 2014).

HYDRA: Large-scale Social Identity Linkage via Heterogeneous Behavior
Modeling (Liu, Wang, Zhu, Zhang, Krishnan).

Quickstart::

    from repro import HydraLinker, WorldConfig, generate_world

    world = generate_world(WorldConfig(num_persons=60, seed=0))
    true_pairs = world.true_pairs("facebook", "twitter")
    labeled = [(("facebook", a), ("twitter", b)) for a, b in true_pairs[:10]]
    negatives = [(labeled[i][0], labeled[(i + 1) % 10][1]) for i in range(10)]

    linker = HydraLinker().fit(world, labeled, negatives)
    result = linker.linkage("facebook", "twitter")

Subpackages
-----------
``repro.text``       — tokenizer, vocabulary, LDA (Gibbs + variational),
                       sentiment, style extraction.
``repro.socialnet``  — platforms/accounts/profiles, interaction graph,
                       communities, columnar event store.
``repro.datagen``    — the synthetic multi-platform world generator.
``repro.features``   — the Section 5 heterogeneous behavior model.
``repro.core``       — candidates, structure consistency, the multi-objective
                       learner, the staged HYDRA estimator, distributed ADMM.
``repro.baselines``  — MOBIUS, Alias-Disamb, SMaSh, SVM-B.
``repro.eval``       — metrics, harness, per-figure experiment configs.
``repro.persist``    — versioned on-disk artifacts for fitted linkers.
``repro.serving``    — the batch-scoring query service over artifacts.
``repro.gateway``    — the asyncio HTTP front-end: request coalescing,
                       admission control, client, and load harness.
"""

from repro.core.hydra import HydraLinker, LinkageResult
from repro.datagen.generator import (
    PlatformSpec,
    WorldConfig,
    chinese_platform_specs,
    english_platform_specs,
    generate_world,
)
from repro.eval.harness import ExperimentHarness
from repro.eval.metrics import precision_recall_f1
from repro.features.pipeline import FeaturePipeline
from repro.socialnet.platform import SocialWorld

__version__ = "1.1.0"

from repro.persist import load_linker, save_linker  # noqa: E402  (needs __version__)
from repro.serving import LinkageService  # noqa: E402

__all__ = [
    "HydraLinker",
    "LinkageService",
    "load_linker",
    "save_linker",
    "LinkageResult",
    "PlatformSpec",
    "WorldConfig",
    "chinese_platform_specs",
    "english_platform_specs",
    "generate_world",
    "ExperimentHarness",
    "precision_recall_f1",
    "FeaturePipeline",
    "SocialWorld",
    "__version__",
]
