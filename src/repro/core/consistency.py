"""Structure consistency graph construction (Section 6.2, Eqns 8-9, 14).

For candidate pairs ``a = (i, i')`` and ``b = (j, j')`` between platforms S
and S', the consistency matrix M stores:

* ``M(a, a) = exp(-||x_i - x_i'||^2 / sigma_1^2)`` — individual-level
  cross-platform behavior affinity on per-user behavior representations;
* ``M(a, b)`` (Eqn 9) — the pairwise behavior factor times the *structural
  agreement* ``1 - (d_ij - d_i'j')^2 / sigma_2^2``, where ``d_ij = (k_ij+1)^2``
  is the squared intermediate-hop closeness on the platform's social graph.
  Entries where either distance is unavailable (too far / disconnected) or
  where the structural disagreement is "too large" are zero, keeping M sparse
  (the paper reports < 1 % non-zeros).

``D`` is the diagonal degree matrix ``D(a,a) = sum_b M(a,b)``, and the
graph-Laplacian-style matrix ``Theta = D - M`` is PSD, giving the convex
structure objective ``F_S(w) = w^T X^T (D - M) X w`` (Eqn 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.socialnet.platform import SocialWorld

__all__ = ["ConsistencyBlock", "StructureConsistencyBuilder"]

AccountRef = tuple[str, str]


@dataclass
class ConsistencyBlock:
    """One platform-pair block of the cross-platform consistency structure.

    ``indices`` maps the block's rows into the global candidate-pair array
    that the multi-objective learner trains on; ``m`` and ``d`` are the block
    consistency and degree matrices; ``weight`` is this objective's
    preference weight in the utility function.
    """

    platform_a: str
    platform_b: str
    indices: np.ndarray
    m: np.ndarray
    d: np.ndarray
    weight: float = 1.0

    @property
    def laplacian(self) -> np.ndarray:
        """``Theta = D - M`` (positive semidefinite)."""
        return self.d - self.m

    def nonzero_fraction(self) -> float:
        """Sparsity statistic reported by the paper (Section 7.5)."""
        if self.m.size == 0:
            return 0.0
        return float(np.count_nonzero(self.m)) / self.m.size


class StructureConsistencyBuilder:
    """Builds :class:`ConsistencyBlock` objects from behavior + graphs.

    Parameters
    ----------
    sigma1:
        Behavior-similarity bandwidth.  ``None`` uses a scaled median
        heuristic over the observed cross-platform behavior distances:
        ``sigma1 = sigma1_scale * sqrt(median(dist^2))``.  The scale < 1
        sharpens the affinity so that only genuinely consistent pairs carry
        weight — with the plain median, true and false candidates receive
        comparable affinity and the Laplacian over-smooths (the failure mode
        Section 6.4 warns about).
    sigma1_scale:
        Multiplier for the median heuristic (ignored when ``sigma1`` given).
    sigma2:
        Structure-sensitivity bandwidth on the ``d_ij`` closeness values
        ("controls the structure sensitivity of user social relations").
    max_hops:
        Graph search horizon; users farther apart are structurally unrelated
        and contribute nothing.  The default of 2 keeps M at the ~1 %
        non-zero density the paper reports.
    """

    def __init__(
        self,
        *,
        sigma1: float | None = None,
        sigma1_scale: float = 0.4,
        sigma2: float = 3.0,
        max_hops: int = 2,
    ):
        if sigma1 is not None and sigma1 <= 0:
            raise ValueError(f"sigma1 must be > 0, got {sigma1}")
        if sigma1_scale <= 0:
            raise ValueError(f"sigma1_scale must be > 0, got {sigma1_scale}")
        if sigma2 <= 0:
            raise ValueError(f"sigma2 must be > 0, got {sigma2}")
        if max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {max_hops}")
        self.sigma1 = sigma1
        self.sigma1_scale = sigma1_scale
        self.sigma2 = sigma2
        self.max_hops = max_hops

    # ------------------------------------------------------------------
    def build(
        self,
        world: SocialWorld,
        pairs: list[tuple[AccountRef, AccountRef]],
        behavior: dict[AccountRef, np.ndarray],
        *,
        indices: np.ndarray | None = None,
        weight: float = 1.0,
    ) -> ConsistencyBlock:
        """Construct the block for ``pairs`` (all from one platform pair).

        ``behavior`` maps account refs to per-user behavior representations
        (e.g. :meth:`repro.features.pipeline.FeaturePipeline.behavior_summary`);
        NaNs in the representations are treated as zero signal.
        """
        if not pairs:
            raise ValueError("pairs must not be empty")
        platform_a = pairs[0][0][0]
        platform_b = pairs[0][1][0]
        for ref_a, ref_b in pairs:
            if ref_a[0] != platform_a or ref_b[0] != platform_b:
                raise ValueError("all pairs in a block must share one platform pair")
        n = len(pairs)
        graph_a = world.platforms[platform_a].graph
        graph_b = world.platforms[platform_b].graph

        # cross-platform behavior distances per candidate
        dist_sq = np.empty(n)
        for row, (ref_a, ref_b) in enumerate(pairs):
            va = np.nan_to_num(behavior[ref_a], nan=0.0)
            vb = np.nan_to_num(behavior[ref_b], nan=0.0)
            dist_sq[row] = float(((va - vb) ** 2).sum())
        sigma1 = self.sigma1
        if sigma1 is None:
            positive = dist_sq[dist_sq > 0]
            sigma1 = (
                self.sigma1_scale * float(np.sqrt(np.median(positive)))
                if positive.size
                else 1.0
            )
        sigma1_sq = sigma1 * sigma1

        m = np.zeros((n, n))
        affinity = np.exp(-dist_sq / sigma1_sq)
        np.fill_diagonal(m, affinity)

        # hop distances: only accounts that appear in candidates matter
        accounts_a = sorted({ref_a[1] for ref_a, _ in pairs})
        accounts_b = sorted({ref_b[1] for _, ref_b in pairs})
        hops_a = {
            acc: graph_a.hop_counts_from(acc, max_hops=self.max_hops)
            for acc in accounts_a
        }
        hops_b = {
            acc: graph_b.hop_counts_from(acc, max_hops=self.max_hops)
            for acc in accounts_b
        }
        rows_by_a: dict[str, list[int]] = {}
        for row, (ref_a, _) in enumerate(pairs):
            rows_by_a.setdefault(ref_a[1], []).append(row)

        sigma2_sq = self.sigma2 * self.sigma2
        for row_a, (ref_i, ref_ip) in enumerate(pairs):
            reach_i = hops_a[ref_i[1]]
            reach_ip = hops_b[ref_ip[1]]
            for acc_j, rows in rows_by_a.items():
                if acc_j == ref_i[1] or acc_j not in reach_i:
                    continue
                k_ij = reach_i[acc_j] - 1  # intermediate users
                d_ij = float((k_ij + 1) ** 2)
                for row_b in rows:
                    if row_b <= row_a:
                        continue
                    ref_jp = pairs[row_b][1]
                    if ref_jp[1] == ref_ip[1] or ref_jp[1] not in reach_ip:
                        continue
                    k_ipjp = reach_ip[ref_jp[1]] - 1
                    d_ipjp = float((k_ipjp + 1) ** 2)
                    structural = 1.0 - (d_ij - d_ipjp) ** 2 / sigma2_sq
                    if structural <= 0.0:
                        continue  # "M(a,b) = 0 if the inconsistency is too large"
                    behavioral = np.exp(
                        -(dist_sq[row_a] + dist_sq[row_b]) / (2.0 * sigma1_sq)
                    )
                    value = behavioral * structural
                    m[row_a, row_b] = value
                    m[row_b, row_a] = value

        d = np.diag(m.sum(axis=1))
        block_indices = (
            np.asarray(indices, dtype=np.int64)
            if indices is not None
            else np.arange(n, dtype=np.int64)
        )
        if block_indices.shape != (n,):
            raise ValueError(
                f"indices must have shape ({n},), got {block_indices.shape}"
            )
        return ConsistencyBlock(
            platform_a=platform_a,
            platform_b=platform_b,
            indices=block_indices,
            m=m,
            d=d,
            weight=weight,
        )
