"""Unsupervised spectral linkage from the Section 6.2 relaxation.

Before introducing supervision, the paper reduces structure-consistent
linkage to "find[ing] a cluster C* of candidate user pairs (i, i') that
maximizes the structure consistency F_S(y) = y^T M y", whose relaxed solution
"is the principal eigenvector of M" (Raleigh's ratio theorem).  That
observation is a complete *unsupervised* linkage method in its own right —
the spectral matching of Leordeanu & Hebert applied to identity linkage — and
serves two roles here:

* a label-free fallback linker (no ground truth at all, only behavior and
  structure), useful as a lower bound and for cold-start platforms;
* a diagnostic: the eigenvector's mass concentration reveals whether the
  consistency graph actually contains the main agreement cluster of Fig 7.

The greedy discretization follows spectral matching: accept candidates in
descending eigenvector score, skipping any that conflict with the injective
mapping constraint.
"""

from __future__ import annotations

import numpy as np

from repro.core.candidates import CandidateGenerator, CandidateSet
from repro.core.consistency import StructureConsistencyBuilder
from repro.core.eigen import principal_eigenvector
from repro.core.hydra import LinkageResult
from repro.features.pipeline import AccountRef, FeaturePipeline
from repro.socialnet.platform import SocialWorld

__all__ = ["SpectralLinker"]

Pair = tuple[AccountRef, AccountRef]


class SpectralLinker:
    """Label-free linkage by principal-eigenvector spectral matching.

    Parameters
    ----------
    keep_fraction:
        Fraction of candidates (by eigenvector score) eligible for linking;
        the eigenvector separates the agreement cluster from the rest, and
        this is the cut point.
    candidate_generator, consistency_builder, pipeline:
        Injectable components; defaults mirror :class:`HydraLinker`.
    """

    name = "Spectral"

    def __init__(
        self,
        *,
        keep_fraction: float = 0.5,
        candidate_generator: CandidateGenerator | None = None,
        consistency_builder: StructureConsistencyBuilder | None = None,
        pipeline: FeaturePipeline | None = None,
        num_topics: int = 10,
        max_lda_docs: int = 2500,
        seed: int = 0,
    ):
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
        self.keep_fraction = keep_fraction
        self.candidate_generator = (
            candidate_generator if candidate_generator is not None
            else CandidateGenerator()
        )
        self.consistency_builder = (
            consistency_builder if consistency_builder is not None
            else StructureConsistencyBuilder()
        )
        self.pipeline = (
            pipeline if pipeline is not None
            else FeaturePipeline(num_topics=num_topics, max_lda_docs=max_lda_docs,
                                 seed=seed)
        )
        self._world: SocialWorld | None = None
        self.candidates_: dict[tuple[str, str], CandidateSet] = {}
        self.scores_: dict[tuple[str, str], np.ndarray] = {}
        self.eigenvalues_: dict[tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    def fit(
        self,
        world: SocialWorld,
        labeled_positive: list[Pair] | None = None,
        labeled_negative: list[Pair] | None = None,
        platform_pairs: list[tuple[str, str]] | None = None,
        *,
        candidates: dict[tuple[str, str], CandidateSet] | None = None,
    ) -> "SpectralLinker":
        """Build M per platform pair and extract its principal eigenvector.

        Labeled pairs are accepted for interface compatibility but ignored —
        the method is fully unsupervised (the pipeline's attribute-importance
        model falls back to uniform weights when no labels are given).
        """
        self._world = world
        if platform_pairs is None:
            names = world.platform_names()
            platform_pairs = [
                (names[i], names[j])
                for i in range(len(names))
                for j in range(i + 1, len(names))
            ]
        if candidates is not None:
            self.candidates_ = dict(candidates)
        else:
            self.candidates_ = {
                (pa, pb): self.candidate_generator.generate(world, pa, pb)
                for pa, pb in platform_pairs
            }
        # fit the pipeline with whatever labels exist (possibly none): the
        # behavior summaries feeding M need no supervision at all
        self.pipeline.fit(
            world, list(labeled_positive or []), list(labeled_negative or [])
        )
        self.scores_ = {}
        self.eigenvalues_ = {}
        for key, cand in self.candidates_.items():
            if len(cand.pairs) == 0:
                self.scores_[key] = np.zeros(0)
                self.eigenvalues_[key] = 0.0
                continue
            behavior = {
                ref: self.pipeline.behavior_summary(ref)
                for pair in cand.pairs
                for ref in pair
            }
            block = self.consistency_builder.build(world, cand.pairs, behavior)
            vector, value = principal_eigenvector(block.m)
            self.scores_[key] = vector
            self.eigenvalues_[key] = value
        return self

    # ------------------------------------------------------------------
    def score_pairs(self, pairs: list[Pair]) -> np.ndarray:
        """Eigenvector scores for candidate pairs (0 for non-candidates)."""
        out = np.zeros(len(pairs))
        index_by_key = {
            key: cand.pair_index() for key, cand in self.candidates_.items()
        }
        for i, pair in enumerate(pairs):
            key = (pair[0][0], pair[1][0])
            table = index_by_key.get(key)
            if table is not None and pair in table:
                out[i] = float(self.scores_[key][table[pair]])
        return out

    def linkage(self, platform_a: str, platform_b: str) -> LinkageResult:
        """Greedy spectral-matching discretization of the eigenvector."""
        if self._world is None:
            raise RuntimeError("linker is not fitted; call fit() first")
        key = (platform_a, platform_b)
        flipped = False
        if key not in self.candidates_:
            key = (platform_b, platform_a)
            flipped = True
            if key not in self.candidates_:
                raise KeyError(
                    f"platform pair ({platform_a}, {platform_b}) was not fitted"
                )
        cand = self.candidates_[key]
        scores = self.scores_[key]
        oriented = [(b, a) for a, b in cand.pairs] if flipped else list(cand.pairs)
        result = LinkageResult(
            platform_a=platform_a,
            platform_b=platform_b,
            pairs=oriented,
            scores=scores,
        )
        if len(oriented) == 0:
            return result
        n_keep = max(1, int(round(self.keep_fraction * len(oriented))))
        order = np.argsort(-scores)[:n_keep]
        used_a: set[str] = set()
        used_b: set[str] = set()
        linked: list[Pair] = []
        linked_scores: list[float] = []
        for idx in order:
            if scores[idx] <= 0.0:
                break
            ref_a, ref_b = oriented[int(idx)]
            if ref_a[1] in used_a or ref_b[1] in used_b:
                continue
            used_a.add(ref_a[1])
            used_b.add(ref_b[1])
            linked.append((ref_a, ref_b))
            linked_scores.append(float(scores[idx]))
        result.linked = linked
        result.linked_scores = np.asarray(linked_scores)
        return result
