"""Staged fit pipeline: Algorithm 1 as composable, profiled stage objects.

:class:`~repro.core.hydra.HydraLinker` used to run candidate selection,
labeling, featurization, consistency-graph construction and optimization as
one inline monolith.  This module decomposes that flow into five
:class:`LinkageStage` objects that communicate through a typed
:class:`LinkageContext`:

========================  ====================================================
stage                     responsibility
========================  ====================================================
:class:`CandidateStage`   rule-based blocking per platform pair (Alg 1 step 1)
:class:`LabelStage`       merge ground-truth + pre-matched labels, fix the
                          global row layout (labeled first, Eqn 13)
:class:`FeaturizeStage`   fit the feature pipeline, emit the NaN-resolved
                          matrix (HYDRA-M / HYDRA-Z) and behavior summaries
:class:`ConsistencyStage` per-platform-pair structure graphs (Alg 1 step 2)
:class:`OptimizeStage`    multi-objective dual optimization (Alg 1 steps 3-6)
========================  ====================================================

Each stage reads the context fields produced by its predecessors and writes
its own; :func:`run_stages` executes a stage list in order and records
per-stage wall time in ``context.timings``, so stages can be swapped,
profiled, and rerun independently (e.g. re-optimize with new hyperparameters
without re-featurizing).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.candidates import CandidateGenerator, CandidateSet
from repro.core.consistency import ConsistencyBlock, StructureConsistencyBuilder
from repro.core.moo import MooConfig, MultiObjectiveModel
from repro.features.missing import CoreStructureFiller, MissingFiller, ZeroFiller
from repro.features.pipeline import AccountRef, FeaturePipeline
from repro.socialnet.platform import SocialWorld

__all__ = [
    "LinkageContext",
    "LinkageStage",
    "CandidateStage",
    "LabelStage",
    "FeaturizeStage",
    "ConsistencyStage",
    "OptimizeStage",
    "run_stages",
]

Pair = tuple[AccountRef, AccountRef]


@dataclass
class LinkageContext:
    """Typed state flowing through the staged fit pipeline.

    The first block is the immutable input; every later field is written by
    exactly one stage (named in the comment) and read by its successors.
    """

    world: SocialWorld
    labeled_positive: list[Pair]
    labeled_negative: list[Pair]
    platform_pairs: list[tuple[str, str]]
    injected_candidates: dict[tuple[str, str], CandidateSet] | None = None

    # CandidateStage
    candidates: dict[tuple[str, str], CandidateSet] = field(default_factory=dict)
    # LabelStage
    labels: dict[Pair, float] = field(default_factory=dict)
    global_pairs: list[Pair] = field(default_factory=list)
    num_labeled: int = 0
    y: np.ndarray = field(default_factory=lambda: np.zeros(0))
    # FeaturizeStage
    x_all: np.ndarray | None = None
    filler: MissingFiller | None = None
    behavior: dict[AccountRef, np.ndarray] = field(default_factory=dict)
    # ConsistencyStage
    blocks: list[ConsistencyBlock] = field(default_factory=list)
    # OptimizeStage
    model: MultiObjectiveModel | None = None
    # run_stages
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def labeled_pairs(self) -> list[Pair]:
        """The labeled prefix of the global row layout."""
        return self.global_pairs[: self.num_labeled]


class LinkageStage:
    """One step of the fit pipeline; mutates the context in place."""

    name: str = "stage"

    def run(self, context: LinkageContext) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def __repr__(self) -> str:  # stages are config-bearing; show the name
        return f"<{type(self).__name__} {self.name!r}>"


def run_stages(stages: list[LinkageStage], context: LinkageContext) -> LinkageContext:
    """Execute ``stages`` in order, recording wall time per stage name."""
    for stage in stages:
        start = time.perf_counter()
        stage.run(context)
        context.timings[stage.name] = time.perf_counter() - start
    return context


class CandidateStage(LinkageStage):
    """Algorithm 1 step 1: rule-based candidate selection per platform pair.

    Pre-generated candidate sets (``context.injected_candidates``) short-cut
    generation so several methods can be compared on identical blocking.
    """

    name = "candidates"

    def __init__(self, generator: CandidateGenerator):
        self.generator = generator

    def run(self, context: LinkageContext) -> None:
        if context.injected_candidates is not None:
            context.candidates = dict(context.injected_candidates)
        else:
            context.candidates = {
                (pa, pb): self.generator.generate(context.world, pa, pb)
                for pa, pb in context.platform_pairs
            }


class LabelStage(LinkageStage):
    """Merge labels and fix the global row layout: labeled first (Eqn 13)."""

    name = "labels"

    def __init__(self, *, use_prematched: bool = True):
        self.use_prematched = use_prematched

    def run(self, context: LinkageContext) -> None:
        labels: dict[Pair, float] = {}
        for pair in context.labeled_positive:
            labels[pair] = 1.0
        for pair in context.labeled_negative:
            if pair in labels:
                raise ValueError(f"pair labeled both positive and negative: {pair}")
            labels[pair] = -1.0
        if self.use_prematched:
            for cand in context.candidates.values():
                for idx in cand.prematched:
                    labels.setdefault(cand.pairs[idx], 1.0)

        labeled_pairs = sorted(labels, key=lambda p: (p[0], p[1]))
        seen = set(labeled_pairs)
        unlabeled_pairs: list[Pair] = []
        for key in sorted(context.candidates):
            for pair in context.candidates[key].pairs:
                if pair not in seen:
                    seen.add(pair)
                    unlabeled_pairs.append(pair)

        context.labels = labels
        context.global_pairs = labeled_pairs + unlabeled_pairs
        context.num_labeled = len(labeled_pairs)
        context.y = np.array([labels[p] for p in labeled_pairs])
        if context.num_labeled == 0:
            raise ValueError("no labeled pairs available (labels and pre-matches empty)")
        if np.unique(context.y).size < 2:
            raise ValueError("labeled pairs must include both classes")


class FeaturizeStage(LinkageStage):
    """Fit the feature pipeline, resolve missing values, cache behavior.

    ``missing_strategy`` selects HYDRA-M (``"core"``, Eqn 18 fill from the
    core social structure) or HYDRA-Z (``"zero"``).  ``engine`` picks the
    featurization path (``None`` = the pipeline's default, i.e. the batch
    engine; ``"reference"`` forces the per-pair path — useful for profiling
    or verifying batch/reference parity on a full fit).

    ``workers`` > 1 shards the featurize-and-fill pass over the global pair
    layout across a process pool (:mod:`repro.parallel`): model fitting
    stays in the parent, each worker receives the fitted pipeline and the
    filler once via its initializer, and the per-shard feature blocks merge
    in shard order — bit-identical to the serial pass, because every row's
    featurization and Eqn 18 fill depend only on that row's pair.
    ``shard_size`` overrides the deterministic shard planner's default.
    """

    name = "featurize"

    def __init__(
        self,
        pipeline: FeaturePipeline,
        *,
        missing_strategy: str = "core",
        engine: str | None = None,
        workers: int = 1,
        shard_size: int | None = None,
    ):
        if missing_strategy not in ("core", "zero"):
            raise ValueError(
                f"missing_strategy must be 'core' or 'zero', got {missing_strategy!r}"
            )
        if engine not in (None, "batch", "reference"):
            raise ValueError(
                f"engine must be None, 'batch' or 'reference', got {engine!r}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.pipeline = pipeline
        self.missing_strategy = missing_strategy
        self.engine = engine
        self.workers = workers
        self.shard_size = shard_size

    def plan(self, num_pairs: int) -> "ShardPlan":
        """The deterministic shard plan this stage would use for ``num_pairs``."""
        from repro.parallel import ShardPlan

        return ShardPlan.build(
            num_pairs, workers=self.workers, shard_size=self.shard_size
        )

    def run(self, context: LinkageContext) -> None:
        labeled = context.labeled_pairs
        self.pipeline.fit(
            context.world,
            [p for p in labeled if context.labels[p] > 0],
            [p for p in labeled if context.labels[p] < 0],
        )
        if self.missing_strategy == "core":
            # the engine choice must cover Eqn 18 friend-pair vectors too,
            # or a forced reference fit would still featurize through batch
            context.filler = CoreStructureFiller(
                context.world, self.pipeline, engine=self.engine
            )
        else:
            context.filler = ZeroFiller()
        context.x_all = self._featurize_and_fill(context)
        context.behavior = {
            ref: self.pipeline.behavior_summary(ref)
            for pair in context.global_pairs
            for ref in pair
        }

    def _featurize_and_fill(self, context: LinkageContext) -> np.ndarray:
        pairs = context.global_pairs
        plan = self.plan(len(pairs))
        if self.workers == 1 or plan.is_serial:
            x_raw = self.pipeline.matrix(pairs, engine=self.engine)
            return context.filler.fill_matrix(pairs, x_raw)
        from repro.parallel import ShardedExecutor, featurize_shard, init_featurizer

        with ShardedExecutor(
            workers=min(self.workers, plan.num_shards),
            initializer=init_featurizer,
            initargs=(self.pipeline, context.filler, self.engine),
        ) as executor:
            results = executor.run(
                featurize_shard,
                [(shard.index, shard.take(pairs)) for shard in plan],
            )
        return plan.merge([result.values for result in results])


class ConsistencyStage(LinkageStage):
    """Algorithm 1 step 2: structure consistency graphs per platform pair."""

    name = "consistency"

    def __init__(self, builder: StructureConsistencyBuilder):
        self.builder = builder

    def run(self, context: LinkageContext) -> None:
        row_of = {pair: i for i, pair in enumerate(context.global_pairs)}
        context.blocks = []
        for pa, pb in context.platform_pairs:
            block_pairs = [
                pair for pair in context.global_pairs
                if pair[0][0] == pa and pair[1][0] == pb
            ]
            if len(block_pairs) < 2:
                continue
            indices = np.array([row_of[p] for p in block_pairs], dtype=np.int64)
            context.blocks.append(
                self.builder.build(
                    context.world, block_pairs, context.behavior, indices=indices
                )
            )


class OptimizeStage(LinkageStage):
    """Algorithm 1 steps 3-6: multi-objective dual optimization."""

    name = "optimize"

    def __init__(self, config: MooConfig):
        self.config = config

    def run(self, context: LinkageContext) -> None:
        if context.x_all is None:
            raise RuntimeError("FeaturizeStage must run before OptimizeStage")
        context.model = MultiObjectiveModel(self.config)
        context.model.fit(
            context.x_all[: context.num_labeled],
            context.y,
            context.x_all[context.num_labeled:],
            context.blocks,
        )
