"""HYDRA core: candidate generation, structure consistency, and the
multi-objective linkage learner (Sections 3, 6 of the paper).

Public entry point: :class:`repro.core.hydra.HydraLinker`.
"""

from repro.core.kernels import make_kernel, linear_kernel, rbf_kernel, chi_square_kernel
from repro.core.eigen import principal_eigenvector
from repro.core.qp import solve_box_qp, QPResult
from repro.core.svm import LinearSVM
from repro.core.candidates import CandidateGenerator, CandidateSet
from repro.core.consistency import ConsistencyBlock, StructureConsistencyBuilder
from repro.core.moo import MooConfig, MultiObjectiveModel
from repro.core.stages import (
    CandidateStage,
    ConsistencyStage,
    FeaturizeStage,
    LabelStage,
    LinkageContext,
    LinkageStage,
    OptimizeStage,
    run_stages,
)
from repro.core.hydra import HydraLinker, LinkageResult
from repro.core.spectral import SpectralLinker
from repro.core.distributed import DistributedLinearHydra

__all__ = [
    "make_kernel",
    "linear_kernel",
    "rbf_kernel",
    "chi_square_kernel",
    "principal_eigenvector",
    "solve_box_qp",
    "QPResult",
    "LinearSVM",
    "CandidateGenerator",
    "CandidateSet",
    "ConsistencyBlock",
    "StructureConsistencyBuilder",
    "MooConfig",
    "MultiObjectiveModel",
    "LinkageContext",
    "LinkageStage",
    "CandidateStage",
    "LabelStage",
    "FeaturizeStage",
    "ConsistencyStage",
    "OptimizeStage",
    "run_stages",
    "HydraLinker",
    "LinkageResult",
    "SpectralLinker",
    "DistributedLinearHydra",
]
