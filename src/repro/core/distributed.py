"""Distributed optimization by consensus ADMM (Section 6.3 / 7.5, reference [3]).

"Due to the extremely large data size, we adopt the distributed convex
optimization method [3] to optimize the objective function distributively on
several servers in parallel with a carefully designed model synchronization
strategy ... the overall objective function can be optimized towards the
optimal solution via optimizing a series of sub-problems on different parts
of the data stored distributively across different servers."

We reproduce that decomposition in-process: the candidate rows (and the
block-diagonal restriction of the structure Laplacian) are sharded across
simulated workers; each worker minimizes its local hinge + structure
objective plus the ADMM proximal term; the consensus variable ``z`` absorbs
the global L2 penalty.  The model is the *linear* (primal) HYDRA variant —
the form that decomposes by rows — and its solution is directly comparable to
the centralized linear model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.consistency import ConsistencyBlock

__all__ = ["DistributedLinearHydra"]


@dataclass
class _Shard:
    """One worker's data slice."""

    x: np.ndarray  # all candidate rows of this shard (with bias column)
    labeled_rows: np.ndarray  # indices into x of labeled rows
    y: np.ndarray  # labels for the labeled rows
    theta: np.ndarray  # local block-diagonal structure Laplacian


class DistributedLinearHydra:
    """Consensus-ADMM trainer for the linear HYDRA objective.

    The objective split across ``num_workers`` shards is

        sum_s [ hinge_s(w_s) + gamma_m/n^2 (X_s w_s)^T Theta_s (X_s w_s) ]
        + gamma_l/2 ||z||^2     s.t.  w_s = z for all s.

    Parameters
    ----------
    num_workers:
        Simulated server count (the paper used 5 physical servers).
    rho:
        ADMM penalty parameter.
    admm_iterations:
        Consensus synchronization rounds.
    local_iterations:
        Gradient steps per worker per round.
    """

    def __init__(
        self,
        *,
        gamma_l: float = 1.0,
        gamma_m: float = 1.0,
        num_workers: int = 5,
        rho: float = 1.0,
        admm_iterations: int = 25,
        local_iterations: int = 40,
        learning_rate: float = 0.1,
    ):
        if gamma_l <= 0:
            raise ValueError(f"gamma_l must be > 0, got {gamma_l}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if rho <= 0:
            raise ValueError(f"rho must be > 0, got {rho}")
        self.gamma_l = gamma_l
        self.gamma_m = gamma_m
        self.num_workers = num_workers
        self.rho = rho
        self.admm_iterations = admm_iterations
        self.local_iterations = local_iterations
        self.learning_rate = learning_rate
        self.w_: np.ndarray | None = None
        self.consensus_gap_: float = float("inf")

    # ------------------------------------------------------------------
    def _make_shards(
        self,
        x_all: np.ndarray,
        y: np.ndarray,
        num_labeled: int,
        blocks: list[ConsistencyBlock],
    ) -> list[_Shard]:
        """Shard rows contiguously; structure blocks restrict to within-shard.

        Each shard's ``theta`` is assembled directly from the blocks' own
        restrictions: per block, only the rows whose global index falls in
        the shard contribute, scattered at their shard-local offsets.  The
        global Laplacian is block-sparse, so this stays O(sum of block
        sizes) per shard instead of materializing the dense n x n matrix.
        """
        n = x_all.shape[0]
        boundaries = np.linspace(0, n, self.num_workers + 1, dtype=int)
        shards: list[_Shard] = []
        for s in range(self.num_workers):
            lo, hi = boundaries[s], boundaries[s + 1]
            if hi <= lo:
                continue
            rows = np.arange(lo, hi)
            labeled_rows = rows[rows < num_labeled] - lo
            theta = np.zeros((hi - lo, hi - lo))
            for block in blocks:
                inside = np.nonzero((block.indices >= lo) & (block.indices < hi))[0]
                if inside.size:
                    local = block.indices[inside] - lo
                    theta[np.ix_(local, local)] += (
                        block.weight * block.laplacian[np.ix_(inside, inside)]
                    )
            shards.append(
                _Shard(
                    x=x_all[lo:hi],
                    labeled_rows=labeled_rows,
                    y=y[rows[rows < num_labeled]],
                    theta=theta,
                )
            )
        return shards

    def _local_solve(
        self, shard: _Shard, z: np.ndarray, u: np.ndarray, n_total: int
    ) -> np.ndarray:
        """Worker update: minimize local objective + (rho/2)||w - z + u||^2."""
        w = z - u
        structure_scale = 2.0 * self.gamma_m / float(n_total * n_total)
        # precompute X^T Theta X for the quadratic structure term
        xtx = shard.x.T @ shard.theta @ shard.x
        x_lab = shard.x[shard.labeled_rows]
        for t in range(1, self.local_iterations + 1):
            grad = structure_scale * (xtx @ w) + self.rho * (w - z + u)
            if x_lab.shape[0]:
                margins = shard.y * (x_lab @ w)
                active = margins < 1.0
                if active.any():
                    grad -= (shard.y[active, None] * x_lab[active]).sum(axis=0) / max(
                        x_lab.shape[0], 1
                    )
            w = w - (self.learning_rate / (1.0 + 0.1 * t)) * grad
        return w

    # ------------------------------------------------------------------
    def fit(
        self,
        x_labeled: np.ndarray,
        y: np.ndarray,
        x_unlabeled: np.ndarray,
        blocks: list[ConsistencyBlock] | None = None,
    ) -> "DistributedLinearHydra":
        """Train with the same data layout as the centralized learner."""
        x_labeled = np.asarray(x_labeled, dtype=float)
        y = np.asarray(y, dtype=float)
        x_unlabeled = np.asarray(x_unlabeled, dtype=float)
        if x_unlabeled.size == 0:
            x_unlabeled = x_unlabeled.reshape(0, x_labeled.shape[1])
        if np.isnan(x_labeled).any() or np.isnan(x_unlabeled).any():
            raise ValueError("features contain NaN; resolve missing values first")
        blocks = blocks or []
        num_labeled = x_labeled.shape[0]
        x_all = np.vstack([x_labeled, x_unlabeled])
        # bias column: learned jointly, lightly regularized with the rest
        x_all = np.hstack([x_all, np.ones((x_all.shape[0], 1))])
        n, d = x_all.shape

        shards = self._make_shards(x_all, y, num_labeled, blocks)
        z = np.zeros(d)
        ws = [np.zeros(d) for _ in shards]
        us = [np.zeros(d) for _ in shards]
        for _ in range(self.admm_iterations):
            ws = [
                self._local_solve(shard, z, u, n)
                for shard, u in zip(shards, us)
            ]
            # z-update: prox of (gamma_l/2)||z||^2 at the average of (w_s + u_s)
            stacked = np.mean([w + u for w, u in zip(ws, us)], axis=0)
            z = (self.rho * len(shards) * stacked) / (
                self.gamma_l + self.rho * len(shards)
            )
            us = [u + w - z for u, w in zip(us, ws)]
        self.w_ = z
        self.consensus_gap_ = float(
            np.max([np.linalg.norm(w - z) for w in ws]) if ws else 0.0
        )
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed decision values for feature rows (bias included)."""
        if self.w_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        x = np.hstack([x, np.ones((x.shape[0], 1))])
        return x @ self.w_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Binary linkage decision in {-1, +1}."""
        return np.where(self.decision_function(x) >= 0.0, 1.0, -1.0)
