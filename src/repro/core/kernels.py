"""Kernel functions for the dual linkage model (Eqn 12).

"We use K to denote the kernel matrix formed by kernel functions
K(x_ii', x_jj') = <phi(x_ii'), phi(x_jj')>."  The similarity vectors live in
[0, 1]^D, so the chi-square kernel (natural for histogram-like features,
Section 5.2) is provided alongside the standard linear and RBF kernels.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

import numpy as np

__all__ = ["linear_kernel", "rbf_kernel", "chi_square_kernel", "make_kernel"]

KernelFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _as_2d(x: np.ndarray) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        return arr.reshape(1, -1)
    return arr


def linear_kernel(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Gram matrix ``X @ Y.T``."""
    return _as_2d(x) @ _as_2d(y).T


def rbf_kernel(x: np.ndarray, y: np.ndarray, *, gamma: float = 1.0) -> np.ndarray:
    """Gaussian kernel ``exp(-gamma * ||x - y||^2)``."""
    if gamma <= 0:
        raise ValueError(f"gamma must be > 0, got {gamma}")
    xx = _as_2d(x)
    yy = _as_2d(y)
    sq = (
        (xx**2).sum(axis=1)[:, None]
        - 2.0 * xx @ yy.T
        + (yy**2).sum(axis=1)[None, :]
    )
    return np.exp(-gamma * np.maximum(sq, 0.0))


def chi_square_kernel(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Additive chi-square kernel ``sum_d 2 x_d y_d / (x_d + y_d)``.

    Requires non-negative inputs (histogram-like features).  Dimensions where
    both entries are zero contribute zero.
    """
    xx = _as_2d(x)
    yy = _as_2d(y)
    if (xx < 0).any() or (yy < 0).any():
        raise ValueError("chi-square kernel requires non-negative features")
    num = 2.0 * xx[:, None, :] * yy[None, :, :]
    den = xx[:, None, :] + yy[None, :, :]
    with np.errstate(invalid="ignore", divide="ignore"):
        terms = np.where(den > 0, num / np.where(den > 0, den, 1.0), 0.0)
    return terms.sum(axis=2)


def make_kernel(name: str, **params) -> KernelFn:
    """Kernel factory: ``"linear"``, ``"rbf"`` (param ``gamma``), ``"chi_square"``.

    Returns a two-argument callable producing the Gram matrix.
    """
    if name == "linear":
        return linear_kernel
    if name == "rbf":
        # a partial of the module-level function (not a closure) so fitted
        # models pickle — parallel serving ships them to worker processes
        return partial(rbf_kernel, gamma=params.get("gamma", 1.0))
    if name == "chi_square":
        return chi_square_kernel
    raise ValueError(f"unknown kernel {name!r}; options: linear, rbf, chi_square")
