"""Linear SVM: structured risk minimization on labeled pairs (Eqn 7).

    F_D(w) = (gamma_L / 2) ||w||^2 + sum_ii' xi_ii'
    s.t.    y_ii' (w^T x_ii' + b) >= 1 - xi_ii'

Trained by deterministic averaged subgradient descent on the equivalent
hinge-loss objective.  This is both the paper's supervised objective inside
the MOO framework and the SVM-B comparison baseline ("binary prediction on
user pairs using support vector machines on the proposed similarity
calculation schemes").
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearSVM"]


class LinearSVM:
    """Primal linear SVM with hinge loss and L2 regularization.

    Parameters
    ----------
    gamma_l:
        Regularization strength (the paper's ``gamma_L``); the objective is
        ``gamma_l/2 ||w||^2 + mean hinge``.
    iterations:
        Full-batch subgradient steps.
    learning_rate:
        Initial step size; decays as ``lr / (1 + t * gamma_l)``.
    fit_intercept:
        Whether to learn the bias ``b``.

    Attributes
    ----------
    w_, b_:
        Learned weights and bias (averaged iterates, which converge faster
        for subgradient methods on non-smooth objectives).
    """

    def __init__(
        self,
        *,
        gamma_l: float = 0.1,
        iterations: int = 500,
        learning_rate: float = 1.0,
        fit_intercept: bool = True,
    ):
        if gamma_l <= 0:
            raise ValueError(f"gamma_l must be > 0, got {gamma_l}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.gamma_l = gamma_l
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.fit_intercept = fit_intercept
        self.w_: np.ndarray | None = None
        self.b_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        """Fit on features ``x`` (n, d) and labels ``y`` in {-1, +1}."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-dimensional, got shape {x.shape}")
        if y.shape != (x.shape[0],):
            raise ValueError("y length must match x rows")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("labels must be in {-1, +1}")
        if np.isnan(x).any():
            raise ValueError("x contains NaN; resolve missing values first")
        n, d = x.shape
        w = np.zeros(d)
        b = 0.0
        w_sum = np.zeros(d)
        b_sum = 0.0
        for t in range(1, self.iterations + 1):
            margins = y * (x @ w + b)
            active = margins < 1.0
            # subgradient of gamma_l/2 ||w||^2 + mean hinge
            grad_w = self.gamma_l * w - (y[active, None] * x[active]).sum(axis=0) / n
            step = self.learning_rate / (1.0 + self.gamma_l * t)
            w -= step * grad_w
            if self.fit_intercept:
                grad_b = -y[active].sum() / n
                b -= step * grad_b
            w_sum += w
            b_sum += b
        self.w_ = w_sum / self.iterations
        self.b_ = b_sum / self.iterations if self.fit_intercept else 0.0
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed margins ``w . x + b``."""
        if self.w_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return np.asarray(x, dtype=float) @ self.w_ + self.b_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Labels in {-1, +1}."""
        return np.where(self.decision_function(x) >= 0.0, 1.0, -1.0)

    def objective(self, x: np.ndarray, y: np.ndarray) -> float:
        """Eqn 7 value at the learned parameters (mean-hinge form)."""
        if self.w_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        margins = np.asarray(y, float) * self.decision_function(x)
        hinge = np.maximum(0.0, 1.0 - margins).mean()
        return float(0.5 * self.gamma_l * self.w_ @ self.w_ + hinge)
