"""Candidate pair generation: rule-based filtering over two platforms.

Section 3: examining every cross-platform pair is combinatorially hopeless
(Eqn 2), so HYDRA first applies "rule-based filtering, which includes a much
more sophisticated set of measures than existing methods, including partial
username overlapping, user attribute matching and user profile image matching
by face recognition techniques".

:class:`CandidateGenerator` unions five blocking indexes:

* **username bigrams** — inverted index on character bigrams; pairs whose
  bigram Jaccard clears a threshold;
* **email equality** — exact match on the near-unique attribute;
* **shared media items** — inverted index on down-sampled media fingerprints;
* **shared rare words** — inverted index on each account's rarest posted
  words (personal style vocabulary);
* **home grid cells** — median check-in coordinates snapped to a grid.

It also emits *pre-matched* pairs — candidates so strongly rule-supported
that they may be used as clean positive labels (the paper reports >95 %
precision for this paradigm) — keeping them separate from ground truth.

Per-platform blocking signatures (token statistics, media items, home cells,
username bigrams) are computed once per world and cached, so a C-platform
world pays the tokenization cost C times rather than once per platform
*pair*; only the joint rare-word ranking remains pair-specific.
"""

from __future__ import annotations

import weakref
from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.datagen.media import item_of
from repro.features.attributes import (
    attribute_match_vector,
    username_similarity,
)
from repro.features.face import FaceMatcher
from repro.socialnet.platform import PlatformData, SocialWorld
from repro.text.tokenizer import Tokenizer

__all__ = ["CandidateSet", "CandidateGenerator"]

AccountRef = tuple[str, str]


@dataclass
class CandidateSet:
    """Candidate pairs for one platform pair, plus rule evidence.

    ``evidence[i]`` names the blocking rules that proposed ``pairs[i]``;
    ``prematched`` indexes pairs whose rule support is strong enough to be
    treated as (noisy) positive labels.
    """

    platform_a: str
    platform_b: str
    pairs: list[tuple[AccountRef, AccountRef]] = field(default_factory=list)
    evidence: list[frozenset[str]] = field(default_factory=list)
    prematched: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)

    def pair_index(self) -> dict[tuple[AccountRef, AccountRef], int]:
        """Pair -> row index lookup."""
        return {pair: i for i, pair in enumerate(self.pairs)}


@dataclass
class _PlatformSignatures:
    """Pair-independent per-platform blocking signatures, computed once.

    Tokenizing every platform's whole corpus dominates candidate-generation
    cost, and a C-platform world runs C(C-1)/2 platform pairs — so the
    per-platform work (token sets, term frequencies, media items, home
    cells, username bigrams) is cached and reused across platform pairs.
    Only the *joint* rare-word selection stays per-pair, because word rarity
    is judged against the union corpus of the two platforms.
    """

    term_freq: Counter
    distinct_tokens: dict  # account -> sorted distinct token list
    media_items: dict      # account -> frozenset[int]
    home_cell: dict        # account -> (lat_cell, lon_cell) | None
    bigrams: dict          # account -> frozenset[str]


class CandidateGenerator:
    """Blocking-based candidate generation between two platforms.

    Parameters
    ----------
    username_threshold:
        Minimum bigram Jaccard for the username rule.
    min_shared_media:
        Minimum distinct shared (down-sampled) media items.
    min_shared_rare_words:
        Minimum shared rare words for the style rule.
    rare_word_count:
        How many of each account's rarest words feed the style index.
    grid_degrees:
        Cell size of the home-location grid.
    max_per_account:
        Candidate budget per left-platform account; the highest-evidence
        pairs win ties by username similarity.
    """

    def __init__(
        self,
        *,
        username_threshold: float = 0.4,
        min_shared_media: int = 2,
        min_shared_rare_words: int = 1,
        rare_word_count: int = 5,
        grid_degrees: float = 0.05,
        max_per_account: int = 10,
        face_matcher: FaceMatcher | None = None,
    ):
        self.username_threshold = username_threshold
        self.min_shared_media = min_shared_media
        self.min_shared_rare_words = min_shared_rare_words
        self.rare_word_count = rare_word_count
        self.grid_degrees = grid_degrees
        self.max_per_account = max_per_account
        self.face = face_matcher if face_matcher is not None else FaceMatcher()
        self._tokenizer = Tokenizer()
        # id(world) -> (weakref to world, {platform name -> signatures});
        # weakrefs (worlds are unhashable dataclasses) so cached signature
        # sets die with their world instead of accumulating
        self._signature_cache: dict[int, tuple] = {}

    def __getstate__(self) -> dict:
        # the signature cache is a pure memo keyed by object identity and
        # held through weakrefs — neither survives a process boundary, so
        # drop it and let the receiving process rebuild on first use
        state = dict(self.__dict__)
        state["_signature_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # per-platform signatures
    # ------------------------------------------------------------------
    def _bigrams(self, name: str) -> frozenset[str]:
        padded = f"^{name.lower()}$"
        return frozenset(padded[i : i + 2] for i in range(len(padded) - 1))

    def _media_items(self, platform: PlatformData, account_id: str) -> frozenset[int]:
        return frozenset(
            item_of(int(f)) for f in platform.events.payloads_for(account_id, "media")
        )

    def _home_cell(self, platform: PlatformData, account_id: str) -> tuple[int, int] | None:
        coords = platform.events.payloads_for(account_id, "checkin")
        if not coords:
            return None
        arr = np.asarray(coords, dtype=float)
        lat, lon = np.median(arr[:, 0]), np.median(arr[:, 1])
        return (int(np.floor(lat / self.grid_degrees)),
                int(np.floor(lon / self.grid_degrees)))

    def _platform_signatures(
        self, world: SocialWorld, platform_name: str
    ) -> _PlatformSignatures:
        """Blocking signatures for one platform, cached per world."""
        cache = self._signature_cache
        entry = cache.get(id(world))
        if entry is None or entry[0]() is not world:
            # the weakref callback evicts the entry the moment its world
            # dies, so dead worlds never pin their token statistics; it only
            # pops its own entry, in case a new world reuses the same id
            key = id(world)

            def _evict(ref, key=key, cache=cache):
                current = cache.get(key)
                if current is not None and current[0] is ref:
                    del cache[key]

            entry = (weakref.ref(world, _evict), {})
            cache[key] = entry
        per_world = entry[1]
        signatures = per_world.get(platform_name)
        if signatures is not None:
            return signatures
        platform = world.platforms[platform_name]
        term_freq: Counter[str] = Counter()
        distinct_tokens: dict[str, list[str]] = {}
        media_items: dict[str, frozenset[int]] = {}
        home_cell: dict[str, tuple[int, int] | None] = {}
        bigrams: dict[str, frozenset[str]] = {}
        for account_id in platform.account_ids():
            tokens: list[str] = []
            for text in platform.events.texts_of(account_id):
                tokens.extend(self._tokenizer.tokenize(text))
            term_freq.update(tokens)
            distinct_tokens[account_id] = sorted(set(tokens))
            media_items[account_id] = self._media_items(platform, account_id)
            home_cell[account_id] = self._home_cell(platform, account_id)
            bigrams[account_id] = self._bigrams(
                platform.accounts[account_id].profile.username
            )
        signatures = _PlatformSignatures(
            term_freq=term_freq,
            distinct_tokens=distinct_tokens,
            media_items=media_items,
            home_cell=home_cell,
            bigrams=bigrams,
        )
        per_world[platform_name] = signatures
        return signatures

    def _rare_words_joint(
        self,
        own: _PlatformSignatures,
        other: _PlatformSignatures,
        account_id: str,
    ) -> list[str]:
        """The account's rarest words, rarity judged on the joint corpus.

        Equivalent to building one vocabulary over both platforms and asking
        for the account's least-frequent distinct tokens (ties alphabetical),
        but reuses the cached per-platform term frequencies.
        """
        freq_own, freq_other = own.term_freq, other.term_freq
        ranked = sorted(
            own.distinct_tokens[account_id],
            key=lambda w: (freq_own[w] + freq_other[w], w),
        )
        return ranked[: self.rare_word_count]

    # ------------------------------------------------------------------
    def generate(
        self, world: SocialWorld, platform_a: str, platform_b: str
    ) -> CandidateSet:
        """Produce the candidate set for one ordered platform pair."""
        if platform_a == platform_b:
            raise ValueError("platform_a and platform_b must differ")
        pa = world.platforms[platform_a]
        pb = world.platforms[platform_b]

        # pair-independent signatures, cached per platform across pairs
        sig_a = self._platform_signatures(world, platform_a)
        sig_b = self._platform_signatures(world, platform_b)

        ids_a = pa.account_ids()
        ids_b = pb.account_ids()
        rules_hit: dict[tuple[str, str], set[str]] = defaultdict(set)

        # --- username bigram index ---------------------------------------
        bigram_index: dict[str, list[str]] = defaultdict(list)
        b_bigrams = sig_b.bigrams
        for bid in ids_b:
            for gram in b_bigrams[bid]:
                bigram_index[gram].append(bid)
        for aid in ids_a:
            grams_a = sig_a.bigrams[aid]
            overlap_counts: Counter[str] = Counter()
            for gram in grams_a:
                for bid in bigram_index.get(gram, ()):
                    overlap_counts[bid] += 1
            for bid, overlap in overlap_counts.items():
                union = len(grams_a) + len(b_bigrams[bid]) - overlap
                if union and overlap / union >= self.username_threshold:
                    rules_hit[(aid, bid)].add("username")

        # --- email equality -----------------------------------------------
        email_index: dict[str, list[str]] = defaultdict(list)
        for bid in ids_b:
            email = pb.accounts[bid].profile.email
            if email is not None:
                email_index[email].append(bid)
        for aid in ids_a:
            email = pa.accounts[aid].profile.email
            if email is not None:
                for bid in email_index.get(email, ()):
                    rules_hit[(aid, bid)].add("email")

        # --- shared media items --------------------------------------------
        media_index: dict[int, list[str]] = defaultdict(list)
        for bid in ids_b:
            for item in sig_b.media_items[bid]:
                media_index[item].append(bid)
        for aid in ids_a:
            items_a = sig_a.media_items[aid]
            shared: Counter[str] = Counter()
            for item in items_a:
                for bid in media_index.get(item, ()):
                    shared[bid] += 1
            for bid, count in shared.items():
                if count >= self.min_shared_media:
                    rules_hit[(aid, bid)].add("media")

        # --- shared rare words (rarity is judged on the joint corpus) -------
        word_index: dict[str, list[str]] = defaultdict(list)
        for bid in ids_b:
            for word in self._rare_words_joint(sig_b, sig_a, bid):
                word_index[word].append(bid)
        for aid in ids_a:
            shared_words: Counter[str] = Counter()
            for word in self._rare_words_joint(sig_a, sig_b, aid):
                for bid in word_index.get(word, ()):
                    shared_words[bid] += 1
            for bid, count in shared_words.items():
                if count >= self.min_shared_rare_words:
                    rules_hit[(aid, bid)].add("style")

        # --- home grid cells --------------------------------------------------
        cell_index: dict[tuple[int, int], list[str]] = defaultdict(list)
        for bid in ids_b:
            cell = sig_b.home_cell[bid]
            if cell is not None:
                cell_index[cell].append(bid)
        for aid in ids_a:
            cell = sig_a.home_cell[aid]
            if cell is None:
                continue
            # same cell or any of the 8 neighbours (homes near cell borders)
            for d_lat in (-1, 0, 1):
                for d_lon in (-1, 0, 1):
                    for bid in cell_index.get((cell[0] + d_lat, cell[1] + d_lon), ()):
                        rules_hit[(aid, bid)].add("location")

        # --- budget per left account, rank by evidence then username sim ----
        per_a: dict[str, list[tuple[str, set[str]]]] = defaultdict(list)
        for (aid, bid), rules in rules_hit.items():
            per_a[aid].append((bid, rules))
        result = CandidateSet(platform_a=platform_a, platform_b=platform_b)
        for aid in sorted(per_a):
            ranked = sorted(
                per_a[aid],
                key=lambda item: (
                    -len(item[1]),
                    -username_similarity(
                        pa.accounts[aid].profile.username,
                        pb.accounts[item[0]].profile.username,
                    ),
                    item[0],
                ),
            )
            for bid, rules in ranked[: self.max_per_account]:
                idx = len(result.pairs)
                result.pairs.append(((platform_a, aid), (platform_b, bid)))
                result.evidence.append(frozenset(rules))
                if self._is_prematch(pa, aid, pb, bid, rules):
                    result.prematched.append(idx)
        return result

    # ------------------------------------------------------------------
    def _is_prematch(
        self,
        pa: PlatformData,
        aid: str,
        pb: PlatformData,
        bid: str,
        rules: set[str],
    ) -> bool:
        """Conservative rule-label decision (the paper's >95 %-precision pairs)."""
        prof_a = pa.accounts[aid].profile
        prof_b = pb.accounts[bid].profile
        if "email" in rules:
            return True
        matches = attribute_match_vector(prof_a, prof_b)
        agreeing = int(np.nansum(matches))
        if prof_a.username.lower() == prof_b.username.lower() and agreeing >= 2:
            return True
        face_score = self.face.score(prof_a.face_embedding, prof_b.face_embedding)
        username_sim = username_similarity(prof_a.username, prof_b.username)
        if not np.isnan(face_score) and face_score >= 0.9 and username_sim >= 0.5:
            return True
        return False
