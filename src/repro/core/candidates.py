"""Candidate pair generation: rule-based filtering over two platforms.

Section 3: examining every cross-platform pair is combinatorially hopeless
(Eqn 2), so HYDRA first applies "rule-based filtering, which includes a much
more sophisticated set of measures than existing methods, including partial
username overlapping, user attribute matching and user profile image matching
by face recognition techniques".

:class:`CandidateGenerator` unions five blocking rules:

* **username bigrams** — inverted index on character bigrams; pairs whose
  bigram Jaccard clears a threshold;
* **email equality** — exact match on the near-unique attribute;
* **shared media items** — inverted index on down-sampled media fingerprints;
* **shared rare words** — inverted index on each account's rarest posted
  words (personal style vocabulary), rarity judged on the *joint* corpus of
  the two platforms;
* **home grid cells** — median check-in coordinates snapped to a grid.

Since the online-ingestion refactor the rules themselves live in
:mod:`repro.index`: :meth:`CandidateGenerator.build_pair_index` bulk-builds a
:class:`~repro.index.pair.PairCandidateIndex` per platform pair, and
:meth:`CandidateGenerator.generate` ranks each left account's blocking hits
through it.  The *same* index code path, kept live by the serving registry
(:mod:`repro.serving.registry`), absorbs accounts incrementally at serve
time — fit-time and ingest-time blocking cannot drift apart because they are
the same code.

It also emits *pre-matched* pairs — candidates so strongly rule-supported
that they may be used as clean positive labels (the paper reports >95 %
precision for this paradigm) — keeping them separate from ground truth.

Per-platform blocking signatures (token statistics, media items, home cells,
username bigrams) are computed once per world and cached, so a C-platform
world pays the tokenization cost C times rather than once per platform
*pair*; only the joint rare-word ranking remains pair-specific.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.features.attributes import (
    attribute_match_vector,
    username_similarity,
)
from repro.features.face import FaceMatcher
from repro.index import BlockingSignature, PairCandidateIndex, SignatureExtractor
from repro.socialnet.platform import PlatformData, SocialWorld
from repro.text.tokenizer import Tokenizer

__all__ = ["CandidateSet", "CandidateGenerator"]

AccountRef = tuple[str, str]


@dataclass
class CandidateSet:
    """Candidate pairs for one platform pair, plus rule evidence.

    ``evidence[i]`` names the blocking rules that proposed ``pairs[i]``;
    ``prematched`` indexes pairs whose rule support is strong enough to be
    treated as (noisy) positive labels.

    The set is mutable under online ingestion: use :meth:`extend` and
    :meth:`assign` (never raw list surgery) so the memoized
    :meth:`pair_index` lookup is invalidated with the rows.
    """

    platform_a: str
    platform_b: str
    pairs: list[tuple[AccountRef, AccountRef]] = field(default_factory=list)
    evidence: list[frozenset[str]] = field(default_factory=list)
    prematched: list[int] = field(default_factory=list)
    _pair_index_memo: dict | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.pairs)

    def pair_index(self) -> dict[tuple[AccountRef, AccountRef], int]:
        """Pair -> row index lookup, memoized until the pairs mutate.

        The memo is invalidated by the mutation helpers; as a safety net a
        stale-length memo (raw ``pairs.append`` by legacy callers) is
        rebuilt too.
        """
        memo = self._pair_index_memo
        if memo is None or len(memo) != len(self.pairs):
            memo = {pair: i for i, pair in enumerate(self.pairs)}
            self._pair_index_memo = memo
        return memo

    def invalidate_index(self) -> None:
        """Drop the memoized row lookup (after any in-place mutation)."""
        self._pair_index_memo = None

    def extend(
        self,
        pairs: list[tuple[AccountRef, AccountRef]],
        evidence: list[frozenset[str]],
        prematched_rows: list[int] | None = None,
    ) -> None:
        """Append rows; ``prematched_rows`` index into the *appended* block."""
        if len(pairs) != len(evidence):
            raise ValueError(
                f"pairs ({len(pairs)}) and evidence ({len(evidence)}) disagree"
            )
        base = len(self.pairs)
        self.pairs.extend(pairs)
        self.evidence.extend(evidence)
        if prematched_rows:
            self.prematched.extend(base + i for i in prematched_rows)
        self.invalidate_index()

    def assign(
        self,
        pairs: list[tuple[AccountRef, AccountRef]],
        evidence: list[frozenset[str]],
        prematched: list[int],
    ) -> None:
        """Replace the whole row set (registry group rewrites)."""
        if len(pairs) != len(evidence):
            raise ValueError(
                f"pairs ({len(pairs)}) and evidence ({len(evidence)}) disagree"
            )
        self.pairs = list(pairs)
        self.evidence = list(evidence)
        self.prematched = list(prematched)
        self.invalidate_index()


class CandidateGenerator:
    """Blocking-based candidate generation between two platforms.

    Parameters
    ----------
    username_threshold:
        Minimum bigram Jaccard for the username rule.
    min_shared_media:
        Minimum distinct shared (down-sampled) media items.
    min_shared_rare_words:
        Minimum shared rare words for the style rule.
    rare_word_count:
        How many of each account's rarest words feed the style index.
    grid_degrees:
        Cell size of the home-location grid.
    max_per_account:
        Candidate budget per left-platform account; the highest-evidence
        pairs win ties by username similarity.
    """

    def __init__(
        self,
        *,
        username_threshold: float = 0.4,
        min_shared_media: int = 2,
        min_shared_rare_words: int = 1,
        rare_word_count: int = 5,
        grid_degrees: float = 0.05,
        max_per_account: int = 10,
        face_matcher: FaceMatcher | None = None,
    ):
        self.username_threshold = username_threshold
        self.min_shared_media = min_shared_media
        self.min_shared_rare_words = min_shared_rare_words
        self.rare_word_count = rare_word_count
        self.grid_degrees = grid_degrees
        self.max_per_account = max_per_account
        self.face = face_matcher if face_matcher is not None else FaceMatcher()
        self._tokenizer = Tokenizer()
        self.extractor = SignatureExtractor(
            grid_degrees=grid_degrees, tokenizer=self._tokenizer
        )
        # id(world) -> (weakref to world, {platform name -> signatures});
        # weakrefs (worlds are unhashable dataclasses) so cached signature
        # sets die with their world instead of accumulating
        self._signature_cache: dict[int, tuple] = {}

    def __getstate__(self) -> dict:
        # the signature cache is a pure memo keyed by object identity and
        # held through weakrefs — neither survives a process boundary, so
        # drop it and let the receiving process rebuild on first use
        state = dict(self.__dict__)
        state["_signature_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # per-platform signatures
    # ------------------------------------------------------------------
    def platform_signatures(
        self, world: SocialWorld, platform_name: str
    ) -> dict[str, BlockingSignature]:
        """Blocking signatures for one platform, cached per world."""
        cache = self._signature_cache
        entry = cache.get(id(world))
        if entry is None or entry[0]() is not world:
            # the weakref callback evicts the entry the moment its world
            # dies, so dead worlds never pin their token statistics; it only
            # pops its own entry, in case a new world reuses the same id
            key = id(world)

            def _evict(ref, key=key, cache=cache):
                current = cache.get(key)
                if current is not None and current[0] is ref:
                    del cache[key]

            entry = (weakref.ref(world, _evict), {})
            cache[key] = entry
        per_world = entry[1]
        signatures = per_world.get(platform_name)
        if signatures is None:
            signatures = self.extractor.platform_signatures(
                world.platforms[platform_name]
            )
            per_world[platform_name] = signatures
        return signatures

    def invalidate_signatures(self, world: SocialWorld) -> None:
        """Drop cached signatures for ``world`` (after its accounts mutate)."""
        entry = self._signature_cache.get(id(world))
        if entry is not None and entry[0]() is world:
            del self._signature_cache[id(world)]

    # ------------------------------------------------------------------
    # index construction
    # ------------------------------------------------------------------
    def make_pair_index(
        self, platform_a: str, platform_b: str
    ) -> PairCandidateIndex:
        """An empty pair index carrying this generator's blocking thresholds."""
        return PairCandidateIndex(
            platform_a,
            platform_b,
            username_threshold=self.username_threshold,
            min_shared_media=self.min_shared_media,
            min_shared_rare_words=self.min_shared_rare_words,
            rare_word_count=self.rare_word_count,
            max_per_account=self.max_per_account,
        )

    def build_pair_index(
        self, world: SocialWorld, platform_a: str, platform_b: str
    ) -> PairCandidateIndex:
        """Bulk-build the live blocking index for one ordered platform pair."""
        if platform_a == platform_b:
            raise ValueError("platform_a and platform_b must differ")
        return self.make_pair_index(platform_a, platform_b).bulk_build(
            self.platform_signatures(world, platform_a),
            self.platform_signatures(world, platform_b),
        )

    # ------------------------------------------------------------------
    def generate(
        self, world: SocialWorld, platform_a: str, platform_b: str
    ) -> CandidateSet:
        """Produce the candidate set for one ordered platform pair."""
        index = self.build_pair_index(world, platform_a, platform_b)
        pa = world.platforms[platform_a]
        pb = world.platforms[platform_b]
        result = CandidateSet(platform_a=platform_a, platform_b=platform_b)
        for aid in index.ids("a"):
            for bid, rules in index.ranked("a", aid):
                idx = len(result.pairs)
                result.pairs.append(((platform_a, aid), (platform_b, bid)))
                result.evidence.append(rules)
                if self._is_prematch(pa, aid, pb, bid, rules):
                    result.prematched.append(idx)
        result.invalidate_index()
        return result

    # ------------------------------------------------------------------
    def _is_prematch(
        self,
        pa: PlatformData,
        aid: str,
        pb: PlatformData,
        bid: str,
        rules: frozenset[str] | set[str],
    ) -> bool:
        """Conservative rule-label decision (the paper's >95 %-precision pairs)."""
        prof_a = pa.accounts[aid].profile
        prof_b = pb.accounts[bid].profile
        if "email" in rules:
            return True
        matches = attribute_match_vector(prof_a, prof_b)
        agreeing = int(np.nansum(matches))
        if prof_a.username.lower() == prof_b.username.lower() and agreeing >= 2:
            return True
        face_score = self.face.score(prof_a.face_embedding, prof_b.face_embedding)
        username_sim = username_similarity(prof_a.username, prof_b.username)
        if not np.isnan(face_score) and face_score >= 0.9 and username_sim >= 0.5:
            return True
        return False
