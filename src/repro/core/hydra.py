"""HYDRA: the end-to-end social identity linkage estimator (Algorithm 1).

:class:`HydraLinker` is a thin orchestrator over the staged fit pipeline of
:mod:`repro.core.stages`:

1. candidate pair selection by rule-based filtering
   (:class:`~repro.core.stages.CandidateStage` — Algorithm 1 step 1);
2. label merging and the global row layout
   (:class:`~repro.core.stages.LabelStage` — Eqn 13);
3. heterogeneous behavior featurization
   (:class:`~repro.core.stages.FeaturizeStage`) with missing-information
   handling — HYDRA-M fills from the core social structure (Eqn 18),
   HYDRA-Z fills zeros;
4. structure consistency graph construction per platform pair
   (:class:`~repro.core.stages.ConsistencyStage` — Algorithm 1 step 2);
5. multi-objective dual optimization
   (:class:`~repro.core.stages.OptimizeStage` — Algorithm 1 steps 3-6).

Per-stage wall times land in ``stage_timings_`` after :meth:`HydraLinker.fit`.
A fitted linker round-trips through :meth:`HydraLinker.save` /
:meth:`HydraLinker.load` (see :mod:`repro.persist`) so query serving
(:mod:`repro.serving`) never refits.

Typical use::

    from repro.core import HydraLinker

    linker = HydraLinker(missing_strategy="core")
    linker.fit(world, labeled_positive=pos_pairs, labeled_negative=neg_pairs)
    result = linker.linkage("twitter", "facebook")
    for (ref_a, ref_b), score in zip(result.linked, result.linked_scores):
        ...
    linker.save("artifacts/linker")
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.candidates import CandidateGenerator, CandidateSet
from repro.core.consistency import ConsistencyBlock, StructureConsistencyBuilder
from repro.core.moo import MooConfig, MultiObjectiveModel
from repro.core.stages import (
    CandidateStage,
    ConsistencyStage,
    FeaturizeStage,
    LabelStage,
    LinkageContext,
    LinkageStage,
    OptimizeStage,
    run_stages,
)
from repro.features.pipeline import AccountRef, FeaturePipeline
from repro.socialnet.platform import SocialWorld

__all__ = ["HydraLinker", "LinkageResult"]

Pair = tuple[AccountRef, AccountRef]


@dataclass
class LinkageResult:
    """Scored candidates and the final linkage decision for one platform pair.

    ``pairs``/``scores`` cover every candidate; ``linked``/``linked_scores``
    are the pairs the model asserts refer to the same natural person
    (thresholded and, optionally, one-to-one resolved).
    """

    platform_a: str
    platform_b: str
    pairs: list[Pair]
    scores: np.ndarray
    linked: list[Pair] = field(default_factory=list)
    linked_scores: np.ndarray = field(default_factory=lambda: np.zeros(0))


class HydraLinker:
    """The HYDRA estimator.  See module docstring for the pipeline stages.

    Parameters
    ----------
    gamma_l, gamma_m, p:
        Multi-objective weights and utility exponent (Eqn 11).
    kernel, kernel_gamma:
        Dual-model kernel (``"rbf"``, ``"linear"``, ``"chi_square"``).
    missing_strategy:
        ``"core"`` = HYDRA-M (Eqn 18 fill), ``"zero"`` = HYDRA-Z.
    sigma1, sigma2, max_hops:
        Structure-consistency bandwidths and graph horizon (Eqn 9).
    threshold:
        Decision threshold on ``f(x)``; 0 is the SVM margin midpoint.
    one_to_one:
        Resolve linkage greedily so each account joins at most one pair
        (the SIL mapping is injective by definition).
    use_prematched:
        Treat rule pre-matched candidates as (noisy) positive labels,
        as the paper's labeled-data collection does.
    workers, shard_size:
        Fit-time featurization parallelism: ``workers`` > 1 shards the
        featurize-and-fill pass over candidate pairs across a process pool
        (:mod:`repro.parallel`), merging shard results bit-identically to
        the serial pass; ``shard_size`` pins the deterministic shard length.
    """

    def __init__(
        self,
        *,
        gamma_l: float = 0.01,
        gamma_m: float = 100.0,
        p: float = 1.0,
        kernel: str = "rbf",
        kernel_gamma: float = 0.5,
        missing_strategy: str = "core",
        sigma1: float | None = None,
        sigma1_scale: float = 0.4,
        sigma2: float = 3.0,
        max_hops: int = 2,
        num_topics: int = 12,
        max_lda_docs: int = 6000,
        threshold: float = 0.0,
        one_to_one: bool = True,
        use_prematched: bool = True,
        candidate_generator: CandidateGenerator | None = None,
        pipeline: FeaturePipeline | None = None,
        workers: int = 1,
        shard_size: int | None = None,
        seed: int = 0,
    ):
        if missing_strategy not in ("core", "zero"):
            raise ValueError(
                f"missing_strategy must be 'core' or 'zero', got {missing_strategy!r}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.moo_config = MooConfig(
            gamma_l=gamma_l,
            gamma_m=gamma_m,
            p=p,
            kernel=kernel,
            kernel_params={"gamma": kernel_gamma} if kernel == "rbf" else {},
        )
        self.missing_strategy = missing_strategy
        self.threshold = threshold
        self.one_to_one = one_to_one
        self.use_prematched = use_prematched
        self.seed = seed
        self.candidate_generator = (
            candidate_generator if candidate_generator is not None else CandidateGenerator()
        )
        self.pipeline = (
            pipeline
            if pipeline is not None
            else FeaturePipeline(
                num_topics=num_topics, max_lda_docs=max_lda_docs, seed=seed
            )
        )
        self.consistency_builder = StructureConsistencyBuilder(
            sigma1=sigma1, sigma1_scale=sigma1_scale, sigma2=sigma2, max_hops=max_hops
        )
        self.workers = workers
        self.shard_size = shard_size

        self.model_: MultiObjectiveModel | None = None
        #: Directory this linker was last saved to / loaded from (set by the
        #: persist layer); parallel serving hands it to worker initializers
        #: so each process loads the artifact instead of unpickling a copy.
        self.artifact_path_: str | None = None
        #: Serving-registry epoch: bumped on every online mutation (account
        #: ingestion/removal) so caches, worker pools, and stale artifacts
        #: keyed to the previous state invalidate exactly once per mutation.
        self.ingest_epoch_: int = 0
        #: Fit-time Nyström fast scorer (repro.approx) for the approximate
        #: ranking path; persisted in the artifact, rebuilt deterministically
        #: when absent (pre-approx artifacts).  The fitted model is frozen
        #: across online mutations, so this never invalidates with the epoch.
        self.fast_scorer_ = None
        self.candidates_: dict[tuple[str, str], CandidateSet] = {}
        self.blocks_: list[ConsistencyBlock] = []
        self.global_pairs_: list[Pair] = []
        self.num_labeled_: int = 0
        self.stage_timings_: dict[str, float] = {}
        self._filler = None
        self._world: SocialWorld | None = None

    # ------------------------------------------------------------------
    # pipeline assembly
    # ------------------------------------------------------------------
    def build_stages(self) -> list[LinkageStage]:
        """The default fit pipeline; override or swap entries to customize."""
        return [
            CandidateStage(self.candidate_generator),
            LabelStage(use_prematched=self.use_prematched),
            FeaturizeStage(
                self.pipeline,
                missing_strategy=self.missing_strategy,
                workers=self.workers,
                shard_size=self.shard_size,
            ),
            ConsistencyStage(self.consistency_builder),
            OptimizeStage(self.moo_config),
        ]

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        world: SocialWorld,
        labeled_positive: list[Pair],
        labeled_negative: list[Pair],
        platform_pairs: list[tuple[str, str]] | None = None,
        *,
        candidates: dict[tuple[str, str], CandidateSet] | None = None,
    ) -> "HydraLinker":
        """Train the linkage function on one world.

        ``labeled_positive`` / ``labeled_negative`` are ground-truth labeled
        account pairs (the paper's user-provided cross-login links plus
        sampled non-links); ``platform_pairs`` restricts which platform
        combinations are modeled (default: all C(C-1)/2 ordered pairs);
        ``candidates`` optionally injects pre-generated candidate sets so
        several methods can be compared on identical blocking.
        """
        self._world = world
        # any on-disk artifact no longer describes this linker: a parallel
        # service must not hand workers a stale path after a refit; a refit
        # also resets the mutation history
        self.artifact_path_ = None
        self.ingest_epoch_ = 0
        if platform_pairs is None:
            names = world.platform_names()
            platform_pairs = [
                (names[i], names[j])
                for i in range(len(names))
                for j in range(i + 1, len(names))
            ]
        self.platform_pairs_ = platform_pairs

        context = LinkageContext(
            world=world,
            labeled_positive=list(labeled_positive),
            labeled_negative=list(labeled_negative),
            platform_pairs=platform_pairs,
            injected_candidates=candidates,
        )
        run_stages(self.build_stages(), context)

        self.candidates_ = context.candidates
        self.global_pairs_ = context.global_pairs
        self.num_labeled_ = context.num_labeled
        self.blocks_ = context.blocks
        self._filler = context.filler
        self.model_ = context.model
        self.stage_timings_ = dict(context.timings)
        # landmark selection happens at fit time so every consumer of this
        # model (service, shard router, reloaded artifact) ranks with the
        # same compressed kernel; the solve is O(L^2 d + L^3), negligible
        # next to the stages above
        self.fast_scorer_ = None
        self.ensure_fast_scorer()
        return self

    def ensure_fast_scorer(self):
        """The Nyström fast scorer for this model, built once (deterministic).

        Rebuilding from the same fitted model always reproduces the same
        scorer bytes (seeded landmark selection over the frozen training
        rows), so artifacts saved before the approximate path existed get
        an identical scorer on first use.
        """
        if self.model_ is None:
            raise RuntimeError("linker is not fitted; call fit() first")
        if self.fast_scorer_ is None:
            from repro.approx import ApproxConfig, FastScorer

            defaults = ApproxConfig()
            self.fast_scorer_ = FastScorer.from_model(
                self.model_,
                num_landmarks=defaults.num_landmarks,
                seed=defaults.seed,
                ridge=defaults.ridge,
            )
        return self.fast_scorer_

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def featurize_pairs(self, pairs: list[Pair]) -> np.ndarray:
        """The filled feature rows for ``pairs`` (featurize + Eqn 18 fill).

        Row-independent: each pair's row is bit-identical no matter which
        other pairs share the call — the property the sharded workers and
        the gateway's grouped scoring rely on.  Featurization runs on the
        pipeline's batch engine (packed account store + array-at-a-time
        kernels, see :mod:`repro.features.batch`); missing dimensions
        resolve through the fitted filler, whose Eqn 18 friend-pair
        vectors are batch-computed and memoized as well.
        """
        if self.model_ is None or self._filler is None:
            raise RuntimeError("linker is not fitted; call fit() first")
        x_raw = self.pipeline.matrix(pairs)
        return self._filler.fill_matrix(pairs, x_raw)

    def score_features(self, x: np.ndarray) -> np.ndarray:
        """Decision values for already-featurized rows (one kernel chunk).

        The kernel Gram evaluation is chunk-shape-sensitive at the bit
        level (BLAS summation order), so callers that promise bit-identity
        must present the same chunk compositions as the reference path.
        """
        if self.model_ is None:
            raise RuntimeError("linker is not fitted; call fit() first")
        return self.model_.decision_function(x)

    def score_pairs(self, pairs: list[Pair]) -> np.ndarray:
        """Decision values ``f(x)`` for arbitrary cross-platform pairs.

        Exactly :meth:`score_features` over :meth:`featurize_pairs` — the
        two stages are exposed separately so batched callers (the gateway's
        coalesced dispatch) can amortize featurization across requests
        while keeping per-request decision chunking.
        """
        if self.model_ is None or self._filler is None:
            raise RuntimeError("linker is not fitted; call fit() first")
        if not pairs:
            return np.zeros(0)
        return self.score_features(self.featurize_pairs(pairs))

    def linkage(self, platform_a: str, platform_b: str) -> LinkageResult:
        """Score this platform pair's candidates and resolve the linkage.

        Either orientation of the platform pair is accepted; the returned
        pairs follow the requested (platform_a, platform_b) orientation.
        """
        key = (platform_a, platform_b)
        flipped = False
        if key not in self.candidates_:
            key = (platform_b, platform_a)
            flipped = True
            if key not in self.candidates_:
                raise KeyError(
                    f"platform pair ({platform_a}, {platform_b}) was not fitted"
                )
        cand = self.candidates_[key]
        scores = self.score_pairs(cand.pairs)
        oriented = (
            [(b, a) for a, b in cand.pairs] if flipped else list(cand.pairs)
        )
        result = LinkageResult(
            platform_a=platform_a,
            platform_b=platform_b,
            pairs=oriented,
            scores=scores,
        )
        passing = [
            (float(scores[i]), i) for i in range(len(oriented))
            if scores[i] > self.threshold
        ]
        passing.sort(key=lambda t: (-t[0], t[1]))
        used_a: set[str] = set()
        used_b: set[str] = set()
        linked: list[Pair] = []
        linked_scores: list[float] = []
        for score, idx in passing:
            ref_a, ref_b = oriented[idx]
            if self.one_to_one and (ref_a[1] in used_a or ref_b[1] in used_b):
                continue
            used_a.add(ref_a[1])
            used_b.add(ref_b[1])
            linked.append((ref_a, ref_b))
            linked_scores.append(score)
        result.linked = linked
        result.linked_scores = np.asarray(linked_scores)
        return result

    # ------------------------------------------------------------------
    # online ingestion (post-fit, frozen models)
    # ------------------------------------------------------------------
    @property
    def world(self) -> SocialWorld:
        """The social world this linker was fitted on.

        The public handle for online ingestion: register arriving accounts
        on ``linker.world.platforms[...]`` (see
        :meth:`~repro.socialnet.platform.PlatformData.ingest_account`)
        before handing their refs to the serving layer.
        """
        if self._world is None:
            raise RuntimeError("linker is not fitted; call fit() first")
        return self._world

    def _bump_epoch(self) -> None:
        """Invalidate everything keyed to the pre-mutation serving state."""
        self.ingest_epoch_ += 1
        # the on-disk artifact no longer matches in-memory state, so parallel
        # workers must receive the mutated linker, not a stale path
        self.artifact_path_ = None
        if self._world is not None:
            self.candidate_generator.invalidate_signatures(self._world)
        clear = getattr(self._filler, "clear_memos", None)
        if clear is not None:
            clear()

    def ingest_accounts(self, refs: list[AccountRef]) -> None:
        """Absorb new world accounts into the fitted pipeline — no refit.

        The accounts must already live in the world (see
        :meth:`~repro.socialnet.platform.PlatformData.ingest_account`); their
        behavior caches are computed with the frozen fit-time models and
        delta-packed into the batch engine in O(new).  Candidate-index
        maintenance is the serving layer's job
        (:meth:`repro.serving.LinkageService.add_accounts` wraps both); this
        linker-level entry point exists for store-only workloads such as
        scoring ad-hoc pairs against ingested accounts.
        """
        if self.model_ is None or self._filler is None:
            raise RuntimeError("linker is not fitted; call fit() first")
        self.pipeline.add_accounts(refs)
        self._bump_epoch()

    def remove_accounts(self, refs: list[AccountRef]) -> None:
        """Drop accounts from the fitted pipeline's serving state.

        The model and its (numeric) training state are untouched — removal
        only stops the accounts from being featurized or served.
        """
        if self.model_ is None or self._filler is None:
            raise RuntimeError("linker is not fitted; call fit() first")
        self.pipeline.remove_accounts(refs)
        self._bump_epoch()

    def rebuild_serving_state(self) -> None:
        """Bulk-refresh the packed store and candidate sets from the world.

        The O(all) alternative to incremental ingestion: every world account
        is (re)featurized under the frozen models, the store is re-packed
        from scratch, and every fitted platform pair's candidates are
        regenerated.  Ingestion's parity tests and benchmarks compare the
        incremental path against exactly this."""
        if self.model_ is None or self._filler is None:
            raise RuntimeError("linker is not fitted; call fit() first")
        self.pipeline.repack()
        self._bump_epoch()
        self.candidates_ = {
            (pa, pb): self.candidate_generator.generate(self._world, pa, pb)
            for pa, pb in self.platform_pairs_
        }

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def sparsity_report(self) -> dict[str, float]:
        """The Section 7.5 sparsity statistics of the fitted model.

        Kernel-QP fits report the solver's support fraction directly; models
        without a QP result (e.g. a swapped-in linear/primal optimizer or a
        loaded artifact that dropped solver state) fall back to the support
        of whatever coefficient vector the model exposes — dual ``beta_`` /
        ``alpha_`` expansions or a primal weight vector ``w_``.
        """
        if self.model_ is None:
            raise RuntimeError("linker is not fitted; call fit() first")
        qp_result = getattr(self.model_, "qp_result_", None)
        if qp_result is not None:
            support = float(qp_result.support_fraction)
        else:
            support = self._coefficient_support(self.model_)
        m_nonzero = (
            float(np.mean([b.nonzero_fraction() for b in self.blocks_]))
            if self.blocks_
            else 0.0
        )
        return {
            "consistency_nonzero_fraction": m_nonzero,
            "beta_support_fraction": support,
            "num_candidates": float(len(self.global_pairs_)),
            "num_labeled": float(self.num_labeled_),
        }

    @staticmethod
    def _coefficient_support(model, tol: float = 1e-8) -> float:
        """Fraction of non-negligible coefficients in the fitted model."""
        for attr in ("beta_", "alpha_", "w_"):
            coef = getattr(model, attr, None)
            if coef is not None and np.size(coef):
                return float(np.mean(np.abs(np.asarray(coef, dtype=float)) > tol))
        raise RuntimeError("fitted model exposes no coefficient vector")

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> "str":
        """Serialize this fitted linker to an on-disk artifact directory.

        See :mod:`repro.persist` for the artifact layout and versioning.
        """
        from repro.persist import save_linker

        return str(save_linker(self, path))

    @classmethod
    def load(cls, path) -> "HydraLinker":
        """Load a fitted linker from a :meth:`save` artifact (no refit).

        Called on a subclass, the artifact reloads as that subclass, so
        overridden stages or query behavior survive the round trip.
        """
        from repro.persist import load_linker

        return load_linker(path, linker_cls=cls)
