"""HYDRA: the end-to-end social identity linkage estimator (Algorithm 1).

:class:`HydraLinker` wires the whole paper together:

1. candidate pair selection by rule-based filtering
   (:mod:`repro.core.candidates` — Algorithm 1 step 1);
2. heterogeneous behavior featurization
   (:mod:`repro.features.pipeline`) with missing-information handling —
   HYDRA-M fills from the core social structure (Eqn 18), HYDRA-Z fills
   zeros;
3. structure consistency graph construction per platform pair
   (:mod:`repro.core.consistency` — Algorithm 1 step 2);
4. multi-objective dual optimization
   (:mod:`repro.core.moo` — Algorithm 1 steps 3-6).

Typical use::

    from repro.core import HydraLinker

    linker = HydraLinker(missing_strategy="core")
    linker.fit(world, labeled_positive=pos_pairs, labeled_negative=neg_pairs)
    result = linker.linkage("twitter", "facebook")
    for (ref_a, ref_b), score in zip(result.linked, result.linked_scores):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.candidates import CandidateGenerator, CandidateSet
from repro.core.consistency import ConsistencyBlock, StructureConsistencyBuilder
from repro.core.moo import MooConfig, MultiObjectiveModel
from repro.features.missing import CoreStructureFiller, ZeroFiller
from repro.features.pipeline import AccountRef, FeaturePipeline
from repro.socialnet.platform import SocialWorld

__all__ = ["HydraLinker", "LinkageResult"]

Pair = tuple[AccountRef, AccountRef]


@dataclass
class LinkageResult:
    """Scored candidates and the final linkage decision for one platform pair.

    ``pairs``/``scores`` cover every candidate; ``linked``/``linked_scores``
    are the pairs the model asserts refer to the same natural person
    (thresholded and, optionally, one-to-one resolved).
    """

    platform_a: str
    platform_b: str
    pairs: list[Pair]
    scores: np.ndarray
    linked: list[Pair] = field(default_factory=list)
    linked_scores: np.ndarray = field(default_factory=lambda: np.zeros(0))


class HydraLinker:
    """The HYDRA estimator.  See module docstring for the pipeline stages.

    Parameters
    ----------
    gamma_l, gamma_m, p:
        Multi-objective weights and utility exponent (Eqn 11).
    kernel, kernel_gamma:
        Dual-model kernel (``"rbf"``, ``"linear"``, ``"chi_square"``).
    missing_strategy:
        ``"core"`` = HYDRA-M (Eqn 18 fill), ``"zero"`` = HYDRA-Z.
    sigma1, sigma2, max_hops:
        Structure-consistency bandwidths and graph horizon (Eqn 9).
    threshold:
        Decision threshold on ``f(x)``; 0 is the SVM margin midpoint.
    one_to_one:
        Resolve linkage greedily so each account joins at most one pair
        (the SIL mapping is injective by definition).
    use_prematched:
        Treat rule pre-matched candidates as (noisy) positive labels,
        as the paper's labeled-data collection does.
    """

    def __init__(
        self,
        *,
        gamma_l: float = 0.01,
        gamma_m: float = 100.0,
        p: float = 1.0,
        kernel: str = "rbf",
        kernel_gamma: float = 0.5,
        missing_strategy: str = "core",
        sigma1: float | None = None,
        sigma1_scale: float = 0.4,
        sigma2: float = 3.0,
        max_hops: int = 2,
        num_topics: int = 12,
        max_lda_docs: int = 6000,
        threshold: float = 0.0,
        one_to_one: bool = True,
        use_prematched: bool = True,
        candidate_generator: CandidateGenerator | None = None,
        pipeline: FeaturePipeline | None = None,
        seed: int = 0,
    ):
        if missing_strategy not in ("core", "zero"):
            raise ValueError(
                f"missing_strategy must be 'core' or 'zero', got {missing_strategy!r}"
            )
        self.moo_config = MooConfig(
            gamma_l=gamma_l,
            gamma_m=gamma_m,
            p=p,
            kernel=kernel,
            kernel_params={"gamma": kernel_gamma} if kernel == "rbf" else {},
        )
        self.missing_strategy = missing_strategy
        self.threshold = threshold
        self.one_to_one = one_to_one
        self.use_prematched = use_prematched
        self.seed = seed
        self.candidate_generator = (
            candidate_generator if candidate_generator is not None else CandidateGenerator()
        )
        self.pipeline = (
            pipeline
            if pipeline is not None
            else FeaturePipeline(
                num_topics=num_topics, max_lda_docs=max_lda_docs, seed=seed
            )
        )
        self.consistency_builder = StructureConsistencyBuilder(
            sigma1=sigma1, sigma1_scale=sigma1_scale, sigma2=sigma2, max_hops=max_hops
        )

        self.model_: MultiObjectiveModel | None = None
        self.candidates_: dict[tuple[str, str], CandidateSet] = {}
        self.blocks_: list[ConsistencyBlock] = []
        self.global_pairs_: list[Pair] = []
        self.num_labeled_: int = 0
        self._filler = None
        self._world: SocialWorld | None = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        world: SocialWorld,
        labeled_positive: list[Pair],
        labeled_negative: list[Pair],
        platform_pairs: list[tuple[str, str]] | None = None,
        *,
        candidates: dict[tuple[str, str], CandidateSet] | None = None,
    ) -> "HydraLinker":
        """Train the linkage function on one world.

        ``labeled_positive`` / ``labeled_negative`` are ground-truth labeled
        account pairs (the paper's user-provided cross-login links plus
        sampled non-links); ``platform_pairs`` restricts which platform
        combinations are modeled (default: all C(C-1)/2 ordered pairs);
        ``candidates`` optionally injects pre-generated candidate sets so
        several methods can be compared on identical blocking.
        """
        self._world = world
        if platform_pairs is None:
            names = world.platform_names()
            platform_pairs = [
                (names[i], names[j])
                for i in range(len(names))
                for j in range(i + 1, len(names))
            ]
        self.platform_pairs_ = platform_pairs

        # ---- Algorithm 1 step 1: candidate selection ----------------------
        if candidates is not None:
            self.candidates_ = dict(candidates)
        else:
            self.candidates_ = {
                (pa, pb): self.candidate_generator.generate(world, pa, pb)
                for pa, pb in platform_pairs
            }

        # ---- labels --------------------------------------------------------
        labels: dict[Pair, float] = {}
        for pair in labeled_positive:
            labels[pair] = 1.0
        for pair in labeled_negative:
            if pair in labels:
                raise ValueError(f"pair labeled both positive and negative: {pair}")
            labels[pair] = -1.0
        if self.use_prematched:
            for cand in self.candidates_.values():
                for idx in cand.prematched:
                    labels.setdefault(cand.pairs[idx], 1.0)

        # ---- global row layout: labeled first, then unlabeled --------------
        labeled_pairs = sorted(labels, key=lambda p: (p[0], p[1]))
        labeled_set = set(labeled_pairs)
        unlabeled_pairs: list[Pair] = []
        seen = set(labeled_set)
        for key in sorted(self.candidates_):
            for pair in self.candidates_[key].pairs:
                if pair not in seen:
                    seen.add(pair)
                    unlabeled_pairs.append(pair)
        self.global_pairs_ = labeled_pairs + unlabeled_pairs
        self.num_labeled_ = len(labeled_pairs)
        y = np.array([labels[p] for p in labeled_pairs])
        if self.num_labeled_ == 0:
            raise ValueError("no labeled pairs available (labels and pre-matches empty)")
        if np.unique(y).size < 2:
            raise ValueError("labeled pairs must include both classes")

        # ---- featurization with missing handling ---------------------------
        self.pipeline.fit(
            world,
            [p for p in labeled_pairs if labels[p] > 0],
            [p for p in labeled_pairs if labels[p] < 0],
        )
        x_raw = self.pipeline.matrix(self.global_pairs_)
        if self.missing_strategy == "core":
            self._filler = CoreStructureFiller(world, self.pipeline)
        else:
            self._filler = ZeroFiller()
        x_all = self._filler.fill_matrix(self.global_pairs_, x_raw)

        # ---- Algorithm 1 step 2: structure consistency graphs --------------
        row_of = {pair: i for i, pair in enumerate(self.global_pairs_)}
        behavior = {
            ref: self.pipeline.behavior_summary(ref)
            for pair in self.global_pairs_
            for ref in pair
        }
        self.blocks_ = []
        for pa, pb in platform_pairs:
            block_pairs = [
                pair for pair in self.global_pairs_
                if pair[0][0] == pa and pair[1][0] == pb
            ]
            if len(block_pairs) < 2:
                continue
            indices = np.array([row_of[p] for p in block_pairs], dtype=np.int64)
            self.blocks_.append(
                self.consistency_builder.build(
                    world, block_pairs, behavior, indices=indices
                )
            )

        # ---- Algorithm 1 steps 3-6: multi-objective optimization -----------
        self.model_ = MultiObjectiveModel(self.moo_config)
        self.model_.fit(
            x_all[: self.num_labeled_],
            y,
            x_all[self.num_labeled_ :],
            self.blocks_,
        )
        return self

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def score_pairs(self, pairs: list[Pair]) -> np.ndarray:
        """Decision values ``f(x)`` for arbitrary cross-platform pairs."""
        if self.model_ is None or self._filler is None:
            raise RuntimeError("linker is not fitted; call fit() first")
        if not pairs:
            return np.zeros(0)
        x_raw = self.pipeline.matrix(pairs)
        x = self._filler.fill_matrix(pairs, x_raw)
        return self.model_.decision_function(x)

    def linkage(self, platform_a: str, platform_b: str) -> LinkageResult:
        """Score this platform pair's candidates and resolve the linkage.

        Either orientation of the platform pair is accepted; the returned
        pairs follow the requested (platform_a, platform_b) orientation.
        """
        key = (platform_a, platform_b)
        flipped = False
        if key not in self.candidates_:
            key = (platform_b, platform_a)
            flipped = True
            if key not in self.candidates_:
                raise KeyError(
                    f"platform pair ({platform_a}, {platform_b}) was not fitted"
                )
        cand = self.candidates_[key]
        scores = self.score_pairs(cand.pairs)
        oriented = (
            [(b, a) for a, b in cand.pairs] if flipped else list(cand.pairs)
        )
        result = LinkageResult(
            platform_a=platform_a,
            platform_b=platform_b,
            pairs=oriented,
            scores=scores,
        )
        passing = [
            (float(scores[i]), i) for i in range(len(oriented))
            if scores[i] > self.threshold
        ]
        passing.sort(key=lambda t: (-t[0], t[1]))
        used_a: set[str] = set()
        used_b: set[str] = set()
        linked: list[Pair] = []
        linked_scores: list[float] = []
        for score, idx in passing:
            ref_a, ref_b = oriented[idx]
            if self.one_to_one and (ref_a[1] in used_a or ref_b[1] in used_b):
                continue
            used_a.add(ref_a[1])
            used_b.add(ref_b[1])
            linked.append((ref_a, ref_b))
            linked_scores.append(score)
        result.linked = linked
        result.linked_scores = np.asarray(linked_scores)
        return result

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def sparsity_report(self) -> dict[str, float]:
        """The Section 7.5 sparsity statistics of the fitted model."""
        if self.model_ is None or self.model_.qp_result_ is None:
            raise RuntimeError("linker is not fitted; call fit() first")
        m_nonzero = (
            float(np.mean([b.nonzero_fraction() for b in self.blocks_]))
            if self.blocks_
            else 0.0
        )
        return {
            "consistency_nonzero_fraction": m_nonzero,
            "beta_support_fraction": self.model_.qp_result_.support_fraction,
            "num_candidates": float(len(self.global_pairs_)),
            "num_labeled": float(self.num_labeled_),
        }
