"""Principal eigenvector by power iteration.

Section 6.2: after relaxing the cluster indicator, "the solution that
maximizes the inter-cluster score y^T M y is the principal eigenvector of M"
(Raleigh's ratio theorem).  The consistency matrix M is non-negative, so the
Perron-Frobenius eigenvector is itself non-negative and power iteration
converges to it; the eigenvector scores candidate pairs by membership in the
main agreement cluster (used directly by the spectral-matching diagnostics
and as an unsupervised fallback scorer).
"""

from __future__ import annotations

import numpy as np

__all__ = ["principal_eigenvector"]


def principal_eigenvector(
    matrix: np.ndarray,
    *,
    max_iterations: int = 500,
    tol: float = 1e-10,
    seed: int = 0,
) -> tuple[np.ndarray, float]:
    """Return ``(eigenvector, eigenvalue)`` of the dominant eigenpair.

    The vector is L2-normalized and sign-fixed so its largest-magnitude
    component is positive.  Raises on non-square or empty input.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"matrix must be square, got shape {m.shape}")
    n = m.shape[0]
    if n == 0:
        raise ValueError("matrix must be non-empty")
    rng = np.random.default_rng(seed)
    vec = rng.random(n) + 1e-3
    vec /= np.linalg.norm(vec)
    value = 0.0
    for _ in range(max_iterations):
        nxt = m @ vec
        norm = float(np.linalg.norm(nxt))
        if norm == 0.0:
            # M annihilates the iterate: zero matrix (or nilpotent direction)
            return np.zeros(n), 0.0
        nxt /= norm
        if float(np.linalg.norm(nxt - vec)) < tol:
            vec = nxt
            value = norm
            break
        vec = nxt
        value = norm
    pivot = int(np.argmax(np.abs(vec)))
    if vec[pivot] < 0:
        vec = -vec
    return vec, float(value)
