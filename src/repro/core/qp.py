"""SMO-style solver for the HYDRA dual quadratic program (Eqn 16).

The dual of the multi-objective model is the smooth box-constrained QP

    maximize_beta   1^T beta - (1/2) beta^T Q beta
    subject to      sum_i y_i beta_i = 0,    0 <= beta_i <= C

with Q symmetric positive semidefinite (Eqn 17).  This is exactly the shape
of the classic SVM dual, so we solve it with sequential minimal optimization:
repeatedly pick a maximally-KKT-violating pair (i, j), optimize the objective
analytically along the feasible segment that keeps ``y_i beta_i + y_j beta_j``
constant, and clip to the box.  Convergence follows from coordinate ascent on
a concave objective over a compact feasible set.

The solver also exposes the *support shrinking* statistic the paper reports
(Section 7.5: "at least 90 % of the dimensions in beta are zeros").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QPResult", "solve_box_qp"]


@dataclass(frozen=True)
class QPResult:
    """Solution of the dual QP.

    ``beta`` is the optimizer, ``objective`` its objective value,
    ``iterations`` the number of SMO pair updates performed, and
    ``support_fraction`` the fraction of strictly-positive coordinates.
    """

    beta: np.ndarray
    objective: float
    iterations: int
    support_fraction: float


def _objective(beta: np.ndarray, q: np.ndarray) -> float:
    return float(beta.sum() - 0.5 * beta @ q @ beta)


def solve_box_qp(
    q: np.ndarray,
    y: np.ndarray,
    c: float,
    *,
    max_iterations: int = 20000,
    tol: float = 1e-6,
) -> QPResult:
    """Solve the Eqn 16 QP by SMO pair updates.

    Parameters
    ----------
    q:
        Symmetric PSD matrix (Nl, Nl).  Mild asymmetry from numerical error
        is symmetrized internally.
    y:
        Labels in {-1, +1} defining the equality constraint.
    c:
        Box upper bound (the paper uses ``1 / |P_l|``).
    max_iterations:
        Cap on SMO pair updates.
    tol:
        KKT violation threshold for convergence.
    """
    q = np.asarray(q, dtype=float)
    y = np.asarray(y, dtype=float)
    n = q.shape[0]
    if q.shape != (n, n):
        raise ValueError(f"q must be square, got {q.shape}")
    if y.shape != (n,):
        raise ValueError(f"y must have shape ({n},), got {y.shape}")
    if not np.all(np.isin(y, (-1.0, 1.0))):
        raise ValueError("labels must be in {-1, +1}")
    if c <= 0:
        raise ValueError(f"c must be > 0, got {c}")
    q = 0.5 * (q + q.T)

    beta = np.zeros(n)
    grad = np.ones(n)  # gradient of the objective: 1 - Q beta

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # Working-set selection (first-order, LibSVM style): along the
        # feasible directions +e_i - (y_i/y_j) e_j the projected derivative is
        # y_i * grad_i for "up" moves and -y_j * grad_j for "down" moves.
        up_mask = ((y > 0) & (beta < c - 1e-12)) | ((y < 0) & (beta > 1e-12))
        down_mask = ((y > 0) & (beta > 1e-12)) | ((y < 0) & (beta < c - 1e-12))
        if not up_mask.any() or not down_mask.any():
            break
        # NOTE on direction bookkeeping: define nu_i = y_i * grad_i.  A
        # feasible ascent exists iff max_{up} nu > min_{down} nu.
        nu = y * grad
        i = int(np.flatnonzero(up_mask)[np.argmax(nu[up_mask])])
        j = int(np.flatnonzero(down_mask)[np.argmin(nu[down_mask])])
        violation = nu[i] - nu[j]
        if violation < tol:
            break

        # Analytic step: beta_i += y_i * t, beta_j -= y_j * t preserves the
        # equality constraint; maximize over t and clip to the box.
        eta = q[i, i] + q[j, j] - 2.0 * y[i] * y[j] * q[i, j]
        if eta <= 1e-14:
            eta = 1e-14
        t = violation / eta
        # box limits on t from both coordinates
        if y[i] > 0:
            t = min(t, c - beta[i])
        else:
            t = min(t, beta[i])
        if y[j] > 0:
            t = min(t, beta[j])
        else:
            t = min(t, c - beta[j])
        if t <= 0:
            break
        delta_i = y[i] * t
        delta_j = -y[j] * t
        beta[i] += delta_i
        beta[j] += delta_j
        grad -= q[:, i] * delta_i + q[:, j] * delta_j

    beta = np.clip(beta, 0.0, c)
    support = float(np.mean(beta > 1e-10)) if n else 0.0
    return QPResult(
        beta=beta,
        objective=_objective(beta, q),
        iterations=iterations,
        support_fraction=support,
    )
