"""Multi-objective model learning (Section 6.3, Eqns 10-17).

The SIL problem is cast as the vector minimization

    min_w F(w) = [F_D(w), F_S^{cc'}(w), ...]

aggregated by the weighted exponential-sum utility ``U = sum_k w_k F_k^p``
(Eqn 11), whose minimizers are Pareto-optimal (Proposition 1).  In the dual
(Representer theorem, Eqn 12) the solution is

    alpha = (2 gamma_L I + 2 gamma_M / n^2 (D - M) K)^{-1} J^T Y beta*   (Eqn 15)

with beta* solving the box QP of Eqn 16 with

    Q = Y J K (2 gamma_L I + 2 gamma_M / n^2 (D - M) K)^{-1} J^T Y.     (Eqn 17)

``p = 1`` recovers Laplacian-regularized semi-supervised learning (manifold
regularization [2]); for ``p > 1`` the utility's gradient is that of a p = 1
problem with effective weights ``w_k p F_k^{p-1}``, so we solve by sequential
convex reweighting: solve at the current weights, re-evaluate the objective
values, update the weights, repeat.  Each inner problem is the convex QP
above; larger p concentrates preference on the currently-dominant objective
exactly as the paper's model analysis (Section 6.4) describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.consistency import ConsistencyBlock
from repro.core.kernels import make_kernel
from repro.core.qp import QPResult, solve_box_qp

__all__ = ["MooConfig", "MultiObjectiveModel"]


@dataclass
class MooConfig:
    """Hyper-parameters of the multi-objective learner.

    ``gamma_l`` and ``gamma_m`` are the paper's preference weights on the
    supervised loss and the structure consistency objectives; ``p`` is the
    utility exponent (Fig 10 sweeps it 1..10).
    """

    gamma_l: float = 1.0
    gamma_m: float = 1.0
    p: float = 1.0
    kernel: str = "rbf"
    kernel_params: dict = field(default_factory=lambda: {"gamma": 0.5})
    max_smo_iterations: int = 20000
    smo_tol: float = 1e-6
    reweight_iterations: int = 4
    jitter: float = 1e-8

    def __post_init__(self) -> None:
        if self.gamma_l <= 0:
            raise ValueError(f"gamma_l must be > 0, got {self.gamma_l}")
        if self.gamma_m < 0:
            raise ValueError(f"gamma_m must be >= 0, got {self.gamma_m}")
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {self.p}")


class MultiObjectiveModel:
    """Kernelized semi-supervised linkage model trained per Algorithm 1.

    Train with :meth:`fit`; score unseen similarity vectors with
    :meth:`decision_function` (``> 0`` predicts "same person").

    Attributes (populated by fit)
    -----------------------------
    alpha_:
        Dual expansion coefficients over all (labeled + unlabeled) pairs.
    beta_:
        QP solution on the labeled pairs.
    bias_:
        Decision bias ``b`` recovered from the KKT conditions.
    objective_values_:
        Final ``[F_D, F_S per block]`` values.
    qp_result_:
        The last inner :class:`~repro.core.qp.QPResult` (support sparsity).
    """

    def __init__(self, config: MooConfig | None = None):
        self.config = config if config is not None else MooConfig()
        self._kernel = make_kernel(self.config.kernel, **self.config.kernel_params)
        self.x_train_: np.ndarray | None = None
        self.alpha_: np.ndarray | None = None
        self.beta_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.objective_values_: list[float] = []
        self.qp_result_: QPResult | None = None

    # ------------------------------------------------------------------
    def _global_laplacian(
        self, blocks: list[ConsistencyBlock], n: int, weights: np.ndarray
    ) -> np.ndarray:
        """Scatter weighted block Laplacians into the global (n, n) matrix."""
        theta = np.zeros((n, n))
        for block, weight in zip(blocks, weights):
            idx = block.indices
            theta[np.ix_(idx, idx)] += weight * block.laplacian
        return theta

    def fit(
        self,
        x_labeled: np.ndarray,
        y: np.ndarray,
        x_unlabeled: np.ndarray,
        blocks: list[ConsistencyBlock] | None = None,
    ) -> "MultiObjectiveModel":
        """Train on labeled pairs + unlabeled candidates + consistency blocks.

        Row layout: the global candidate array is ``[x_labeled; x_unlabeled]``
        and every block's ``indices`` must refer to that layout ("the first
        Nl pairs are labeled", Eqn 13).
        """
        x_labeled = np.asarray(x_labeled, dtype=float)
        y = np.asarray(y, dtype=float)
        x_unlabeled = np.asarray(x_unlabeled, dtype=float)
        if x_unlabeled.size == 0:
            x_unlabeled = x_unlabeled.reshape(0, x_labeled.shape[1])
        num_labeled = x_labeled.shape[0]
        if num_labeled == 0:
            raise ValueError("at least one labeled pair is required")
        if y.shape != (num_labeled,):
            raise ValueError("y length must match x_labeled rows")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("labels must be in {-1, +1}")
        if np.unique(y).size < 2:
            raise ValueError("both classes must be present in the labels")
        blocks = blocks or []

        x_all = np.vstack([x_labeled, x_unlabeled])
        if np.isnan(x_all).any():
            raise ValueError("features contain NaN; resolve missing values first")
        n = x_all.shape[0]
        for block in blocks:
            if block.indices.size and (
                block.indices.min() < 0 or block.indices.max() >= n
            ):
                raise ValueError("block indices exceed the candidate array")

        cfg = self.config
        gram = self._kernel(x_all, x_all)
        gram = 0.5 * (gram + gram.T)
        jt_y = np.zeros((n, num_labeled))
        jt_y[:num_labeled, :] = np.diag(y)
        box_c = 1.0 / num_labeled

        weights = np.array([block.weight for block in blocks], dtype=float)
        effective = weights.copy()
        outer_iterations = 1 if cfg.p == 1 or not blocks else cfg.reweight_iterations

        # Data-derived normalization scales so the objectives are comparable
        # inside the p-reweighting (the standard objective normalization of
        # multi-objective optimization [19]):  F_D at w = 0 equals Nl (every
        # labeled pair at full hinge); each F_S is scaled by the trace of its
        # quadratic form, the value of an identity-coefficient solution.
        f_d_scale = float(num_labeled)
        f_s_scales = []
        for block in blocks:
            idx = block.indices
            k_block = gram[np.ix_(idx, idx)]
            f_s_scales.append(
                max(float(np.trace(block.laplacian @ k_block)) / float(n * n), 1e-12)
            )

        alpha = np.zeros(n)
        beta = np.zeros(num_labeled)
        bias = 0.0
        f_values: list[float] = []
        for _ in range(outer_iterations):
            theta = self._global_laplacian(blocks, n, effective)
            a_matrix = (
                2.0 * cfg.gamma_l * np.eye(n)
                + (2.0 * cfg.gamma_m / float(n * n)) * theta @ gram
            )
            a_matrix[np.diag_indices_from(a_matrix)] += cfg.jitter
            b_matrix = np.linalg.solve(a_matrix, jt_y)  # A^{-1} J^T Y, (n, Nl)
            q = np.diag(y) @ (gram @ b_matrix)[:num_labeled, :]
            q = 0.5 * (q + q.T)
            q[np.diag_indices_from(q)] += cfg.jitter
            self.qp_result_ = solve_box_qp(
                q, y, box_c,
                max_iterations=cfg.max_smo_iterations,
                tol=cfg.smo_tol,
            )
            beta = self.qp_result_.beta
            alpha = b_matrix @ beta
            f_all = gram @ alpha
            bias = self._bias_from_kkt(f_all[:num_labeled], y, beta, box_c)

            # objective values for reporting and for p > 1 reweighting
            w_norm_sq = float(alpha @ gram @ alpha)
            margins = y * (f_all[:num_labeled] + bias)
            hinge = float(np.maximum(0.0, 1.0 - margins).sum())
            f_d = 0.5 * cfg.gamma_l * w_norm_sq + hinge
            f_values = [f_d]
            for block in blocks:
                fb = f_all[block.indices]
                f_values.append(float(fb @ block.laplacian @ fb) / float(n * n))
            if cfg.p > 1 and blocks:
                # Effective weight of objective k in the linearized problem is
                # proportional to w_k * p * F_k^{p-1} on the *normalized*
                # objectives; the ratio is divided by F_D's factor so gamma_l
                # keeps its meaning.  Larger p concentrates preference on the
                # currently-dominant (normalized) objective, the Section 6.4
                # behavior.  Updates are geometrically damped and clamped to
                # two decades around the preference weights so the sequential
                # convex iteration converges instead of oscillating.
                fd_norm = max(f_values[0] / f_d_scale, 1e-12)
                proposed = np.array(
                    [
                        w * (max(fs / scale, 1e-12) / fd_norm) ** (cfg.p - 1.0)
                        for w, fs, scale in zip(weights, f_values[1:], f_s_scales)
                    ]
                )
                damped = np.sqrt(np.maximum(effective, 1e-12) * proposed)
                effective = np.clip(damped, weights * 1e-2, weights * 1e2)

        self.x_train_ = x_all
        self.alpha_ = alpha
        self.beta_ = beta
        self.bias_ = bias
        self.objective_values_ = f_values
        return self

    @staticmethod
    def _bias_from_kkt(
        f_labeled: np.ndarray, y: np.ndarray, beta: np.ndarray, box_c: float
    ) -> float:
        """Recover b: free support vectors satisfy ``y_i (f_i + b) = 1``."""
        free = (beta > 1e-8) & (beta < box_c - 1e-8)
        if free.any():
            return float(np.mean(y[free] - f_labeled[free]))
        support = beta > 1e-8
        if support.any():
            return float(np.mean(y[support] - f_labeled[support]))
        return float(np.mean(y - f_labeled))

    # ------------------------------------------------------------------
    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Eqn 12: ``f(x_t) = sum alpha_ii' K(x_ii', x_t) + b``."""
        if self.alpha_ is None or self.x_train_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        gram = self._kernel(np.atleast_2d(np.asarray(x, dtype=float)), self.x_train_)
        return gram @ self.alpha_ + self.bias_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Binary linkage decision in {-1, +1}."""
        return np.where(self.decision_function(x) >= 0.0, 1.0, -1.0)
