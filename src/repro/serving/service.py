"""The batch-scoring service: linkage queries without refitting.

:class:`LinkageService` wraps a *fitted* :class:`~repro.core.hydra.HydraLinker`
(constructed in memory or loaded from a :mod:`repro.persist` artifact) and
serves three query shapes:

* :meth:`LinkageService.score_pairs` — decision values for arbitrary pair
  batches, featurized in fixed-size batches so memory stays bounded while
  each kernel evaluation is vectorized;
* :meth:`LinkageService.link_account` — resolve one account against every
  indexed candidate on the other platforms (the "who is this user
  elsewhere?" query);
* :meth:`LinkageService.top_k` — the strongest candidate links of a platform
  pair.

Candidate lookups go through a per-platform inverted index built once at
construction; per-platform-pair candidate scores are computed lazily on
first touch and memoized in a bounded :class:`LruCache`, as are per-account
behavior summaries.  :meth:`LinkageService.stats` exposes the running
counters (queries, pairs scored, cache hit/miss rates) for capacity
monitoring.  Featurization inside :meth:`LinkageService.score_pairs` runs on
the pipeline's batch engine (see :mod:`repro.features.batch`), so each
fixed-size batch is scored array-at-a-time.

Construct the service with ``workers=N`` to shard scoring across a process
pool (:mod:`repro.parallel`): pair batches are partitioned by a deterministic
shard plan, each worker process holds its own copy of the fitted linker —
loaded from the persisted artifact when the linker knows its
``artifact_path_``, otherwise shipped by the pool machinery — and shard
results merge in shard order, bit-identical to the serial path.  The pool
spins up lazily on the first sharded call and is released by
:meth:`LinkageService.close` (the service is also a context manager).
Per-worker shard and pair counts roll up into :class:`ServiceStats`.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.hydra import HydraLinker
from repro.features.pipeline import AccountRef
from repro.parallel import ShardPlan, ShardedExecutor
from repro.parallel import worker as _worker

__all__ = ["LinkageService", "LruCache", "ScoredLink", "ServiceStats"]

Pair = tuple[AccountRef, AccountRef]


class LruCache:
    """A small least-recently-used cache with hit/miss counters."""

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get_or_compute(self, key, compute):
        """Return the cached value for ``key``, computing and inserting on miss."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
            return value
        self.hits += 1
        self._data.move_to_end(key)
        return value


@dataclass(frozen=True)
class ScoredLink:
    """One served candidate link: the pair, its decision value, and context."""

    pair: Pair
    score: float
    evidence: frozenset[str]
    behavior_distance: float


@dataclass
class ServiceStats:
    """Running counters of one service instance.

    The last block covers sharded execution: ``parallel_queries`` counts
    scoring calls that went through the process pool, ``shards_dispatched``
    the shards they fanned out, and ``worker_pairs`` / ``worker_shards``
    break pairs and shards down per worker process (keyed ``"pid:<n>"``) so
    capacity monitoring can spot skew.
    """

    queries: int = 0
    pairs_scored: int = 0
    batches: int = 0
    summary_cache_hits: int = 0
    summary_cache_misses: int = 0
    score_cache_entries: int = 0
    score_cache_hits: int = 0
    score_cache_misses: int = 0
    workers: int = 1
    parallel_queries: int = 0
    shards_dispatched: int = 0
    worker_pairs: dict[str, int] = field(default_factory=dict)
    worker_shards: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _PairIndex:
    """Inverted candidate index for one fitted platform pair."""

    pairs: list[Pair]
    evidence: list[frozenset[str]]
    by_left: dict[str, list[int]] = field(default_factory=dict)
    by_right: dict[str, list[int]] = field(default_factory=dict)


class LinkageService:
    """Serve linkage queries from a fitted linker — no refitting, ever.

    Parameters
    ----------
    linker:
        A fitted :class:`~repro.core.hydra.HydraLinker`.
    batch_size:
        Featurization batch size for :meth:`score_pairs`.
    summary_cache_size:
        Capacity of the per-account behavior-summary LRU.
    score_cache_size:
        Capacity of the per-platform-pair candidate-score LRU; keeps the
        memoized score arrays bounded when a service handles many platform
        pairs.
    workers:
        Scoring process count.  ``1`` (default) scores inline; ``N > 1``
        shards every scoring call across a lazily-started process pool,
        merging results bit-identically to the inline path.  Call
        :meth:`close` (or use the service as a context manager) to release
        the pool.
    shard_size:
        Pins the deterministic shard length; default lets the plan derive
        it from the workload and worker count.
    """

    def __init__(
        self,
        linker: HydraLinker,
        *,
        batch_size: int = 256,
        summary_cache_size: int = 4096,
        score_cache_size: int = 64,
        workers: int = 1,
        shard_size: int | None = None,
    ):
        if linker.model_ is None or linker._filler is None:
            raise RuntimeError("linker is not fitted; fit() or load() first")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.linker = linker
        self.batch_size = batch_size
        self.workers = workers
        self.shard_size = shard_size
        self._executor: ShardedExecutor | None = None
        self._summaries = LruCache(summary_cache_size)
        self._score_cache = LruCache(score_cache_size)
        self._queries = 0
        self._pairs_scored = 0
        self._batches = 0
        self._parallel_queries = 0
        self._shards_dispatched = 0
        self._worker_pairs: Counter = Counter()
        self._worker_shards: Counter = Counter()

        self._index: dict[tuple[str, str], _PairIndex] = {}
        for key, cand in linker.candidates_.items():
            index = _PairIndex(pairs=list(cand.pairs), evidence=list(cand.evidence))
            for row, (ref_a, ref_b) in enumerate(cand.pairs):
                index.by_left.setdefault(ref_a[1], []).append(row)
                index.by_right.setdefault(ref_b[1], []).append(row)
            self._index[key] = index

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(cls, path, **kwargs) -> "LinkageService":
        """Load a :mod:`repro.persist` artifact and serve it."""
        return cls(HydraLinker.load(path), **kwargs)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def platform_pairs(self) -> list[tuple[str, str]]:
        """The platform pairs this service can answer for."""
        return sorted(self._index)

    def num_candidates(self) -> int:
        """Total indexed candidate pairs across all platform pairs."""
        return sum(len(index.pairs) for index in self._index.values())

    def score_pairs(
        self, pairs: list[Pair], *, batch_size: int | None = None
    ) -> np.ndarray:
        """Decision values for arbitrary pairs, featurized batch by batch."""
        self._queries += 1
        if not pairs:
            return np.zeros(0)
        batch = batch_size if batch_size is not None else self.batch_size
        out = self._score(pairs, batch)
        self._pairs_scored += len(pairs)
        self._batches += -(-len(pairs) // batch)  # ceil division
        return out

    def _score(self, pairs: list[Pair], batch: int) -> np.ndarray:
        """Batched scoring through the linker's own pipeline; counters stay
        untouched so internal cache fills don't masquerade as workload
        (sharding bookkeeping — shard/worker attribution — is recorded, as
        it describes execution, not workload)."""
        if batch < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch}")
        plan = self._plan(len(pairs), batch)
        if plan is not None:
            return self._score_sharded(pairs, batch, plan)
        return _worker.score_chunked(self.linker, pairs, batch)

    def _plan(self, num_pairs: int, batch: int) -> ShardPlan | None:
        """The shard plan for this workload, or None for the inline path.

        Shard lengths are aligned **up** to a multiple of the featurization
        batch size: featurized rows are batch-invariant, but the kernel
        Gram products inside ``decision_function`` are evaluated per batch,
        and BLAS accumulates a product's entries in a shape-dependent
        order.  Aligned shards present workers with exactly the chunk
        compositions the serial loop would have used, which is what makes
        ``workers=N`` bit-identical to ``workers=1`` (a shard size that is
        not a multiple of the batch would still be correct to ~1e-9, like
        re-batching is, but not bit-for-bit).
        """
        if self.workers == 1 or num_pairs < 2:
            return None
        if self.shard_size is not None:
            shard_size = -(-self.shard_size // batch) * batch
        else:
            draft = ShardPlan.build(num_pairs, workers=self.workers)
            shard_size = -(-draft.shard_size // batch) * batch
        plan = ShardPlan.build(
            num_pairs, workers=self.workers, shard_size=shard_size
        )
        return None if plan.is_serial else plan

    def _score_sharded(
        self, pairs: list[Pair], batch: int, plan: ShardPlan
    ) -> np.ndarray:
        executor = self._ensure_executor()
        results = executor.run(
            _worker.score_shard,
            [(shard.index, shard.take(pairs), batch) for shard in plan],
        )
        self._parallel_queries += 1
        self._shards_dispatched += plan.num_shards
        for result in results:
            self._worker_pairs[result.worker] += result.num_items
            self._worker_shards[result.worker] += 1
        return plan.merge([result.values for result in results])

    def _ensure_executor(self) -> ShardedExecutor:
        """The lazily-started scoring pool.

        Workers are initialized once per process: from the persisted
        artifact when the linker knows where it lives on disk (each worker
        pays one load, nothing is re-pickled), otherwise the fitted linker
        itself is shipped through the pool machinery.
        """
        if self._executor is None:
            from repro.persist import artifact_exists

            path = getattr(self.linker, "artifact_path_", None)
            if path is not None and artifact_exists(path):
                initializer = _worker.init_scorer_from_artifact
                initargs: tuple = (str(path),)
            else:
                initializer = _worker.init_scorer_from_linker
                initargs = (self.linker,)
            self._executor = ShardedExecutor(
                workers=self.workers, initializer=initializer, initargs=initargs
            )
        return self._executor

    def close(self) -> None:
        """Release the scoring pool (no-op for inline services)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "LinkageService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def top_k(self, platform_a: str, platform_b: str, k: int = 10) -> list[ScoredLink]:
        """The ``k`` strongest candidate links for one platform pair.

        Either orientation is accepted; returned pairs follow the requested
        orientation.
        """
        self._queries += 1
        key, flipped = self._resolve(platform_a, platform_b)
        index = self._index[key]
        scores = self._cached_scores(key)
        order = np.argsort(-scores, kind="stable")[: max(k, 0)]
        return [self._link(index, int(row), scores, flipped) for row in order]

    def link_account(
        self,
        platform: str,
        account_id: str,
        *,
        other_platform: str | None = None,
        top: int = 5,
    ) -> list[ScoredLink]:
        """Resolve one account against its indexed candidates.

        Searches every fitted platform pair that involves ``platform``
        (restricted to ``other_platform`` when given) and returns the
        strongest ``top`` links, oriented with the queried account first.
        """
        self._queries += 1
        results: list[ScoredLink] = []
        for key, index in self._index.items():
            if key[0] == platform and (other_platform in (None, key[1])):
                rows, flipped = index.by_left.get(account_id, []), False
            elif key[1] == platform and (other_platform in (None, key[0])):
                rows, flipped = index.by_right.get(account_id, []), True
            else:
                continue
            scores = self._cached_scores(key)
            results.extend(self._link(index, row, scores, flipped) for row in rows)
        results.sort(key=lambda link: -link.score)
        return results[: max(top, 0)]

    def account_summary(self, ref: AccountRef) -> np.ndarray:
        """Behavior summary of one account, via the bounded LRU cache."""
        return self._summaries.get_or_compute(
            ref, lambda: self.linker.pipeline.behavior_summary(ref)
        )

    def behavior_distance(self, ref_a: AccountRef, ref_b: AccountRef) -> float:
        """Euclidean distance between two accounts' behavior summaries."""
        va = np.nan_to_num(self.account_summary(ref_a), nan=0.0)
        vb = np.nan_to_num(self.account_summary(ref_b), nan=0.0)
        return float(np.linalg.norm(va - vb))

    def stats(self) -> ServiceStats:
        """Snapshot of the service counters."""
        return ServiceStats(
            queries=self._queries,
            pairs_scored=self._pairs_scored,
            batches=self._batches,
            summary_cache_hits=self._summaries.hits,
            summary_cache_misses=self._summaries.misses,
            score_cache_entries=len(self._score_cache),
            score_cache_hits=self._score_cache.hits,
            score_cache_misses=self._score_cache.misses,
            workers=self.workers,
            parallel_queries=self._parallel_queries,
            shards_dispatched=self._shards_dispatched,
            worker_pairs=dict(self._worker_pairs),
            worker_shards=dict(self._worker_shards),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve(self, platform_a: str, platform_b: str) -> tuple[tuple[str, str], bool]:
        key = (platform_a, platform_b)
        if key in self._index:
            return key, False
        key = (platform_b, platform_a)
        if key in self._index:
            return key, True
        raise KeyError(f"platform pair ({platform_a}, {platform_b}) was not fitted")

    def _cached_scores(self, key: tuple[str, str]) -> np.ndarray:
        """Candidate scores for one platform pair, via the bounded LRU.

        Goes through :meth:`_score` directly: the lazy index fill is not
        served workload and must not skew the workload counters (cache
        hit/miss counts are tracked separately in :class:`ServiceStats`).
        """
        return self._score_cache.get_or_compute(
            key, lambda: self._score(self._index[key].pairs, self.batch_size)
        )

    def _link(
        self, index: _PairIndex, row: int, scores: np.ndarray, flipped: bool
    ) -> ScoredLink:
        ref_a, ref_b = index.pairs[row]
        pair = (ref_b, ref_a) if flipped else (ref_a, ref_b)
        return ScoredLink(
            pair=pair,
            score=float(scores[row]),
            evidence=index.evidence[row],
            behavior_distance=self.behavior_distance(ref_a, ref_b),
        )
