"""The batch-scoring service: linkage queries without refitting.

:class:`LinkageService` wraps a *fitted* :class:`~repro.core.hydra.HydraLinker`
(constructed in memory or loaded from a :mod:`repro.persist` artifact) and
serves three query shapes:

* :meth:`LinkageService.score_pairs` — decision values for arbitrary pair
  batches, featurized in fixed-size batches so memory stays bounded while
  each kernel evaluation is vectorized;
* :meth:`LinkageService.link_account` — resolve one account against every
  indexed candidate on the other platforms (the "who is this user
  elsewhere?" query);
* :meth:`LinkageService.top_k` — the strongest candidate links of a platform
  pair.

Candidate lookups go through a per-platform inverted index built once at
construction; per-platform-pair candidate scores are computed lazily on
first touch and memoized in a bounded :class:`LruCache`, as are per-account
behavior summaries.  :meth:`LinkageService.stats` exposes the running
counters (queries, pairs scored, cache hit/miss rates) for capacity
monitoring.  Featurization inside :meth:`LinkageService.score_pairs` runs on
the pipeline's batch engine (see :mod:`repro.features.batch`), so each
fixed-size batch is scored array-at-a-time.

Construct the service with ``workers=N`` to shard scoring across a process
pool (:mod:`repro.parallel`): pair batches are partitioned by a deterministic
shard plan, each worker process holds its own copy of the fitted linker —
loaded from the persisted artifact when the linker knows its
``artifact_path_``, otherwise shipped by the pool machinery — and shard
results merge in shard order, bit-identical to the serial path.  The pool
spins up lazily on the first sharded call and is released by
:meth:`LinkageService.close` (the service is also a context manager).
Per-worker shard and pair counts roll up into :class:`ServiceStats`.

The service is *mutable* at serve time: :meth:`LinkageService.add_accounts`
absorbs accounts that arrived after the fit (frozen models, O(new)
delta-packing, live incremental blocking — see :mod:`repro.serving.registry`
and :mod:`repro.index`), and :meth:`LinkageService.remove_account` withdraws
one.  Every mutation bumps the registry epoch, which invalidates the
affected per-platform-pair score caches and retires any worker pool built
against the previous state; shard tasks carry the epoch so a stale worker
fails loudly rather than serving pre-mutation scores.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.approx import ApproxConfig, prune_rows
from repro.core.hydra import HydraLinker
from repro.features.pipeline import AccountRef
from repro.parallel import ShardPlan, ShardedExecutor
from repro.parallel import worker as _worker
from repro.utils.ranking import top_k_indices

__all__ = [
    "IngestReport",
    "LinkageService",
    "LruCache",
    "ScoredLink",
    "ServiceStats",
]

Pair = tuple[AccountRef, AccountRef]


class LruCache:
    """A small least-recently-used cache with hit/miss counters.

    Thread-safe: every operation holds an internal re-entrant lock, so
    concurrent gateway reader threads cannot corrupt the recency order or
    the hit/miss counters.  ``compute`` runs *under* the lock — fills are
    single-flight per cache (one thread fills while the others wait and
    then hit), which is exactly what the memoized score arrays want; keep
    compute callbacks free of calls back into the same cache.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get_or_compute(self, key, compute):
        """Return the cached value for ``key``, computing and inserting on miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                value = compute()
                self._data[key] = value
                if len(self._data) > self.maxsize:
                    self._data.popitem(last=False)
                return value
            self.hits += 1
            self._data.move_to_end(key)
            return value

    def get_many(self, keys, compute_one) -> tuple[dict, int, int]:
        """Resolve several keys under **one** lock acquisition.

        Returns ``(values, hits, misses)``.  The batched form exists for
        response assembly (``link_account`` resolving every returned
        link's summaries at once): deduplicated keys, a single pass over
        the recency order, and one lock round-trip instead of one per
        link.  ``compute_one`` runs under the lock, like
        :meth:`get_or_compute`'s fill does.
        """
        values: dict = {}
        hits = misses = 0
        with self._lock:
            for key in keys:
                if key in values:
                    continue
                try:
                    value = self._data[key]
                except KeyError:
                    self.misses += 1
                    misses += 1
                    value = compute_one(key)
                    self._data[key] = value
                    if len(self._data) > self.maxsize:
                        self._data.popitem(last=False)
                else:
                    self.hits += 1
                    hits += 1
                    self._data.move_to_end(key)
                values[key] = value
        return values, hits, misses

    def invalidate(self, key) -> bool:
        """Drop one entry; True when something was actually cached."""
        with self._lock:
            try:
                del self._data[key]
            except KeyError:
                return False
            return True

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._data.clear()


@dataclass(frozen=True)
class ScoredLink:
    """One served candidate link: the pair, its decision value, and context."""

    pair: Pair
    score: float
    evidence: frozenset[str]
    behavior_distance: float


@dataclass(frozen=True)
class IngestReport:
    """What one :meth:`LinkageService.add_accounts` call changed.

    ``links`` holds the newly created candidate links (scored with the
    fitted model, strongest first) when scoring was requested;
    ``pairs_removed`` counts previously indexed pairs displaced by
    re-ranked candidate budgets.
    """

    refs: tuple[AccountRef, ...]
    epoch: int
    pairs_added: int
    pairs_removed: int
    links: tuple[ScoredLink, ...] = ()


@dataclass
class ServiceStats:
    """Running counters of one service instance.

    The sharded-execution block: ``parallel_queries`` counts scoring calls
    that went through the process pool, ``shards_dispatched`` the shards
    they fanned out, and ``worker_pairs`` / ``worker_shards`` break pairs
    and shards down per worker process (keyed ``"pid:<n>"``) so capacity
    monitoring can spot skew.

    The ingestion block: ``registry_epoch`` is the served registry's
    mutation epoch (0 = pristine fit state), and ``accounts_ingested`` /
    ``accounts_removed`` / ``ingest_batches`` count this service's online
    mutations.

    The response-assembly block: ``distance_batches`` counts batched
    behavior-distance lookups (one per served response needing them) and
    ``summary_batch_hits`` how many of those batched summary fetches were
    already cached — the measure of what batching saves over per-link
    lookups.

    The approximate-scoring block: ``approx_queries`` counts ``top_k`` /
    ``link_account`` calls served with ``exact=False`` and
    ``approx_pairs_scored`` the pruned candidates their fast-path kernel
    ranked (compare against ``pairs_scored`` × the candidate-set size to
    see the pruning win).
    """

    queries: int = 0
    pairs_scored: int = 0
    batches: int = 0
    summary_cache_hits: int = 0
    summary_cache_misses: int = 0
    score_cache_entries: int = 0
    score_cache_hits: int = 0
    score_cache_misses: int = 0
    workers: int = 1
    parallel_queries: int = 0
    shards_dispatched: int = 0
    worker_pairs: dict[str, int] = field(default_factory=dict)
    worker_shards: dict[str, int] = field(default_factory=dict)
    registry_epoch: int = 0
    accounts_ingested: int = 0
    accounts_removed: int = 0
    ingest_batches: int = 0
    distance_batches: int = 0
    summary_batch_hits: int = 0
    approx_queries: int = 0
    approx_pairs_scored: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _PairIndex:
    """Inverted candidate index for one fitted platform pair."""

    pairs: list[Pair]
    evidence: list[frozenset[str]]
    by_left: dict[str, list[int]] = field(default_factory=dict)
    by_right: dict[str, list[int]] = field(default_factory=dict)


class LinkageService:
    """Serve linkage queries from a fitted linker — no refitting, ever.

    Parameters
    ----------
    linker:
        A fitted :class:`~repro.core.hydra.HydraLinker`.
    batch_size:
        Featurization batch size for :meth:`score_pairs`.
    summary_cache_size:
        Capacity of the per-account behavior-summary LRU.
    score_cache_size:
        Capacity of the per-platform-pair candidate-score LRU; keeps the
        memoized score arrays bounded when a service handles many platform
        pairs.
    workers:
        Scoring process count.  ``1`` (default) scores inline; ``N > 1``
        shards every scoring call across a lazily-started process pool,
        merging results bit-identically to the inline path.  Call
        :meth:`close` (or use the service as a context manager) to release
        the pool.
    shard_size:
        Pins the deterministic shard length; default lets the plan derive
        it from the workload and worker count.
    wal:
        An open :class:`~repro.wal.log.WriteAheadLog`.  When attached,
        every mutation (:meth:`add_accounts` / :meth:`remove_account`)
        appends its record *before* applying — write-ahead discipline —
        so a crash at any instant is recoverable from the base artifact
        plus the log (:func:`repro.wal.recover`).  :meth:`close`
        flushes and closes it.
    approx:
        Defaults for the approximate scoring path
        (:class:`~repro.approx.ApproxConfig`): the prefilter budget when
        a ``top_k(..., exact=False)`` caller does not pass one, the
        landmark count, and the rescore window.  The approximate path is
        **opt-in per call** — construction never changes exact behavior.
    """

    def __init__(
        self,
        linker: HydraLinker,
        *,
        batch_size: int = 256,
        summary_cache_size: int = 4096,
        score_cache_size: int = 64,
        workers: int = 1,
        shard_size: int | None = None,
        wal=None,
        approx: ApproxConfig | None = None,
    ):
        if linker.model_ is None or linker._filler is None:
            raise RuntimeError("linker is not fitted; fit() or load() first")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.linker = linker
        self.batch_size = batch_size
        self.workers = workers
        self.shard_size = shard_size
        self._wal = wal
        self._executor: ShardedExecutor | None = None
        self._executor_epoch: int | None = None
        self._registry = None  # lazy ServingRegistry, built on first mutation
        # workload counters and the pool handle are touched by every reader;
        # the gateway runs readers on several threads, so both get a lock
        # (mutations — add/remove — additionally require the gateway's
        # writer fence: reads during a mutation are the *caller's* race)
        self._stats_lock = threading.Lock()
        self._pool_lock = threading.RLock()
        self._summaries = LruCache(summary_cache_size)
        self._score_cache = LruCache(score_cache_size)
        self._queries = 0
        self._pairs_scored = 0
        self._batches = 0
        self._parallel_queries = 0
        self._shards_dispatched = 0
        self._worker_pairs: Counter = Counter()
        self._worker_shards: Counter = Counter()
        self._accounts_ingested = 0
        self._accounts_removed = 0
        self._ingest_batches = 0
        self.approx = approx if approx is not None else ApproxConfig()
        self._distance_batches = 0
        self._summary_batch_hits = 0
        self._approx_queries = 0
        self._approx_pairs_scored = 0

        self._index: dict[tuple[str, str], _PairIndex] = {}
        for key in linker.candidates_:
            self._reindex_key(key)

    def _reindex_key(self, key: tuple[str, str]) -> None:
        """(Re)build the inverted candidate index for one platform pair."""
        cand = self.linker.candidates_[key]
        index = _PairIndex(pairs=list(cand.pairs), evidence=list(cand.evidence))
        for row, (ref_a, ref_b) in enumerate(cand.pairs):
            index.by_left.setdefault(ref_a[1], []).append(row)
            index.by_right.setdefault(ref_b[1], []).append(row)
        self._index[key] = index

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(cls, path, **kwargs) -> "LinkageService":
        """Load a :mod:`repro.persist` artifact and serve it."""
        return cls(HydraLinker.load(path), **kwargs)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def platform_pairs(self) -> list[tuple[str, str]]:
        """The platform pairs this service can answer for."""
        return sorted(self._index)

    def num_candidates(self) -> int:
        """Total indexed candidate pairs across all platform pairs."""
        return sum(len(index.pairs) for index in self._index.values())

    def candidate_pairs(self, key: tuple[str, str]) -> list[Pair]:
        """The indexed candidate pairs of one platform pair, in index order.

        Part of the serving interface the sharded router
        (:class:`repro.shard.ShardedLinkageService`) also implements; the
        gateway's ``/candidates`` endpoint goes through it rather than
        reaching into ``linker.candidates_``.
        """
        key = (key[0], key[1])
        if key not in self._index:
            raise KeyError(f"platform pair {key} was not fitted")
        return list(self._index[key].pairs)

    def score_pairs(
        self, pairs: list[Pair], *, batch_size: int | None = None
    ) -> np.ndarray:
        """Decision values for arbitrary pairs, featurized batch by batch."""
        with self._stats_lock:
            self._queries += 1
        if not pairs:
            return np.zeros(0)
        batch = batch_size if batch_size is not None else self.batch_size
        out = self._score(pairs, batch)
        with self._stats_lock:
            self._pairs_scored += len(pairs)
            self._batches += -(-len(pairs) // batch)  # ceil division
        return out

    def score_pairs_grouped(
        self, groups: list[list[Pair]], *, batch_size: int | None = None
    ) -> list[np.ndarray]:
        """Score several independent pair batches in one featurization sweep.

        The coalescing entry point for the gateway's micro-batcher
        (:mod:`repro.gateway.batcher`): concurrent ``score_pairs`` requests
        are concatenated and featurized array-at-a-time, amortizing the
        per-call featurization fixed costs, while each group's kernel
        decision runs with exactly the chunk composition a standalone
        :meth:`score_pairs` call would use — so every group's scores are
        **bit-identical** to scoring that group alone
        (:func:`repro.parallel.worker.score_grouped`).  Each group counts
        as one query.  Grouped calls always score inline; the gateway owns
        its own concurrency and per-group work is too fine to shard.
        """
        batch = batch_size if batch_size is not None else self.batch_size
        if batch < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch}")
        with self._stats_lock:
            self._queries += len(groups)
        total = sum(len(group) for group in groups)
        if total == 0:
            return [np.zeros(0) for _ in groups]
        out = _worker.score_grouped(self.linker, groups, batch)
        with self._stats_lock:
            self._pairs_scored += total
            self._batches += -(-total // batch)  # ceil division
        return out

    def _score(self, pairs: list[Pair], batch: int) -> np.ndarray:
        """Batched scoring through the linker's own pipeline; counters stay
        untouched so internal cache fills don't masquerade as workload
        (sharding bookkeeping — shard/worker attribution — is recorded, as
        it describes execution, not workload)."""
        if batch < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch}")
        plan = self._plan(len(pairs), batch)
        if plan is not None:
            return self._score_sharded(pairs, batch, plan)
        return _worker.score_chunked(self.linker, pairs, batch)

    def _plan(self, num_pairs: int, batch: int) -> ShardPlan | None:
        """The shard plan for this workload, or None for the inline path.

        Shard lengths are aligned **up** to a multiple of the featurization
        batch size: featurized rows are batch-invariant, but the kernel
        Gram products inside ``decision_function`` are evaluated per batch,
        and BLAS accumulates a product's entries in a shape-dependent
        order.  Aligned shards present workers with exactly the chunk
        compositions the serial loop would have used, which is what makes
        ``workers=N`` bit-identical to ``workers=1`` (a shard size that is
        not a multiple of the batch would still be correct to ~1e-9, like
        re-batching is, but not bit-for-bit).
        """
        if self.workers == 1 or num_pairs < 2:
            return None
        if self.shard_size is not None:
            shard_size = -(-self.shard_size // batch) * batch
        else:
            draft = ShardPlan.build(num_pairs, workers=self.workers)
            shard_size = -(-draft.shard_size // batch) * batch
        plan = ShardPlan.build(
            num_pairs, workers=self.workers, shard_size=shard_size
        )
        return None if plan.is_serial else plan

    def _score_sharded(
        self, pairs: list[Pair], batch: int, plan: ShardPlan
    ) -> np.ndarray:
        executor = self._ensure_executor()
        epoch = self.registry_epoch
        results = executor.run(
            _worker.score_shard,
            [(shard.index, shard.take(pairs), batch, epoch) for shard in plan],
        )
        with self._stats_lock:
            self._parallel_queries += 1
            self._shards_dispatched += plan.num_shards
            for result in results:
                self._worker_pairs[result.worker] += result.num_items
                self._worker_shards[result.worker] += 1
        return plan.merge([result.values for result in results])

    def _ensure_executor(self) -> ShardedExecutor:
        """The lazily-started scoring pool, pinned to the registry epoch.

        Workers are initialized once per process: from the persisted
        artifact when the linker knows where it lives on disk (each worker
        pays one load, nothing is re-pickled), otherwise the fitted linker
        itself is shipped through the pool machinery.  A registry mutation
        (account ingestion/removal) bumps the epoch; a pool built before the
        mutation is torn down and rebuilt so every sharded call sees one
        consistent snapshot of the mutated state — mutated linkers always
        ship by object (their ``artifact_path_`` is cleared on mutation).
        """
        with self._pool_lock:
            epoch = self.registry_epoch
            if self._executor is not None and self._executor_epoch != epoch:
                self._close_pool()
            if self._executor is None:
                from repro.persist import artifact_exists

                path = getattr(self.linker, "artifact_path_", None)
                if path is not None and artifact_exists(path):
                    initializer = _worker.init_scorer_from_artifact
                    initargs: tuple = (str(path),)
                else:
                    initializer = _worker.init_scorer_from_linker
                    initargs = (self.linker,)
                self._executor = ShardedExecutor(
                    workers=self.workers, initializer=initializer,
                    initargs=initargs,
                )
                self._executor_epoch = epoch
            return self._executor

    def _close_pool(self) -> None:
        """Release the scoring pool (also used to retire a stale-epoch pool)."""
        with self._pool_lock:
            if self._executor is not None:
                self._executor.close()
                self._executor = None

    def close(self) -> None:
        """Release the scoring pool and flush/close the attached WAL."""
        self._close_pool()
        self.close_wal()

    def __enter__(self) -> "LinkageService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # online ingestion
    # ------------------------------------------------------------------
    @property
    def registry_epoch(self) -> int:
        """Mutation epoch of the served registry (0 = pristine fit state)."""
        return getattr(self.linker, "ingest_epoch_", 0)

    @property
    def world(self):
        """The served world — register arriving accounts here first."""
        return self.linker.world

    def _ensure_registry(self):
        if self._registry is None:
            from repro.serving.registry import ServingRegistry

            self._registry = ServingRegistry(self.linker)
        return self._registry

    # ------------------------------------------------------------------
    # write-ahead log plumbing
    # ------------------------------------------------------------------
    @property
    def wal(self):
        """The attached :class:`~repro.wal.log.WriteAheadLog`, or None."""
        return self._wal

    def attach_wal(self, wal) -> None:
        """Attach an open log; mutations append to it before applying."""
        if self._wal is not None and wal is not self._wal:
            raise RuntimeError("service already has a write-ahead log")
        self._wal = wal

    def detach_wal(self):
        """Release and return the attached log without closing it.

        The blue/green swap hands the log from the outgoing service to
        the incoming one this way, so logged history stays continuous
        across the cutover.
        """
        wal, self._wal = self._wal, None
        return wal

    def close_wal(self) -> None:
        """Flush and close the attached log (idempotent, keeps it attached)."""
        if self._wal is not None:
            self._wal.close()

    def _wal_append(self, op: str, refs):
        """Write-ahead append of one mutation; returns the record (or None).

        The record carries the post-mutation epoch and, for ingests, the
        accounts' full world state captured *now* — the log must never
        depend on the (about to crash?) process's memory.
        """
        if self._wal is None:
            return None
        from repro.wal.log import WalRecord
        from repro.wal.payload import capture_payload

        refs = tuple(tuple(ref) for ref in refs)
        payloads = None
        if op == "ingest":
            payloads = tuple(capture_payload(self.world, ref) for ref in refs)
        record = WalRecord(
            op=op, epoch=self.registry_epoch + 1, refs=refs,
            payloads=payloads, ts=time.time(),
        )
        self._wal.append(record)
        return record

    def _wal_abort(self, record) -> None:
        """Cancel a write-ahead record whose apply step failed.

        Replay must skip the mutation exactly like the live service did;
        the abort append itself is best-effort — the apply failure that
        brought us here is the error that must surface.
        """
        if record is None or self._wal is None:
            return
        from repro.wal.log import WalRecord

        try:
            self._wal.append(
                WalRecord(op="abort", epoch=record.epoch, refs=record.refs,
                          ts=time.time())
            )
        except Exception:
            pass

    def _affected_keys(self, platforms: set[str]) -> list[tuple[str, str]]:
        return [
            key for key in self._index
            if key[0] in platforms or key[1] in platforms
        ]

    def add_accounts(
        self, refs: list[AccountRef], *, score: bool = True
    ) -> IngestReport:
        """Absorb new accounts into the running service — no refit.

        The accounts must already exist in the linker's world (register them
        with :meth:`~repro.socialnet.platform.PlatformData.ingest_account`
        first).  Each account is featurized with the frozen fit-time models
        and delta-packed in O(new); it is blocked against the live candidate
        indexes of every fitted platform pair it participates in, and the
        touched candidate groups are re-ranked under the per-account budget.
        Score caches for the mutated platform pairs invalidate via the
        registry epoch, and a sharded scoring pool built before the mutation
        is replaced so ``workers > 1`` serves a consistent snapshot.

        With ``score=True`` the newly created candidate pairs are scored
        immediately and returned (strongest first) on the report.
        """
        refs = list(refs)
        if not refs:
            return IngestReport(
                refs=(), epoch=self.registry_epoch, pairs_added=0,
                pairs_removed=0,
            )
        record = self._wal_append("ingest", refs)
        added: list[Pair] = []
        removed = 0
        try:
            registry = self._ensure_registry()
            affected = self._affected_keys({ref[0] for ref in refs})
            for key in affected:
                # the live index must bootstrap from the pre-mutation store
                registry.ensure_index(key)
            self.linker.ingest_accounts(refs)
            for key in affected:
                delta = registry.apply_arrivals(key, refs)
                self._reindex_key(key)
                self._score_cache.invalidate(key)
                added.extend(delta.added)
                removed += len(delta.removed)
        except BaseException:
            self._wal_abort(record)
            raise
        with self._stats_lock:
            self._accounts_ingested += len(refs)
            self._ingest_batches += 1
        links: tuple[ScoredLink, ...] = ()
        if score and added:
            links = tuple(
                sorted(
                    self._links_for(added), key=lambda link: -link.score
                )
            )
        return IngestReport(
            refs=tuple(refs),
            epoch=self.registry_epoch,
            pairs_added=len(added),
            pairs_removed=removed,
            links=links,
        )

    def remove_account(self, ref: AccountRef) -> int:
        """Withdraw one account from serving; returns the pairs removed.

        The account disappears from the packed store and from every
        candidate index; groups that referenced it are re-ranked, so
        candidates displaced past the budget by its arrival can resurface
        (the count returned is of removed pairs only — re-ranked groups may
        simultaneously *gain* pairs).  The underlying world and the fitted
        model are untouched.
        """
        if ref not in self.linker.pipeline.packed_store.row_of:
            raise KeyError(f"{ref} is not served")
        record = self._wal_append("remove", (ref,))
        try:
            registry = self._ensure_registry()
            affected = self._affected_keys({ref[0]})
            for key in affected:
                registry.ensure_index(key)
            dropped = 0
            for key in affected:
                delta = registry.apply_removal(key, ref)
                dropped += len(delta.removed)
            self.linker.remove_accounts([ref])
            for key in affected:
                self._reindex_key(key)
                self._score_cache.invalidate(key)
            self._summaries.invalidate(ref)
        except BaseException:
            self._wal_abort(record)
            raise
        with self._stats_lock:
            self._accounts_removed += 1
        return dropped

    def _links_for(self, pairs: list[Pair]) -> list[ScoredLink]:
        """Scored links (with evidence) for freshly indexed pairs."""
        by_key: dict[tuple[str, str], list[Pair]] = {}
        for pair in pairs:
            by_key.setdefault((pair[0][0], pair[1][0]), []).append(pair)
        links: list[ScoredLink] = []
        for key, key_pairs in by_key.items():
            cand = self.linker.candidates_[key]
            row_of = cand.pair_index()
            scores = self._score(key_pairs, self.batch_size)
            distances = self.behavior_distances(key_pairs)
            for pair, score, distance in zip(key_pairs, scores, distances):
                links.append(
                    ScoredLink(
                        pair=pair,
                        score=float(score),
                        evidence=cand.evidence[row_of[pair]],
                        behavior_distance=distance,
                    )
                )
        return links

    def top_k(
        self,
        platform_a: str,
        platform_b: str,
        k: int = 10,
        *,
        exact: bool = True,
        budget: int | None = None,
    ) -> list[ScoredLink]:
        """The ``k`` strongest candidate links for one platform pair.

        Either orientation is accepted; returned pairs follow the requested
        orientation.

        With ``exact=False`` the ranking goes through the approximate path
        (:mod:`repro.approx`): only the top-``budget`` blocking-rule
        survivors are scored, through the float32 landmark fast scorer,
        and the resulting short list is rescored exactly.  Returned
        *scores* are always exact bytes — only the cutoff (which pairs
        make the list) is approximate.  ``budget=None`` uses the
        service-level :class:`~repro.approx.ApproxConfig` default.
        ``exact=True`` (the default) is byte-identical to exhaustive
        scoring and is never affected by the approximate machinery.
        """
        with self._stats_lock:
            self._queries += 1
        key, flipped = self._resolve(platform_a, platform_b)
        if not exact:
            items, scores = self._approx_top_k(key, k, budget, flipped)
            return self._scored_links(items, scores)
        scores = self._cached_scores(key)
        order = top_k_indices(scores, max(k, 0))
        items = [(key, int(row), flipped) for row in order]
        return self._scored_links(items, scores[order])

    def link_account(
        self,
        platform: str,
        account_id: str,
        *,
        other_platform: str | None = None,
        top: int = 5,
        exact: bool = True,
        budget: int | None = None,
    ) -> list[ScoredLink]:
        """Resolve one account against its indexed candidates.

        Searches every fitted platform pair that involves ``platform``
        (restricted to ``other_platform`` when given) and returns the
        strongest ``top`` links, oriented with the queried account first.

        With ``exact=False`` each platform pair prunes the account's
        candidate rows to the index's top-``budget`` survivors and the
        union is ranked through the approximate fast path with exact
        rescoring of the final list — same contract as :meth:`top_k`:
        approximate cutoff, exact returned scores.
        """
        with self._stats_lock:
            self._queries += 1
        scored: list[tuple[tuple[tuple[str, str], int, bool], float]] = []
        candidates: list[tuple[tuple[str, str], int, bool]] = []
        for key, index in self._index.items():
            if key[0] == platform and (other_platform in (None, key[1])):
                rows, flipped = index.by_left.get(account_id, []), False
            elif key[1] == platform and (other_platform in (None, key[0])):
                rows, flipped = index.by_right.get(account_id, []), True
            else:
                continue
            if not exact:
                pruned = prune_rows(
                    index.evidence, index.pairs, self._budget(budget),
                    rows=rows,
                )
                candidates.extend((key, int(row), flipped) for row in pruned)
                continue
            scores = self._cached_scores(key)
            scored.extend(
                ((key, int(row), flipped), float(scores[row])) for row in rows
            )
        if not exact:
            items, approx_scores = self._approx_select(
                candidates, max(top, 0)
            )
            return self._scored_links(items, approx_scores)
        scored.sort(key=lambda entry: -entry[1])
        scored = scored[: max(top, 0)]
        return self._scored_links(
            [entry[0] for entry in scored], [entry[1] for entry in scored]
        )

    def account_summary(self, ref: AccountRef) -> np.ndarray:
        """Behavior summary of one account, via the bounded LRU cache."""
        return self._summaries.get_or_compute(
            ref, lambda: self.linker.pipeline.behavior_summary(ref)
        )

    def behavior_distance(self, ref_a: AccountRef, ref_b: AccountRef) -> float:
        """Euclidean distance between two accounts' behavior summaries."""
        va = np.nan_to_num(self.account_summary(ref_a), nan=0.0)
        vb = np.nan_to_num(self.account_summary(ref_b), nan=0.0)
        return float(np.linalg.norm(va - vb))

    def behavior_distances(self, pairs: list[Pair]) -> list[float]:
        """Behavior distances for many pairs with one batched cache pass.

        The accounts' summaries are deduplicated and fetched through a
        single :meth:`LruCache.get_many` call — one lock acquisition per
        response instead of two per link — and the batch's cache hits are
        recorded on :class:`ServiceStats` (``distance_batches`` /
        ``summary_batch_hits``).  Values are identical to calling
        :meth:`behavior_distance` per pair.
        """
        if not pairs:
            return []
        refs: list[AccountRef] = []
        seen: set[AccountRef] = set()
        for ref_a, ref_b in pairs:
            for ref in (ref_a, ref_b):
                if ref not in seen:
                    seen.add(ref)
                    refs.append(ref)
        summaries, hits, _ = self._summaries.get_many(
            refs, lambda ref: self.linker.pipeline.behavior_summary(ref)
        )
        with self._stats_lock:
            self._distance_batches += 1
            self._summary_batch_hits += hits
        out: list[float] = []
        for ref_a, ref_b in pairs:
            va = np.nan_to_num(summaries[ref_a], nan=0.0)
            vb = np.nan_to_num(summaries[ref_b], nan=0.0)
            out.append(float(np.linalg.norm(va - vb)))
        return out

    def stats(self) -> ServiceStats:
        """Snapshot of the service counters."""
        # cache numbers are gathered before _stats_lock: a cache fill holds
        # its cache lock and then takes _stats_lock (sharded bookkeeping),
        # so taking the cache lock while holding _stats_lock would invert
        # the order and deadlock
        summary_hits, summary_misses = (
            self._summaries.hits, self._summaries.misses,
        )
        score_entries = len(self._score_cache)
        score_hits, score_misses = (
            self._score_cache.hits, self._score_cache.misses,
        )
        with self._stats_lock:
            return ServiceStats(
                queries=self._queries,
                pairs_scored=self._pairs_scored,
                batches=self._batches,
                summary_cache_hits=summary_hits,
                summary_cache_misses=summary_misses,
                score_cache_entries=score_entries,
                score_cache_hits=score_hits,
                score_cache_misses=score_misses,
                workers=self.workers,
                parallel_queries=self._parallel_queries,
                shards_dispatched=self._shards_dispatched,
                worker_pairs=dict(self._worker_pairs),
                worker_shards=dict(self._worker_shards),
                registry_epoch=self.registry_epoch,
                accounts_ingested=self._accounts_ingested,
                accounts_removed=self._accounts_removed,
                ingest_batches=self._ingest_batches,
                distance_batches=self._distance_batches,
                summary_batch_hits=self._summary_batch_hits,
                approx_queries=self._approx_queries,
                approx_pairs_scored=self._approx_pairs_scored,
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve(self, platform_a: str, platform_b: str) -> tuple[tuple[str, str], bool]:
        key = (platform_a, platform_b)
        if key in self._index:
            return key, False
        key = (platform_b, platform_a)
        if key in self._index:
            return key, True
        raise KeyError(f"platform pair ({platform_a}, {platform_b}) was not fitted")

    def _cached_scores(self, key: tuple[str, str]) -> np.ndarray:
        """Candidate scores for one platform pair, via the bounded LRU.

        Goes through :meth:`_score` directly: the lazy index fill is not
        served workload and must not skew the workload counters (cache
        hit/miss counts are tracked separately in :class:`ServiceStats`).
        """
        return self._score_cache.get_or_compute(
            key, lambda: self._score(self._index[key].pairs, self.batch_size)
        )

    # ------------------------------------------------------------------
    # approximate fast path (exact=False)
    # ------------------------------------------------------------------
    def _budget(self, budget: int | None) -> int:
        """The effective prefilter budget for one approximate query."""
        budget = self.approx.budget if budget is None else int(budget)
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        return budget

    def _fast_scorer(self):
        """The linker's landmark fast scorer (built lazily, deterministic)."""
        return self.linker.ensure_fast_scorer()

    def _featurize_chunked(self, pairs: list[Pair]) -> np.ndarray:
        """Exact float64 feature rows, chunked like the serial score loop.

        Featurized rows are row-independent (bit-identical regardless of
        co-batched pairs), so these rows can be sliced and rescored in any
        subset without breaking the exactness contract.
        """
        blocks = [
            self.linker.featurize_pairs(pairs[lo : lo + self.batch_size])
            for lo in range(0, len(pairs), self.batch_size)
        ]
        return np.vstack(blocks)

    def _exact_rescore(self, x: np.ndarray) -> np.ndarray:
        """Exact float64 decision values for featurized rows.

        Chunked at ``batch_size`` — the same chunk compositions
        :func:`repro.parallel.worker.score_chunked` presents — so rescoring
        the final ``k`` rows yields bytes identical to
        ``score_pairs(final_pairs)``.
        """
        out = np.empty(x.shape[0])
        for lo in range(0, x.shape[0], self.batch_size):
            out[lo : lo + self.batch_size] = self.linker.score_features(
                x[lo : lo + self.batch_size]
            )
        return out

    def _approx_top_k(
        self,
        key: tuple[str, str],
        k: int,
        budget: int | None,
        flipped: bool,
    ) -> tuple[list[tuple[tuple[str, str], int, bool]], np.ndarray]:
        """Prune one platform pair's candidates and rank approximately."""
        index = self._index[key]
        rows = prune_rows(
            index.evidence, index.pairs, self._budget(budget)
        )
        items = [(key, int(row), flipped) for row in rows]
        return self._approx_select(items, max(k, 0))

    def _approx_select(
        self,
        items: list[tuple[tuple[str, str], int, bool]],
        k: int,
    ) -> tuple[list[tuple[tuple[str, str], int, bool]], np.ndarray]:
        """The two-layer approximate ranking over pruned candidates.

        Layer 2 of the fast path: featurize the pruned pool once (exact
        float64 rows), rank it with the float32 landmark scorer, exactly
        rescore a ``rescore_multiple * k`` short list to place the cutoff,
        then rescore the **final** ``k`` rows once more so the returned
        bytes match ``score_pairs`` on exactly those pairs (kernel chunks
        are shape-sensitive, so the short-list rescore cannot be reused
        for the returned values).  Never touches the exact score cache.
        """
        if not items or k == 0:
            return [], np.zeros(0)
        pairs = [self._index[key].pairs[row] for key, row, _ in items]
        x = self._featurize_chunked(pairs)
        fast = self._fast_scorer().score(x)
        shortlist = top_k_indices(
            fast, min(len(items), k * self.approx.rescore_multiple)
        )
        mid = self._exact_rescore(x[shortlist])
        keep = top_k_indices(mid, k)
        final = shortlist[keep]
        final_scores = self._exact_rescore(x[final])
        order = top_k_indices(final_scores, final_scores.shape[0])
        with self._stats_lock:
            self._approx_queries += 1
            self._approx_pairs_scored += len(items)
        chosen = [items[int(final[int(i)])] for i in order]
        return chosen, final_scores[order]

    def _scored_links(
        self,
        items: list[tuple[tuple[str, str], int, bool]],
        scores,
    ) -> list[ScoredLink]:
        """Assemble a response's links with one batched distance pass."""
        raw_pairs = [self._index[key].pairs[row] for key, row, _ in items]
        distances = self.behavior_distances(raw_pairs)
        links: list[ScoredLink] = []
        for (key, row, flipped), raw, score, distance in zip(
            items, raw_pairs, scores, distances
        ):
            ref_a, ref_b = raw
            pair = (ref_b, ref_a) if flipped else (ref_a, ref_b)
            links.append(
                ScoredLink(
                    pair=pair,
                    score=float(score),
                    evidence=self._index[key].evidence[row],
                    behavior_distance=distance,
                )
            )
        return links
