"""The mutable serving registry: live blocking indexes + candidate upkeep.

A fitted linker's candidate sets are born at fit time and, before online
ingestion existed, stayed frozen forever.  :class:`ServingRegistry` makes
them *live*: it lazily rebuilds each fitted platform pair's
:class:`~repro.index.pair.PairCandidateIndex` over the currently packed
accounts (a deterministic reconstruction of the fit-time index — signatures
of existing accounts never change), then feeds arrivals and removals through
the index's exact incremental maintenance and rewrites precisely the
candidate groups the mutation touched.

Group rewrites preserve the generator's semantics row for row: each dirty
left account's group is re-ranked through
:meth:`~repro.index.pair.PairCandidateIndex.ranked` (evidence count,
username similarity, id — with the per-account budget) and re-screened for
pre-matches, so the resulting candidate sets always equal what
:meth:`~repro.core.candidates.CandidateGenerator.generate` would produce
from scratch on the mutated world.  Unaffected rows keep their position;
rebuilt groups append in sorted order, which keeps mutation cost
proportional to the blast radius rather than the corpus.

The registry only maintains *blocking* state.  Epochs, caches, the packed
store and the executor snapshot are the service's and linker's business
(:meth:`repro.serving.LinkageService.add_accounts`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.candidates import AccountRef
from repro.index import BlockingSignature, PairCandidateIndex

__all__ = ["CandidateDelta", "ServingRegistry"]

Pair = tuple[AccountRef, AccountRef]
PairKey = tuple[str, str]


@dataclass(frozen=True)
class CandidateDelta:
    """One platform pair's candidate-set change from a mutation."""

    key: PairKey
    added: list[Pair] = field(default_factory=list)
    removed: list[Pair] = field(default_factory=list)


class ServingRegistry:
    """Keeps one fitted linker's blocking indexes live across mutations."""

    def __init__(self, linker):
        self.linker = linker
        self._indexes: dict[PairKey, PairCandidateIndex] = {}
        self._signatures: dict[AccountRef, BlockingSignature] = {}
        self._seeded_platforms: set[str] = set()

    # ------------------------------------------------------------------
    # signatures
    # ------------------------------------------------------------------
    def _signature(self, ref: AccountRef) -> BlockingSignature:
        sig = self._signatures.get(ref)
        if sig is None:
            platform = self.linker._world.platforms[ref[0]]
            sig = self.linker.candidate_generator.extractor.signature(
                platform, ref[1]
            )
            self._signatures[ref] = sig
        return sig

    # ------------------------------------------------------------------
    # index lifecycle
    # ------------------------------------------------------------------
    def ensure_index(self, key: PairKey) -> PairCandidateIndex:
        """The live index for ``key``, bulk-built on first use.

        The bulk build covers the accounts *currently packed* by the
        pipeline, so it must run before the packed store absorbs or drops
        the accounts a mutation is about: call this at the top of every
        mutation, while the store still describes the pre-mutation state.
        """
        index = self._indexes.get(key)
        if index is None:
            generator = self.linker.candidate_generator
            index = generator.make_pair_index(*key)
            # seed the signature memo once per platform from the generator's
            # bulk pass (cached from fit when the linker never crossed a
            # process boundary); the platform-wide extraction also covers
            # arriving accounts already registered in the world, so the
            # mutation that triggered this bootstrap pays no second
            # tokenization pass — and platforms seeded by an earlier
            # bootstrap are never re-tokenized wholesale
            for platform in key:
                if platform in self._seeded_platforms:
                    continue
                extracted = generator.platform_signatures(
                    self.linker._world, platform
                )
                for account_id, sig in extracted.items():
                    self._signatures.setdefault((platform, account_id), sig)
                self._seeded_platforms.add(platform)
            signatures: dict[str, dict[str, BlockingSignature]] = {
                key[0]: {}, key[1]: {},
            }
            for ref in self.linker.pipeline.packed_store.refs:
                if ref[0] in signatures:
                    signatures[ref[0]][ref[1]] = self._signature(ref)
            index.bulk_build(signatures[key[0]], signatures[key[1]])
            self._indexes[key] = index
        return index

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def apply_arrivals(
        self, key: PairKey, refs: list[AccountRef]
    ) -> CandidateDelta:
        """Index newly ingested accounts and rewrite the touched groups."""
        index = self._indexes[key]
        arrivals = []
        for ref in refs:
            if ref[0] == key[0]:
                arrivals.append(("a", ref[1], self._signature(ref)))
            elif ref[0] == key[1]:
                arrivals.append(("b", ref[1], self._signature(ref)))
        dirty = index.add_batch(arrivals)
        dirty_lefts = {account_id for side, account_id in dirty if side == "a"}
        return self._rewrite_groups(key, dirty_lefts, removed_lefts=set())

    def apply_removal(self, key: PairKey, ref: AccountRef) -> CandidateDelta:
        """Un-index a removed account and rewrite the touched groups."""
        index = self._indexes[key]
        side = index.side_of(ref[0])
        dirty = index.remove(side, ref[1])
        self._signatures.pop(ref, None)
        dirty_lefts = {account_id for s, account_id in dirty if s == "a"}
        removed_lefts = {ref[1]} if side == "a" else set()
        return self._rewrite_groups(key, dirty_lefts, removed_lefts)

    # ------------------------------------------------------------------
    def _rewrite_groups(
        self,
        key: PairKey,
        dirty_lefts: set[str],
        removed_lefts: set[str],
    ) -> CandidateDelta:
        """Replace the candidate groups of every dirty left account.

        Rows of untouched left accounts keep their order; dirty groups are
        re-ranked through the live index (budget, evidence, pre-matches all
        recomputed) and appended in sorted-account order.  The resulting set
        equals a from-scratch generation over the mutated world.  (The
        rescan and delta diff below are O(this platform pair's candidate
        rows) — cheap Python set/list passes; only the *expensive* work,
        blocking queries and group re-ranking, is confined to the blast
        radius.)
        """
        linker = self.linker
        cand = linker.candidates_[key]
        index = self._indexes[key]
        world = linker._world
        pa = world.platforms[key[0]]
        pb = world.platforms[key[1]]
        generator = linker.candidate_generator

        before = set(cand.pairs)
        drop = dirty_lefts | removed_lefts
        prematched_rows = set(cand.prematched)
        pairs: list[Pair] = []
        evidence: list[frozenset] = []
        prematched: list[int] = []
        for row, pair in enumerate(cand.pairs):
            if pair[0][1] in drop:
                continue
            if row in prematched_rows:
                prematched.append(len(pairs))
            pairs.append(pair)
            evidence.append(cand.evidence[row])
        for aid in sorted(dirty_lefts - removed_lefts):
            for bid, rules in index.ranked("a", aid):
                if generator._is_prematch(pa, aid, pb, bid, rules):
                    prematched.append(len(pairs))
                pairs.append(((key[0], aid), (key[1], bid)))
                evidence.append(rules)
        cand.assign(pairs, evidence, prematched)
        after = set(pairs)
        return CandidateDelta(
            key=key,
            added=[p for p in pairs if p not in before],
            removed=sorted(before - after),
        )
