"""Serving microbenchmarks: query throughput and ingestion throughput.

:func:`run_throughput_benchmark` drives
:meth:`~repro.serving.service.LinkageService.score_pairs` over a fixed pair
workload at several batch sizes and reports the best-of-``repeats``
throughput per batch size — the number that capacity planning for the
query path actually needs.  Used by the ``serve-bench`` CLI subcommand and
the ``benchmarks/test_serving_throughput.py`` suite.

:func:`run_ingest_benchmark` measures the *mutation* path instead: how many
accounts per second a fitted service absorbs through the incremental path
(:meth:`~repro.serving.service.LinkageService.add_accounts` — delta pack +
live index maintenance) versus the bulk alternatives (full re-pack +
candidate regeneration, and a complete refit).  :func:`holdout_split`
stages the scenario by holding accounts out of a generated world for later
replay.  Used by the ``ingest-bench`` CLI subcommand and
``benchmarks/test_ingest_throughput.py``.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.serving.service import LinkageService, Pair
from repro.socialnet.platform import SocialWorld, subset_world, transplant_account
from repro.utils.timing import LatencyRecorder

__all__ = [
    "BenchResult",
    "IngestBenchResult",
    "holdout_split",
    "ingest_table",
    "run_ingest_benchmark",
    "run_throughput_benchmark",
    "throughput_table",
]


@dataclass(frozen=True)
class BenchResult:
    """Throughput measurement for one batch size.

    ``latency`` holds every timed pass (a
    :class:`~repro.utils.timing.LatencyRecorder`), so reporting can quote
    percentiles as well as the best pass; ``best_seconds`` ==
    ``latency.min_seconds``.
    """

    batch_size: int
    num_pairs: int
    repeats: int
    best_seconds: float
    pairs_per_sec: float
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)


def run_throughput_benchmark(
    service: LinkageService,
    *,
    pairs: list[Pair] | None = None,
    batch_sizes: tuple[int, ...] = (16, 256),
    repeats: int = 3,
    max_pairs: int | None = None,
) -> list[BenchResult]:
    """Measure batched scoring throughput at each batch size.

    ``pairs`` defaults to every indexed candidate pair; ``max_pairs``
    truncates the workload for smoke runs.  Each batch size is timed
    ``repeats`` times end-to-end (featurize + missing-fill + kernel
    scoring); the best pass counts, minimizing scheduler noise.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if pairs is None:
        pairs = [
            pair
            for key in service.platform_pairs()
            for pair in service.linker.candidates_[key].pairs
        ]
    if max_pairs is not None:
        pairs = pairs[:max_pairs]
    if not pairs:
        raise ValueError("no pairs to benchmark")

    results: list[BenchResult] = []
    for batch_size in batch_sizes:
        recorder = LatencyRecorder()
        for _ in range(repeats):
            start = time.perf_counter()
            service.score_pairs(pairs, batch_size=batch_size)
            recorder.record(time.perf_counter() - start)
        best = recorder.min_seconds
        results.append(
            BenchResult(
                batch_size=batch_size,
                num_pairs=len(pairs),
                repeats=repeats,
                best_seconds=best,
                pairs_per_sec=len(pairs) / best if best > 0 else float("inf"),
                latency=recorder,
            )
        )
    return results


def throughput_table(results: list[BenchResult]) -> list[list]:
    """Rows for tabular reporting: batch size, pairs, seconds, pairs/sec,
    and the median pass (from the recorder) in milliseconds."""
    return [
        [r.batch_size, r.num_pairs, r.best_seconds, r.pairs_per_sec,
         r.latency.p50 * 1e3]
        for r in results
    ]


# ----------------------------------------------------------------------
# ingestion throughput
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IngestBenchResult:
    """Cost of absorbing the same account arrivals by one strategy.

    ``mode`` is ``"ingest"`` (incremental delta path), ``"repack"`` (bulk
    re-pack + candidate regeneration over all accounts) or ``"refit"``
    (complete model refit); ``accounts_per_sec`` normalizes by the number
    of *arriving* accounts so the strategies are directly comparable.
    """

    mode: str
    accounts: int
    seconds: float
    accounts_per_sec: float


def holdout_split(
    world: SocialWorld, per_platform: int
) -> tuple[SocialWorld, list[tuple[str, str]]]:
    """Stage an online-arrival scenario from a fully generated world.

    Returns ``(base_world, held_refs)``: the base world is the input minus
    ``per_platform`` held-out accounts per platform, and ``held_refs`` are
    the accounts to replay later with
    :func:`~repro.socialnet.platform.transplant_account`.  The owners of
    the globally earliest and latest behavior events are never held out, so
    the base world's fitted observation window is guaranteed to cover every
    held-out account's events (the frozen temporal grids cannot absorb
    events outside the window they were fitted on).
    """
    if per_platform < 1:
        raise ValueError(f"per_platform must be >= 1, got {per_platform}")
    extremes: dict[str, tuple[float, str, str]] = {}
    for name in world.platform_names():
        for event in world.platforms[name].events.iter_all():
            stamp = (event.timestamp, name, event.account_id)
            if "min" not in extremes or stamp[0] < extremes["min"][0]:
                extremes["min"] = stamp
            if "max" not in extremes or stamp[0] > extremes["max"][0]:
                extremes["max"] = stamp
    protected = {(v[1], v[2]) for v in extremes.values()}
    keep: dict[str, list[str]] = {}
    held_refs: list[tuple[str, str]] = []
    for name in world.platform_names():
        eligible = [
            account_id
            for account_id in world.platforms[name].account_ids()
            if (name, account_id) not in protected
        ]
        if per_platform >= len(eligible):
            raise ValueError(
                f"cannot hold out {per_platform} of {len(eligible)} eligible "
                f"accounts on {name!r}"
            )
        held = set(eligible[-per_platform:])
        keep[name] = [
            account_id
            for account_id in world.platforms[name].account_ids()
            if account_id not in held
        ]
        held_refs.extend((name, account_id) for account_id in sorted(held))
    return subset_world(world, keep), held_refs


def run_ingest_benchmark(
    world: SocialWorld,
    held_refs: list[tuple[str, str]],
    fit: Callable[[SocialWorld], object],
    *,
    base: SocialWorld | None = None,
    include_refit: bool = True,
) -> list[IngestBenchResult]:
    """Time absorbing ``held_refs`` by each strategy, on identical state.

    ``fit`` maps a world to a fitted linker.  The base world (minus the
    held-out accounts) is fitted once; independent pickled clones then
    replay the same arrivals and absorb them through (1) the incremental
    service path, (2) a bulk re-pack + candidate regeneration, and — when
    ``include_refit`` — (3) a complete refit on the grown world.  Each
    strategy is timed end to end over the whole arrival batch.  Pass the
    ``base`` world from :func:`holdout_split` to skip rebuilding it.
    """
    if not held_refs:
        raise ValueError("no held-out accounts to ingest")
    if base is None:
        held_ids: dict[str, set] = {}
        for platform, account_id in held_refs:
            held_ids.setdefault(platform, set()).add(account_id)
        keep = {
            name: [
                account_id
                for account_id in world.platforms[name].account_ids()
                if account_id not in held_ids.get(name, set())
            ]
            for name in world.platform_names()
        }
        base = subset_world(world, keep)
    fitted = fit(base)
    # two independent clones, each owning its own world copy, so the timed
    # strategies mutate identical but disjoint state
    blob = pickle.dumps(fitted)
    linker_ingest = pickle.loads(blob)
    linker_repack = pickle.loads(blob)

    def replay(linker) -> list[tuple[str, str]]:
        return [
            transplant_account(world, linker._world, platform, account_id)
            for platform, account_id in held_refs
        ]

    results: list[IngestBenchResult] = []
    n = len(held_refs)

    refs = replay(linker_ingest)
    service = LinkageService(linker_ingest)
    start = time.perf_counter()
    service.add_accounts(refs, score=False)
    seconds = time.perf_counter() - start
    results.append(
        IngestBenchResult("ingest", n, seconds, n / seconds if seconds else float("inf"))
    )

    replay(linker_repack)
    start = time.perf_counter()
    linker_repack.rebuild_serving_state()
    seconds = time.perf_counter() - start
    results.append(
        IngestBenchResult("repack", n, seconds, n / seconds if seconds else float("inf"))
    )

    if include_refit:
        grown = linker_repack._world
        start = time.perf_counter()
        fit(grown)
        seconds = time.perf_counter() - start
        results.append(
            IngestBenchResult(
                "refit", n, seconds, n / seconds if seconds else float("inf")
            )
        )
    return results


def ingest_table(results: list[IngestBenchResult]) -> list[list]:
    """Rows for tabular reporting: mode, accounts, seconds, accounts/sec."""
    return [
        [r.mode, r.accounts, r.seconds, r.accounts_per_sec] for r in results
    ]
