"""Serving throughput microbenchmark: batched scoring in pairs/sec.

:func:`run_throughput_benchmark` drives
:meth:`~repro.serving.service.LinkageService.score_pairs` over a fixed pair
workload at several batch sizes and reports the best-of-``repeats``
throughput per batch size — the number that capacity planning for the
query path actually needs.  Used by the ``serve-bench`` CLI subcommand and
the ``benchmarks/test_serving_throughput.py`` suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.serving.service import LinkageService, Pair

__all__ = ["BenchResult", "run_throughput_benchmark", "throughput_table"]


@dataclass(frozen=True)
class BenchResult:
    """Throughput measurement for one batch size."""

    batch_size: int
    num_pairs: int
    repeats: int
    best_seconds: float
    pairs_per_sec: float


def run_throughput_benchmark(
    service: LinkageService,
    *,
    pairs: list[Pair] | None = None,
    batch_sizes: tuple[int, ...] = (16, 256),
    repeats: int = 3,
    max_pairs: int | None = None,
) -> list[BenchResult]:
    """Measure batched scoring throughput at each batch size.

    ``pairs`` defaults to every indexed candidate pair; ``max_pairs``
    truncates the workload for smoke runs.  Each batch size is timed
    ``repeats`` times end-to-end (featurize + missing-fill + kernel
    scoring); the best pass counts, minimizing scheduler noise.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if pairs is None:
        pairs = [
            pair
            for key in service.platform_pairs()
            for pair in service.linker.candidates_[key].pairs
        ]
    if max_pairs is not None:
        pairs = pairs[:max_pairs]
    if not pairs:
        raise ValueError("no pairs to benchmark")

    results: list[BenchResult] = []
    for batch_size in batch_sizes:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            service.score_pairs(pairs, batch_size=batch_size)
            best = min(best, time.perf_counter() - start)
        results.append(
            BenchResult(
                batch_size=batch_size,
                num_pairs=len(pairs),
                repeats=repeats,
                best_seconds=best,
                pairs_per_sec=len(pairs) / best if best > 0 else float("inf"),
            )
        )
    return results


def throughput_table(results: list[BenchResult]) -> list[list]:
    """Rows for tabular reporting: batch size, pairs, seconds, pairs/sec."""
    return [
        [r.batch_size, r.num_pairs, r.best_seconds, r.pairs_per_sec]
        for r in results
    ]
