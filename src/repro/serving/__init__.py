"""Online query serving over fitted linkage artifacts.

:class:`LinkageService` loads a fitted linker (in memory or from a
:mod:`repro.persist` artifact) and answers linkage queries — batch pair
scoring, per-account candidate resolution, platform-pair top-k — against a
pre-built per-platform candidate index, without ever refitting.  The
:mod:`repro.serving.bench` microbenchmark measures the batched scoring
throughput in pairs/sec.
"""

from repro.serving.bench import BenchResult, run_throughput_benchmark, throughput_table
from repro.serving.service import LinkageService, LruCache, ScoredLink, ServiceStats

__all__ = [
    "BenchResult",
    "LinkageService",
    "LruCache",
    "ScoredLink",
    "ServiceStats",
    "run_throughput_benchmark",
    "throughput_table",
]
