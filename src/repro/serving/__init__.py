"""Online query serving over fitted linkage artifacts.

:class:`LinkageService` loads a fitted linker (in memory or from a
:mod:`repro.persist` artifact) and answers linkage queries — batch pair
scoring, per-account candidate resolution, platform-pair top-k — against a
pre-built per-platform candidate index, without ever refitting.  The
:mod:`repro.serving.bench` microbenchmark measures the batched scoring
throughput in pairs/sec.
"""

from repro.serving.bench import (
    BenchResult,
    IngestBenchResult,
    holdout_split,
    ingest_table,
    run_ingest_benchmark,
    run_throughput_benchmark,
    throughput_table,
)
from repro.serving.registry import CandidateDelta, ServingRegistry
from repro.serving.service import (
    IngestReport,
    LinkageService,
    LruCache,
    ScoredLink,
    ServiceStats,
)

__all__ = [
    "BenchResult",
    "CandidateDelta",
    "IngestBenchResult",
    "IngestReport",
    "holdout_split",
    "ingest_table",
    "run_ingest_benchmark",
    "LinkageService",
    "LruCache",
    "ScoredLink",
    "ServiceStats",
    "ServingRegistry",
    "run_throughput_benchmark",
    "throughput_table",
]
