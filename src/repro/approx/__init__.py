"""Approximate-first scoring: cut the pairs, then cut the flops.

Every speedup before this package did the *same* work faster (batch
kernels, process shards, request coalescing); this one does **less**
work, behind an explicit opt-in.  Two layers:

1. **Prune the pairs** (:mod:`repro.approx.prune`): the blocking rules
   that built a platform pair's candidate set are an ANN-style prefilter
   — candidates with more independent blocking evidence are
   overwhelmingly more likely to be true links, so ``top_k`` /
   ``link_account`` need only score the top-``budget`` blocking-rule
   survivors instead of the full candidate set.  The evidence rankings
   are maintained incrementally through ingest (the live
   :class:`~repro.index.PairCandidateIndex` rewrites them on every
   mutation), so the prefilter is always current.
2. **Cut the flops** (:mod:`repro.approx.kernel`): a
   :class:`~repro.approx.kernel.FastScorer` ranks the pruned set with
   float32 Gram blocks against ``L`` landmark rows — a Nyström
   compression of the fitted kernel expansion, selected at fit time and
   persisted in the artifact — at O(L·d) per pair instead of
   O(n_train·d).

The contract both layers obey: approximation only ever moves the
*ranking cutoff*.  The final short list is always rescored through the
exact float64 pipeline, so every score a caller receives is bit-identical
to what :meth:`~repro.serving.LinkageService.score_pairs` returns for the
same pairs, and ``exact=True`` (the default everywhere) bypasses this
package entirely.  The tolerance harness
(:mod:`repro.eval.approx_quality`) measures what the cutoff costs —
recall@k and NDCG@k against exhaustive scoring — and CI gates it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.approx.kernel import FastScorer
from repro.approx.prune import prune_rows

__all__ = ["ApproxConfig", "FastScorer", "prune_rows"]


@dataclass(frozen=True)
class ApproxConfig:
    """Knobs of the approximate scoring path.

    budget:
        How many blocking-rule survivors the prefilter keeps per query
        (per platform pair).  The recall@k curve against this knob is
        measured by :mod:`repro.eval.approx_quality` and committed by
        ``benchmarks/test_approx_scoring.py``.
    num_landmarks:
        Landmark count ``L`` of the Nyström fast-path kernel; the
        ranking pass costs O(L·d) per pair.
    rescore_multiple:
        The exact float64 rescore covers ``rescore_multiple × k``
        fast-ranked survivors (clamped to the budget), so a near-boundary
        misranking by the float32 pass can still be repaired exactly.
    seed:
        Landmark-selection seed.  Fixed by default so a fast scorer
        rebuilt from a model (old artifacts without persisted landmarks)
        reproduces the fit-time selection.
    ridge:
        Tikhonov jitter on the landmark Gram solve.
    """

    budget: int = 128
    num_landmarks: int = 64
    rescore_multiple: int = 4
    seed: int = 0
    ridge: float = 1e-6

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.num_landmarks < 1:
            raise ValueError(
                f"num_landmarks must be >= 1, got {self.num_landmarks}"
            )
        if self.rescore_multiple < 1:
            raise ValueError(
                f"rescore_multiple must be >= 1, got {self.rescore_multiple}"
            )
        if self.ridge < 0:
            raise ValueError(f"ridge must be >= 0, got {self.ridge}")
