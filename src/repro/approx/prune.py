"""Layer 1 of approximate scoring: prune candidates by blocking evidence.

The exact serving paths score *every* indexed candidate of a platform
pair.  The prefilter here keeps only the top-``budget`` rows ranked by
blocking-rule strength — the same ``(-evidence count, ascending pair id)``
ordering discipline :meth:`repro.index.PairCandidateIndex.ranked` applies
inside each per-account candidate group, lifted to a whole candidate
list.  A pair that matched on more independent blocking rules (username
bigrams, shared emails, shared media, rare words, location cells) carries
strictly more prior evidence of being a true link, so the survivors are
where the strong scores live; the recall@k cost of the cutoff is measured
by :mod:`repro.eval.approx_quality`.

The rankings stay correct under ingest for free: every mutation rewrites
the touched candidate groups through the live index (exactly equal to a
from-scratch rebuild — the property test in ``tests/test_index.py``
pins this), and the serving layers re-derive their evidence lists from
the mutated candidate sets.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence

__all__ = ["prune_rows"]


def prune_rows(
    evidence: Sequence[frozenset],
    pairs: Sequence,
    budget: int,
    rows: Iterable[int] | None = None,
) -> list[int]:
    """The top-``budget`` candidate rows by blocking-rule strength.

    ``evidence[row]`` is the set of blocking rules that proposed the
    candidate at ``row``; ``pairs[row]`` its account-ref pair, used as the
    deterministic tiebreak.  ``rows`` restricts the pool (one account's
    candidate rows, a shard's owned rows); default is every row.  Returns
    rows strongest-first.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    pool = range(len(evidence)) if rows is None else list(rows)
    return heapq.nsmallest(
        budget, pool, key=lambda row: (-len(evidence[row]), pairs[row])
    )
