"""The fast-path ranking kernel: float32 Gram blocks over Nyström landmarks.

The fitted decision function (Eqn 12) is a kernel expansion over every
training row::

    f(x) = K(x, X_train) @ alpha + bias            # O(n_train · d) per pair

:class:`FastScorer` compresses it onto ``L`` landmark rows.  With
``K_mm = K(landmarks, landmarks)`` and ``K_mn = K(landmarks, X_train)``,
the Nyström approximation ``K(x, X_train) ≈ K(x, M) K_mm⁻¹ K_mn`` folds
the training expansion into one weight vector::

    w = (K_mm + ridge·I)⁻¹ K_mn @ alpha            # solved once, at fit time
    f̂(x) = K₃₂(x, landmarks) @ w + bias           # O(L · d) per pair, float32

The landmark selection and solve run in float64 at fit time (see
:meth:`FastScorer.from_model`; :func:`repro.persist.save_linker` persists
the result in the artifact so a reload never reselects); only the
per-query Gram block is evaluated in float32.  For the linear kernel the
compression is exact up to float32 rounding — ``K(x, X) α = x · (Xᵀα)``
lies in the landmark span for any landmarks — while for RBF and
chi-square it is a genuine low-rank approximation, which is why every
caller rescores its short list through the exact float64 path before
returning scores.

NaN feature rows (the sharded router's down-shard markers) yield NaN fast
scores regardless of kernel, preserving the degraded-read contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FastScorer"]

#: npz keys under which a fast scorer's arrays persist inside artifacts.
ARRAY_KEYS = ("approx_landmarks", "approx_weights")


def _gram32(kernel: str, params: dict, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Float32 Gram block ``K(x, y)`` for the fast ranking pass.

    Mirrors :mod:`repro.core.kernels` but stays in float32 end to end;
    the exact float64 twins remain the source of truth for returned
    scores.
    """
    if kernel == "linear":
        return x @ y.T
    if kernel == "rbf":
        gamma = np.float32(params.get("gamma", 1.0))
        sq = (
            (x**2).sum(axis=1)[:, None]
            - np.float32(2.0) * (x @ y.T)
            + (y**2).sum(axis=1)[None, :]
        )
        return np.exp(-gamma * np.maximum(sq, np.float32(0.0)))
    if kernel == "chi_square":
        num = np.float32(2.0) * x[:, None, :] * y[None, :, :]
        den = x[:, None, :] + y[None, :, :]
        terms = np.where(
            den > 0, num / np.where(den > 0, den, np.float32(1.0)),
            np.float32(0.0),
        )
        return terms.sum(axis=2, dtype=np.float32)
    raise ValueError(
        f"unknown kernel {kernel!r}; options: linear, rbf, chi_square"
    )


@dataclass
class FastScorer:
    """A Nyström-compressed, float32 copy of one fitted decision function.

    Instances are plain arrays plus the kernel name — picklable (they ride
    inside linkers shipped to worker processes) and persistable (see
    :meth:`arrays` / :meth:`manifest_entry` and the ``approx`` section of
    :mod:`repro.persist`).
    """

    kernel: str
    kernel_params: dict
    landmarks: np.ndarray  # (L, d) float32
    weights: np.ndarray  # (L,) float32
    bias: float
    seed: int
    num_train: int

    @classmethod
    def from_model(
        cls,
        model,
        *,
        num_landmarks: int = 64,
        seed: int = 0,
        ridge: float = 1e-6,
    ) -> "FastScorer":
        """Select landmarks from a fitted model and solve the Nyström weights.

        ``model`` is a fitted :class:`~repro.core.moo.MultiObjectiveModel`
        (or the scoring head's reconstruction of one).  Selection is a
        seeded uniform draw without replacement over the training rows,
        sorted so the float64 solve sees a deterministic operand order;
        the same ``(model, num_landmarks, seed)`` always produces the same
        scorer bytes — which is what lets the sharded router rebuild a
        scorer from its head and agree bit-for-bit with the single-process
        service.
        """
        if model.x_train_ is None or model.alpha_ is None:
            raise ValueError("model is not fitted: missing dual expansion")
        x_train = np.asarray(model.x_train_, dtype=float)
        alpha = np.asarray(model.alpha_, dtype=float)
        n = x_train.shape[0]
        count = min(max(num_landmarks, 1), n)
        rng = np.random.default_rng(seed)
        indices = np.sort(rng.choice(n, size=count, replace=False))
        landmarks = x_train[indices]

        from repro.core.kernels import make_kernel

        kernel_fn = make_kernel(model.config.kernel, **model.config.kernel_params)
        k_mm = kernel_fn(landmarks, landmarks)
        k_mn = kernel_fn(landmarks, x_train)
        weights = np.linalg.solve(
            k_mm + ridge * np.eye(count), k_mn @ alpha
        )
        return cls(
            kernel=model.config.kernel,
            kernel_params=dict(model.config.kernel_params),
            landmarks=np.ascontiguousarray(landmarks, dtype=np.float32),
            weights=np.ascontiguousarray(weights, dtype=np.float32),
            bias=float(model.bias_),
            seed=int(seed),
            num_train=int(n),
        )

    @property
    def num_landmarks(self) -> int:
        return int(self.landmarks.shape[0])

    def score(self, x: np.ndarray) -> np.ndarray:
        """Approximate decision values, float32 end to end.

        Rows containing NaN (down-shard feature rows) score NaN for every
        kernel, so degraded filtering downstream behaves exactly as on the
        exact path.
        """
        x32 = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        out = _gram32(self.kernel, self.kernel_params, x32, self.landmarks)
        out = out @ self.weights + np.float32(self.bias)
        bad = np.isnan(x32).any(axis=1)
        if bad.any():
            out = out.copy() if not out.flags.writeable else out
            out[bad] = np.float32(np.nan)
        return out

    # ------------------------------------------------------------------
    # persistence (see repro.persist.artifact)
    # ------------------------------------------------------------------
    def arrays(self) -> dict[str, np.ndarray]:
        """The npz payload persisting this scorer inside an artifact."""
        return {
            "approx_landmarks": self.landmarks,
            "approx_weights": self.weights,
        }

    def manifest_entry(self) -> dict:
        """The JSON manifest section describing the persisted arrays."""
        return {
            "kernel": self.kernel,
            "kernel_params": dict(self.kernel_params),
            "bias": self.bias,
            "seed": self.seed,
            "num_landmarks": self.num_landmarks,
            "num_train": self.num_train,
        }

    @classmethod
    def from_persisted(cls, entry: dict, arrays) -> "FastScorer":
        """Rebuild from a manifest section plus the loaded npz arrays."""
        return cls(
            kernel=str(entry["kernel"]),
            kernel_params=dict(entry["kernel_params"]),
            landmarks=np.ascontiguousarray(
                arrays["approx_landmarks"], dtype=np.float32
            ),
            weights=np.ascontiguousarray(
                arrays["approx_weights"], dtype=np.float32
            ),
            bias=float(entry["bias"]),
            seed=int(entry["seed"]),
            num_train=int(entry["num_train"]),
        )
