"""Shared low-level utilities: RNG management, timing, validation helpers."""

from repro.utils.ranking import top_k_indices
from repro.utils.rng import RngFactory, as_rng
from repro.utils.timing import LatencyRecorder, Stopwatch, timed
from repro.utils.validation import (
    check_in_range,
    check_non_empty,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "LatencyRecorder",
    "RngFactory",
    "as_rng",
    "Stopwatch",
    "timed",
    "check_in_range",
    "check_non_empty",
    "check_positive",
    "check_probability_vector",
    "top_k_indices",
]
