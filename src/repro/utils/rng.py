"""Deterministic random-number management.

Every stochastic component in the library takes either an integer seed or a
``numpy.random.Generator``.  Experiments need many *independent but
reproducible* streams (one per platform, per person, per module); the
:class:`RngFactory` derives child generators from a root seed and a string
label, so adding a new consumer never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["as_rng", "RngFactory"]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a non-deterministic generator; an ``int`` seeds a fresh
    PCG64 stream; an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RngFactory:
    """Derive named, independent random streams from one root seed.

    The child seed is computed by hashing ``(root_seed, label)`` with BLAKE2,
    which keeps streams stable under code reorganization: the stream for
    ``factory.child("topics")`` depends only on the root seed and the label,
    not on how many other children were created before it.

    Examples
    --------
    >>> factory = RngFactory(7)
    >>> a = factory.child("persons").integers(0, 100, 3)
    >>> b = RngFactory(7).child("persons").integers(0, 100, 3)
    >>> bool((a == b).all())
    True
    """

    def __init__(self, root_seed: int):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self.root_seed = int(root_seed)

    def child_seed(self, label: str) -> int:
        """Return the derived 63-bit integer seed for ``label``."""
        digest = hashlib.blake2b(
            f"{self.root_seed}:{label}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little") >> 1

    def child(self, label: str) -> np.random.Generator:
        """Return a fresh generator for the stream named ``label``."""
        return np.random.default_rng(self.child_seed(label))

    def spawn(self, label: str) -> "RngFactory":
        """Return a sub-factory whose streams are namespaced under ``label``."""
        return RngFactory(self.child_seed(label))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(root_seed={self.root_seed})"
