"""Argument validation helpers with consistent, informative error messages."""

from __future__ import annotations

from typing import Sized

import numpy as np

__all__ = [
    "check_positive",
    "check_in_range",
    "check_non_empty",
    "check_probability_vector",
]


def check_positive(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_in_range(
    value: float, name: str, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Raise :class:`ValueError` unless ``low <= value <= high`` (or strict)."""
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_non_empty(collection: Sized, name: str) -> Sized:
    """Raise :class:`ValueError` if ``collection`` has no elements."""
    if len(collection) == 0:
        raise ValueError(f"{name} must not be empty")
    return collection


def check_probability_vector(vec: np.ndarray, name: str, *, atol: float = 1e-6) -> np.ndarray:
    """Validate that ``vec`` is a non-negative vector summing to 1."""
    arr = np.asarray(vec, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if (arr < -atol).any():
        raise ValueError(f"{name} must be non-negative")
    total = float(arr.sum())
    if abs(total - 1.0) > atol:
        raise ValueError(f"{name} must sum to 1 (got {total})")
    return arr
