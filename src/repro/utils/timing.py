"""Wall-clock measurement helpers: stage timing (Fig 14) and latency histograms."""

from __future__ import annotations

import math
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

__all__ = ["LatencyRecorder", "Stopwatch", "timed"]

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulates named timing segments.

    Used by the experiment harness to attribute run time to pipeline stages
    (feature extraction, graph construction, optimization) the way the paper's
    efficiency evaluation separates model construction from solving.
    """

    segments: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed wall time to segment ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.segments[name] = self.segments.get(name, 0.0) + (
                time.perf_counter() - start
            )

    @property
    def total(self) -> float:
        """Total seconds across all recorded segments."""
        return sum(self.segments.values())

    def report(self) -> str:
        """Human-readable one-line-per-segment summary."""
        lines = [f"  {name:<28s} {secs:8.3f}s" for name, secs in self.segments.items()]
        lines.append(f"  {'TOTAL':<28s} {self.total:8.3f}s")
        return "\n".join(lines)


def timed(fn: Callable[..., T], *args, **kwargs) -> tuple[T, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


class LatencyRecorder:
    """A bounded-memory latency histogram with percentile summaries.

    Samples (in seconds) land in a fixed-capacity reservoir (algorithm R:
    once full, the i-th observation replaces a random slot with probability
    ``capacity / i``), so percentiles over arbitrarily long runs cost
    ``capacity`` floats.  ``count`` / ``total_seconds`` / ``min`` / ``max``
    are tracked exactly; ``p50`` / ``p95`` / ``p99`` are nearest-rank
    percentiles of the reservoir (exact until ``count`` exceeds
    ``capacity``, a uniform sample after).

    Recorders merge: per-thread recorders in the load generator combine into
    one report, and per-endpoint gateway histograms aggregate into totals.
    ``record`` and ``merge`` take an internal lock, so one recorder may be
    shared across threads.  The replacement RNG is seeded, so a single-
    threaded run's summaries are reproducible.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = math.inf
        self.max_seconds = 0.0
        self._samples: list[float] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, seconds: float) -> None:
        """Add one observation (in seconds)."""
        if seconds < 0:
            raise ValueError(f"latency cannot be negative, got {seconds}")
        with self._lock:
            self.count += 1
            self.total_seconds += seconds
            self.min_seconds = min(self.min_seconds, seconds)
            self.max_seconds = max(self.max_seconds, seconds)
            if len(self._samples) < self.capacity:
                self._samples.append(seconds)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.capacity:
                    self._samples[slot] = seconds

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's observations into this one.

        Exact statistics (count, total, min, max) add exactly.  The merged
        reservoir keeps every sample when both fit; otherwise each side
        contributes slots proportional to its observation count, drawn
        uniformly from its reservoir, so the merged sample stays an
        (approximately) uniform sample of the union stream.
        """
        with other._lock:
            other_samples = list(other._samples)
            other_count = other.count
            other_total = other.total_seconds
            other_min, other_max = other.min_seconds, other.max_seconds
        if other_count == 0:
            return
        with self._lock:
            merged_count = self.count + other_count
            if len(self._samples) + len(other_samples) <= self.capacity:
                self._samples.extend(other_samples)
            else:
                take_self = max(
                    1, round(self.capacity * self.count / merged_count)
                ) if self.count else 0
                take_self = min(take_self, len(self._samples))
                take_other = min(self.capacity - take_self, len(other_samples))
                keep = (
                    self._rng.sample(self._samples, take_self)
                    if take_self < len(self._samples)
                    else list(self._samples)
                )
                keep += (
                    self._rng.sample(other_samples, take_other)
                    if take_other < len(other_samples)
                    else other_samples
                )
                self._samples = keep
            self.count = merged_count
            self.total_seconds += other_total
            self.min_seconds = min(self.min_seconds, other_min)
            self.max_seconds = max(self.max_seconds, other_max)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the reservoir; 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def mean(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def summary(self, unit: float = 1e3) -> dict:
        """The headline numbers as a dict (latencies scaled by ``unit``;
        the default reports milliseconds)."""
        empty = self.count == 0
        return {
            "count": self.count,
            "mean_ms": self.mean * unit,
            "p50_ms": self.p50 * unit,
            "p95_ms": self.p95 * unit,
            "p99_ms": self.p99 * unit,
            "max_ms": (0.0 if empty else self.max_seconds) * unit,
            "min_ms": (0.0 if empty else self.min_seconds) * unit,
        }
