"""Wall-clock measurement helpers used by the efficiency experiments (Fig 14)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

__all__ = ["Stopwatch", "timed"]

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulates named timing segments.

    Used by the experiment harness to attribute run time to pipeline stages
    (feature extraction, graph construction, optimization) the way the paper's
    efficiency evaluation separates model construction from solving.
    """

    segments: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed wall time to segment ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.segments[name] = self.segments.get(name, 0.0) + (
                time.perf_counter() - start
            )

    @property
    def total(self) -> float:
        """Total seconds across all recorded segments."""
        return sum(self.segments.values())

    def report(self) -> str:
        """Human-readable one-line-per-segment summary."""
        lines = [f"  {name:<28s} {secs:8.3f}s" for name, secs in self.segments.items()]
        lines.append(f"  {'TOTAL':<28s} {self.total:8.3f}s")
        return "\n".join(lines)


def timed(fn: Callable[..., T], *args, **kwargs) -> tuple[T, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
