"""Top-k selection helpers shared by the serving paths.

:func:`top_k_indices` replaces the ``np.argsort(-scores, kind="stable")``
full sorts in the serving hot paths with an ``np.argpartition``-based
selection that is **bit-identical in output**: the returned index order is
exactly ``np.argsort(-scores, kind="stable")[:k]`` — descending score,
ties broken by ascending index, NaN last — while only paying an O(n)
partition plus an O(k log k) tail sort instead of O(n log n).

The tie handling is the subtle part: ``argpartition`` may place an
*arbitrary* subset of boundary-tied elements inside the partition, whereas
the stable argsort always keeps the lowest-indexed ones.  The selection
therefore splits into strictly-better elements plus the lowest-indexed
slice of the boundary ties before ordering the survivors.

NaN scores (the sharded router's degraded rows) compare as the smallest
possible value here, matching where ``argsort(-scores)`` puts them — at
the very end — so the router's NaN-last filtering keeps working unchanged.
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_indices"]


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, bit-identical in order to
    ``np.argsort(-scores, kind="stable")[:k]``.

    Descending score, ties broken by ascending index, NaN sorted last.
    ``k`` is clamped to ``[0, len(scores)]``.
    """
    scores = np.asarray(scores)
    n = scores.shape[0]
    k = min(max(k, 0), n)
    if k == 0:
        return np.empty(0, dtype=np.intp)
    neg = -scores
    if k == n:
        return np.argsort(neg, kind="stable")
    boundary = np.partition(neg, k - 1)[k - 1]
    if np.isnan(boundary):
        # fewer than k comparable values: the degenerate (degraded) case,
        # where the full stable sort is both simplest and rare
        return np.argsort(neg, kind="stable")[:k]
    strict = np.flatnonzero(neg < boundary)  # NaN compares False: excluded
    tied = np.flatnonzero(neg == boundary)[: k - strict.shape[0]]
    selected = np.concatenate([strict, tied])
    # order the survivors the way the stable argsort would: by (-score,
    # index); lexsort's last key is primary
    return selected[np.lexsort((selected, neg[selected]))]
