"""Missing-information injection calibrated to the paper's Fig 2(a).

The paper's study of seven platforms found "at least 80 % of users are missing
at least two profile attributes out of the six most popular ones, and merely
5 % of users have all attributes filled up", with the dominant patterns
enumerated on the Fig 2(a) axis: none missing / birth / edu / job / birth+edu /
birth+job / edu+job / birth+edu+job / birth+tag+edu+job / birth+bio+edu+job /
birth+bio+tag+edu+job / other / missing all.

:data:`MISSING_PATTERNS` encodes that distribution; the injector samples a
pattern per profile and blanks the corresponding attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.socialnet.platform import PROFILE_ATTRIBUTES, Profile
from repro.utils.rng import as_rng

__all__ = ["MISSING_PATTERNS", "MissingnessInjector"]

#: ``(pattern, probability)`` — pattern is the tuple of attributes to blank;
#: the sentinel patterns ``("other",)`` and ``("all",)`` are resolved at
#: sampling time.  Probabilities sum to 1 and reproduce the Fig 2(a) shape:
#: ~16 % of profiles missing fewer than two attributes, ~4 % complete.
MISSING_PATTERNS: tuple[tuple[tuple[str, ...], float], ...] = (
    ((), 0.04),                                      # none missing
    (("birth",), 0.04),
    (("edu",), 0.04),
    (("job",), 0.04),
    (("birth", "edu"), 0.07),
    (("birth", "job"), 0.07),
    (("edu", "job"), 0.09),
    (("birth", "edu", "job"), 0.16),
    (("birth", "tag", "edu", "job"), 0.11),
    (("birth", "bio", "edu", "job"), 0.09),
    (("birth", "bio", "tag", "edu", "job"), 0.12),
    (("other",), 0.09),                              # random >=2 subset
    (("all",), 0.04),                                # all six missing
)


@dataclass
class MissingnessInjector:
    """Blanks profile attributes according to :data:`MISSING_PATTERNS`.

    Parameters
    ----------
    email_hidden_probability:
        Emails are privacy-sensitive and hidden far more often than the six
        tracked attributes; this is their independent hiding rate.
    image_missing_probability:
        Chance the profile has no image at all (feeds the face workflow's
        first abort branch).
    """

    email_hidden_probability: float = 0.8
    image_missing_probability: float = 0.3

    def __post_init__(self) -> None:
        total = sum(p for _, p in MISSING_PATTERNS)
        if abs(total - 1.0) > 1e-9:
            raise AssertionError(f"MISSING_PATTERNS must sum to 1, got {total}")

    def sample_pattern(
        self, rng: np.random.Generator | int | None = None
    ) -> tuple[str, ...]:
        """Draw one concrete missing-attribute pattern."""
        r = as_rng(rng)
        probs = np.array([p for _, p in MISSING_PATTERNS])
        idx = int(r.choice(len(MISSING_PATTERNS), p=probs))
        pattern = MISSING_PATTERNS[idx][0]
        if pattern == ("all",):
            return PROFILE_ATTRIBUTES
        if pattern == ("other",):
            size = int(r.integers(2, len(PROFILE_ATTRIBUTES)))
            chosen = r.choice(len(PROFILE_ATTRIBUTES), size=size, replace=False)
            return tuple(PROFILE_ATTRIBUTES[i] for i in sorted(chosen))
        return pattern

    def apply(
        self, profile: Profile, rng: np.random.Generator | int | None = None
    ) -> Profile:
        """Blank attributes on ``profile`` in place; returns the profile."""
        r = as_rng(rng)
        for attribute in self.sample_pattern(r):
            setattr(profile, attribute, None)
        if r.random() < self.email_hidden_probability:
            profile.email = None
        if r.random() < self.image_missing_probability:
            profile.face_embedding = None
        return profile
