"""Multi-platform world generation: the top-level synthetic-data entry point.

:func:`generate_world` builds a :class:`~repro.socialnet.platform.SocialWorld`
from a :class:`WorldConfig`: a latent population is projected onto each
platform in the configuration, with every distortion the paper names in
Section 1.1 applied on the way:

* **Unreliable usernames** — per-platform naming styles, language mixing and
  unrelated nicknames (:mod:`repro.datagen.names`);
* **Missing information** — Fig 2(a)-calibrated attribute blanking
  (:mod:`repro.datagen.missing`);
* **Information veracity** — randomized false birth year / gender / job;
* **Platform difference** — topical divergence between a person's content on
  different platforms (:mod:`repro.datagen.content`);
* **Behavior asynchrony** — per-platform activity phases and lagged media
  re-shares (:mod:`repro.datagen.media`);
* **Data imbalance** — lognormal personal activity times a per-platform
  multiplier, so the primary platform dominates a user's data volume.

Presets :func:`chinese_platform_specs` and :func:`english_platform_specs`
mirror the paper's two data sets (Sina Weibo, Tecent Weibo, Renren, Douban,
Kaixin / Twitter, Facebook).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.datagen.content import CONTENT_GENRES, ContentGenerator, TopicVocabulary
from repro.datagen.media import MediaSharingModel
from repro.datagen.missing import MissingnessInjector
from repro.datagen.names import UsernameGenerator
from repro.datagen.persons import (
    NaturalPerson,
    PersonPopulation,
    generate_population,
)
from repro.datagen.trajectory import TrajectoryGenerator
from repro.socialnet.platform import (
    Account,
    PlatformData,
    Profile,
    SocialWorld,
)
from repro.utils.rng import RngFactory

__all__ = [
    "PlatformSpec",
    "WorldConfig",
    "chinese_platform_specs",
    "english_platform_specs",
    "generate_world",
]

_JOBS_FOR_VERACITY = (
    "engineer", "teacher", "designer", "doctor", "analyst", "writer",
    "manager", "student", "chef", "lawyer", "artist", "nurse",
)


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of one platform's character.

    Parameters
    ----------
    divergence:
        Fraction of a user's topical mass pulled toward the platform's own
        topic profile (the paper measured 25-85 % content difference).
    activity_multiplier:
        Scales every user's event volume on this platform (data imbalance).
    edge_retention:
        Fraction of real-life friendships that materialize as platform edges.
    phase_offset_days:
        Shifts the platform's activity window (behavior asynchrony).
    post_rate / checkin_rate / media_rate:
        Expected events per unit of personal activity over the time span.
    """

    name: str
    language: str
    divergence: float = 0.4
    activity_multiplier: float = 1.0
    edge_retention: float = 0.75
    phase_offset_days: float = 0.0
    post_rate: float = 20.0
    checkin_rate: float = 10.0
    media_rate: float = 5.0


def chinese_platform_specs() -> tuple[PlatformSpec, ...]:
    """The five Chinese platforms of the paper's first data set."""
    return (
        PlatformSpec("sina_weibo", "zh", divergence=0.25, activity_multiplier=1.6,
                     edge_retention=0.85, phase_offset_days=0.0),
        PlatformSpec("tecent_weibo", "zh", divergence=0.40, activity_multiplier=1.0,
                     edge_retention=0.75, phase_offset_days=2.0),
        PlatformSpec("renren", "zh", divergence=0.50, activity_multiplier=0.8,
                     edge_retention=0.80, phase_offset_days=5.0),
        PlatformSpec("douban", "zh", divergence=0.70, activity_multiplier=0.6,
                     edge_retention=0.55, phase_offset_days=9.0),
        PlatformSpec("kaixin", "zh", divergence=0.60, activity_multiplier=0.5,
                     edge_retention=0.60, phase_offset_days=13.0),
    )


def english_platform_specs() -> tuple[PlatformSpec, ...]:
    """The two English platforms of the paper's second data set."""
    return (
        PlatformSpec("twitter", "en", divergence=0.30, activity_multiplier=1.4,
                     edge_retention=0.80, phase_offset_days=0.0),
        PlatformSpec("facebook", "en", divergence=0.45, activity_multiplier=1.0,
                     edge_retention=0.85, phase_offset_days=4.0),
    )


@dataclass
class WorldConfig:
    """Full recipe for one synthetic world."""

    num_persons: int = 120
    platforms: tuple[PlatformSpec, ...] = field(default_factory=english_platform_specs)
    time_span_days: float = 365.0
    seed: int = 0
    username_overlap_probability: float = 0.7
    false_attribute_probability: float = 0.08
    impostor_face_probability: float = 0.08
    face_noise: float = 0.15
    apply_missingness: bool = True
    missingness: MissingnessInjector = field(default_factory=MissingnessInjector)
    num_topics: int = len(CONTENT_GENRES)
    media_reshare_probability: float = 0.6
    media_reshare_lag_days: float = 4.0
    style_word_probability: float = 0.12
    checkin_noise_deg: float = 0.02
    home_stay_probability: float = 0.8
    #: Media-item universe size as a multiple of the population.  Large values
    #: give each person a near-unique pool (media overlap identifies); small
    #: values make items popular across persons (overlap stops identifying).
    media_universe_per_person: float = 5.0

    def scaled(self, num_persons: int) -> "WorldConfig":
        """Copy of the config with a different population size."""
        return replace(self, num_persons=num_persons)


def _make_profile(
    person: NaturalPerson,
    spec: PlatformSpec,
    config: WorldConfig,
    username_gen: UsernameGenerator,
    population: PersonPopulation,
    rng: np.random.Generator,
) -> Profile:
    """Project a person onto one platform profile, with veracity noise."""
    username = username_gen.draw(
        person.given_name, person.family_name, person.zh_name, spec.language
    )
    birth: int | None = person.birth
    gender: str | None = person.gender
    job: str | None = person.job
    if rng.random() < config.false_attribute_probability:
        birth = person.birth - int(rng.integers(1, 6))  # "some women would not tell their true ages"
    if rng.random() < config.false_attribute_probability * 0.5:
        gender = "f" if person.gender == "m" else "m"
    if rng.random() < config.false_attribute_probability:
        job = _JOBS_FOR_VERACITY[int(rng.integers(0, len(_JOBS_FOR_VERACITY)))]

    face = person.face_embedding + rng.normal(0.0, config.face_noise, person.face_embedding.shape)
    face = face / np.linalg.norm(face)
    face_is_real = True
    if rng.random() < config.impostor_face_probability:
        # profile picture of somebody (or something) else entirely
        other = population.persons[int(rng.integers(0, len(population.persons)))]
        if other.person_id != person.person_id:
            face = other.face_embedding + rng.normal(
                0.0, config.face_noise, person.face_embedding.shape
            )
            face = face / np.linalg.norm(face)
            face_is_real = False

    return Profile(
        username=username,
        gender=gender,
        birth=birth,
        bio=person.bio,
        tag=person.tag,
        edu=person.edu,
        job=job,
        email=person.email,
        face_embedding=face,
        face_is_real=face_is_real,
    )


def generate_world(config: WorldConfig) -> SocialWorld:
    """Generate the full multi-platform world described by ``config``."""
    if not config.platforms:
        raise ValueError("config.platforms must not be empty")
    names = [spec.name for spec in config.platforms]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate platform names: {names}")

    factory = RngFactory(config.seed)
    population = generate_population(
        config.num_persons,
        num_topics=config.num_topics,
        num_media_items=max(
            2, int(config.media_universe_per_person * config.num_persons)
        ),
        seed=factory.child_seed("population"),
    )
    vocabulary = TopicVocabulary.build(CONTENT_GENRES[: config.num_topics])
    username_gen = UsernameGenerator(
        overlap_probability=config.username_overlap_probability,
        seed=factory.child("usernames"),
    )
    trajectory_gen = TrajectoryGenerator(
        home_stay_probability=config.home_stay_probability,
        local_noise_deg=config.checkin_noise_deg,
    )
    media_model = MediaSharingModel(
        reshare_probability=config.media_reshare_probability,
        reshare_lag_scale_days=config.media_reshare_lag_days,
    )
    world = SocialWorld()

    # Opaque, shuffled account ids so nothing downstream can join on an index.
    id_rng = factory.child("account-ids")
    account_ids: dict[str, list[str]] = {}
    for spec in config.platforms:
        order = id_rng.permutation(config.num_persons)
        account_ids[spec.name] = [f"{spec.name[:2]}{int(x):06d}" for x in order]

    # Per-platform topic tilt: the platform's own content profile.
    tilt_rng = factory.child("platform-tilts")
    tilts = {
        spec.name: tilt_rng.dirichlet(np.full(config.num_topics, 0.5))
        for spec in config.platforms
    }

    platforms: dict[str, PlatformData] = {}
    content_gens: dict[str, ContentGenerator] = {}
    for spec in config.platforms:
        platforms[spec.name] = PlatformData(name=spec.name, language=spec.language)
        content_gens[spec.name] = ContentGenerator(
            vocabulary,
            style_word_probability=config.style_word_probability,
            seed=factory.child(f"content:{spec.name}"),
        )

    # ------------------------------------------------------------------
    # per-person projection
    # ------------------------------------------------------------------
    span = (0.0, config.time_span_days)
    for person in population.persons:
        person_factory = factory.spawn(f"person:{person.person_id}")
        person_platforms = [spec.name for spec in config.platforms]

        # person-level activity rhythm: posting clusters around personal
        # "active periods" shared across the person's accounts; platforms
        # shift the rhythm by their phase offset (behavior asynchrony)
        anchor_rng = person_factory.child("activity-anchors")
        n_anchors = max(4, int(anchor_rng.poisson(10)))
        activity_anchors = anchor_rng.uniform(
            0.0, config.time_span_days, n_anchors
        )

        # media posts are planned jointly across the person's platforms so
        # re-shares land on the right accounts with realistic lags
        shares = {
            spec.name: int(
                person_factory.child(f"media-count:{spec.name}").poisson(
                    spec.media_rate * person.activity * spec.activity_multiplier
                )
            )
            for spec in config.platforms
        }
        media_events = media_model.share_events(
            person.media_pool,
            person_platforms,
            span,
            shares,
            seed=person_factory.child("media"),
        )

        for spec in config.platforms:
            platform = platforms[spec.name]
            rng = person_factory.child(f"platform:{spec.name}")
            account_id = account_ids[spec.name][person.person_id]
            profile = _make_profile(
                person, spec, config, username_gen, population, rng
            )
            if config.apply_missingness:
                config.missingness.apply(profile, rng)
            account = Account(
                account_id=account_id, platform=spec.name, profile=profile
            )
            platform.add_account(account)
            world.identity[(spec.name, account_id)] = person.person_id

            volume = person.activity * spec.activity_multiplier
            mixture = content_gens[spec.name].platform_topic_mixture(
                person.topic_preference, spec.divergence, tilts[spec.name]
            )

            # posts: drawn around the person's activity anchors, then
            # phase-shifted per platform (asynchrony); jitter spreads each
            # burst over a few days
            n_posts = int(rng.poisson(spec.post_rate * volume))
            chosen = activity_anchors[
                rng.integers(0, len(activity_anchors), n_posts)
            ]
            post_times = np.sort(
                (chosen + rng.normal(0.0, 3.0, n_posts)
                 + spec.phase_offset_days) % config.time_span_days
            )
            for ts in post_times:
                message = content_gens[spec.name].sample_message(
                    mixture, person.sentiment_disposition, person.style_words
                )
                platform.events.add(account_id, "post", float(ts), message)

            # check-ins: same anchors across platforms, different times
            n_checkins = int(rng.poisson(spec.checkin_rate * volume))
            checkin_times = np.sort(rng.uniform(0.0, config.time_span_days, n_checkins))
            coords = trajectory_gen.sample_checkins(
                person.home,
                person.travel_spots,
                checkin_times,
                seed=rng,
            )
            for ts, coord in zip(checkin_times, coords):
                platform.events.add(account_id, "checkin", float(ts), coord)

            # media posts planned above
            for ts, fingerprint in media_events[spec.name]:
                platform.events.add(account_id, "media", float(ts), fingerprint)

    # ------------------------------------------------------------------
    # platform social graphs: real friendships, partially materialized
    # ------------------------------------------------------------------
    for spec in config.platforms:
        platform = platforms[spec.name]
        edge_rng = factory.child(f"edges:{spec.name}")
        ids = account_ids[spec.name]
        for u_key, v_key, weight in population.friendships.edges():
            u_person = int(u_key[1:])
            v_person = int(v_key[1:])
            if edge_rng.random() < spec.edge_retention:
                noisy_weight = weight * float(edge_rng.lognormal(0.0, 0.3))
                platform.graph.add_interaction(
                    ids[u_person], ids[v_person], noisy_weight
                )

    for spec in config.platforms:
        platforms[spec.name].events.finalize()
        world.add_platform(platforms[spec.name])
    return world
