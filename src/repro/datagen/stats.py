"""World-level statistics validating the generator against the paper's claims.

Section 1.1 reports two measured properties of the real data sets that the
generator must reproduce:

* **Platform difference** — "a 25 % to 85 % difference in user generated
  content between different platforms" for the same user;
* **Data imbalance** — "a huge imbalance in terms of data volume between a
  user's primary social account and the rest".

:func:`content_divergence` measures the first as the total-variation distance
between one person's empirical topic usage on two platforms (the generator's
planted quantity is the divergence mixing weight, so the measured value lands
in the same band); :func:`volume_imbalance` measures the second as the ratio
of a person's largest to median per-platform event volume.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.socialnet.platform import SocialWorld
from repro.text.tokenizer import Tokenizer

__all__ = ["content_divergence", "divergence_summary", "volume_imbalance"]


def _genre_histogram(
    texts: list[str], tokenizer: Tokenizer
) -> tuple[np.ndarray, list[str]] | None:
    """Empirical genre distribution from the genre-compound tokens."""
    counts: Counter[str] = Counter()
    for text in texts:
        for token in tokenizer.tokenize(text):
            if "_" in token:
                counts[token.split("_", 1)[0]] += 1
    if not counts:
        return None
    genres = sorted(counts)
    hist = np.array([counts[g] for g in genres], dtype=float)
    return hist / hist.sum(), genres


def content_divergence(
    world: SocialWorld, person_id: int, platform_a: str, platform_b: str
) -> float | None:
    """Total-variation distance between one person's content on two platforms.

    Returns ``None`` when the person posted nothing on either platform.
    The value is in [0, 1]: 0 = identical topical behavior, 1 = disjoint.
    """
    tokenizer = Tokenizer()
    hists = {}
    for platform_name in (platform_a, platform_b):
        platform = world.platforms[platform_name]
        account_id = next(
            (aid for aid in platform.account_ids()
             if world.identity[(platform_name, aid)] == person_id),
            None,
        )
        if account_id is None:
            return None
        result = _genre_histogram(platform.events.texts_of(account_id), tokenizer)
        if result is None:
            return None
        hists[platform_name] = dict(zip(result[1], result[0]))
    genres = sorted(set(hists[platform_a]) | set(hists[platform_b]))
    pa = np.array([hists[platform_a].get(g, 0.0) for g in genres])
    pb = np.array([hists[platform_b].get(g, 0.0) for g in genres])
    return float(0.5 * np.abs(pa - pb).sum())


def divergence_summary(
    world: SocialWorld, platform_a: str, platform_b: str
) -> dict[str, float]:
    """Distribution of per-person content divergence between two platforms."""
    person_ids = sorted(
        {world.identity[(platform_a, aid)]
         for aid in world.platforms[platform_a].accounts}
    )
    values = []
    for person_id in person_ids:
        d = content_divergence(world, person_id, platform_a, platform_b)
        if d is not None:
            values.append(d)
    if not values:
        return {"count": 0.0, "min": 0.0, "median": 0.0, "max": 0.0, "mean": 0.0}
    arr = np.asarray(values)
    return {
        "count": float(arr.size),
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }


def volume_imbalance(world: SocialWorld, person_id: int) -> float | None:
    """Max-to-median ratio of one person's per-platform event volumes.

    Captures the paper's data-imbalance observation: values well above 1 mean
    the primary account dominates.  ``None`` if the person has no events.
    """
    volumes = []
    for platform_name, platform in world.platforms.items():
        account_id = next(
            (aid for aid in platform.account_ids()
             if world.identity[(platform_name, aid)] == person_id),
            None,
        )
        if account_id is None:
            continue
        total = sum(
            platform.events.count(account_id, kind)
            for kind in ("post", "checkin", "media")
        )
        volumes.append(total)
    if not volumes or max(volumes) == 0:
        return None
    median = float(np.median(volumes))
    if median == 0:
        return float("inf")
    return float(max(volumes) / median)
