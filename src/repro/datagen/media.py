"""Multimedia sharing with near-duplicates and cross-platform asynchrony.

Section 5.4: "Users may post similar multimedia content on the web.  For
example, they may upload or share exactly the same image/ video/ music ...
if a high level of synchrony is observed over an extended period of time
between two user accounts from different platforms, it is reasonable to
hypothesize that these two users correspond to the same person."  And the
*Behavior Asynchrony* challenge (Section 1.1): "a user posts selected
pictures from a trip on Facebook in a certain time period.  At a different
time, the same or different pictures from the trip may be posted again on
Twitter."

Media items are identified by 64-bit perceptual fingerprints.  The high bits
encode the underlying item; the low bits encode a *variant* (re-encode, crop,
re-compression) so the paper's "near duplicated image sensor or down-sampling
method [9]" maps to comparing item bits after shifting the variant bits away —
exactly what perceptual down-sampling achieves on real images.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["VARIANT_BITS", "make_fingerprint", "item_of", "variant_of", "MediaSharingModel"]

#: Low bits of a fingerprint that vary between near-duplicate copies.
VARIANT_BITS = 8


def make_fingerprint(item_id: int, variant: int) -> int:
    """Compose a fingerprint from an item id and a variant code."""
    if item_id < 0:
        raise ValueError(f"item_id must be >= 0, got {item_id}")
    if not 0 <= variant < (1 << VARIANT_BITS):
        raise ValueError(f"variant must fit in {VARIANT_BITS} bits, got {variant}")
    return (item_id << VARIANT_BITS) | variant


def item_of(fingerprint: int) -> int:
    """Recover the underlying item id (the down-sampled representation)."""
    return fingerprint >> VARIANT_BITS


def variant_of(fingerprint: int) -> int:
    """Recover the variant code of a fingerprint."""
    return fingerprint & ((1 << VARIANT_BITS) - 1)


@dataclass
class MediaSharingModel:
    """Generates media-post events for a person across platforms.

    For each item the person decides to share, a *first* post lands on one
    platform; with probability ``reshare_probability`` the same item (as a
    near-duplicate variant) is re-posted on each other platform after an
    exponential lag — the asynchrony the multi-resolution sensors must absorb.

    Parameters
    ----------
    reshare_probability:
        Chance an item shared on the primary platform also appears on any
        given other platform of the same person.
    reshare_lag_scale_days:
        Mean of the exponential re-share delay.
    """

    reshare_probability: float = 0.6
    reshare_lag_scale_days: float = 4.0

    def share_events(
        self,
        media_pool: tuple[int, ...],
        platforms: list[str],
        time_span: tuple[float, float],
        shares_per_platform: dict[str, int],
        *,
        seed: int | np.random.Generator | None = None,
    ) -> dict[str, list[tuple[float, int]]]:
        """Plan media posts: ``platform -> [(timestamp, fingerprint), ...]``.

        ``shares_per_platform`` gives how many *originating* shares each
        platform produces (proportional to the account's activity there);
        re-shares propagate to the person's other platforms on top of that.
        """
        rng = as_rng(seed)
        t0, t1 = time_span
        if t1 <= t0:
            raise ValueError(f"empty time span: {time_span}")
        out: dict[str, list[tuple[float, int]]] = {p: [] for p in platforms}
        if not media_pool:
            return out
        pool = list(media_pool)
        for platform in platforms:
            for _ in range(shares_per_platform.get(platform, 0)):
                item = pool[int(rng.integers(0, len(pool)))]
                ts = float(rng.uniform(t0, t1))
                variant = int(rng.integers(0, 1 << VARIANT_BITS))
                out[platform].append((ts, make_fingerprint(item, variant)))
                # asynchronous near-duplicate re-shares on the other platforms
                for other in platforms:
                    if other == platform:
                        continue
                    if rng.random() < self.reshare_probability:
                        lag = float(rng.exponential(self.reshare_lag_scale_days))
                        re_ts = ts + lag
                        if re_ts < t1:
                            re_variant = int(rng.integers(0, 1 << VARIANT_BITS))
                            out[other].append(
                                (re_ts, make_fingerprint(item, re_variant))
                            )
        for platform in out:
            out[platform].sort()
        return out
