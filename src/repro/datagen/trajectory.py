"""Mobility / check-in trajectory synthesis (Section 5.4, location sensor).

"Users with similar trajectory patterns and no conflicting instances over an
extended period of time are likely to be the same person in real life."

A person's check-ins cluster around their home with occasional trips to
personal travel spots.  Accounts of the *same* person on different platforms
check in around the *same* anchors but at different times and rates —
behavior asynchrony — while different persons in the same city still differ
by their home offsets within the city.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["CITY_CENTERS", "TrajectoryGenerator"]

#: (lat, lon) anchors for the cities the population lives in.  A mix of
#: Chinese and US/UK metros, matching the paper's two data-set cultures.
CITY_CENTERS: dict[str, tuple[float, float]] = {
    "beijing": (39.90, 116.40),
    "shanghai": (31.23, 121.47),
    "guangzhou": (23.13, 113.26),
    "chengdu": (30.57, 104.07),
    "hangzhou": (30.27, 120.16),
    "newyork": (40.71, -74.01),
    "sanfrancisco": (37.77, -122.42),
    "london": (51.51, -0.13),
    "singapore": (1.35, 103.82),
    "pittsburgh": (40.44, -80.00),
}


@dataclass
class TrajectoryGenerator:
    """Samples geo check-in events for one account.

    Parameters
    ----------
    home_stay_probability:
        Chance a check-in is near home rather than at a travel spot.
    local_noise_deg:
        Standard deviation (degrees) of jitter around the chosen anchor —
        venue-level noise within a neighbourhood.
    """

    home_stay_probability: float = 0.8
    local_noise_deg: float = 0.02

    def sample_checkins(
        self,
        home: tuple[float, float],
        travel_spots: tuple[tuple[float, float], ...],
        timestamps: np.ndarray,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> list[tuple[float, float]]:
        """Sample one (lat, lon) per timestamp.

        Trips are sticky: consecutive timestamps on the same calendar day stay
        at the same anchor, which is how real trajectories behave and what
        gives the location sensor temporally-coherent matches.
        """
        rng = as_rng(seed)
        coords: list[tuple[float, float]] = []
        current_anchor = home
        current_day = None
        for ts in np.asarray(timestamps, dtype=float):
            day = int(ts)
            if day != current_day:
                current_day = day
                if travel_spots and rng.random() >= self.home_stay_probability:
                    current_anchor = travel_spots[
                        int(rng.integers(0, len(travel_spots)))
                    ]
                else:
                    current_anchor = home
            coords.append(
                (
                    current_anchor[0] + float(rng.normal(0.0, self.local_noise_deg)),
                    current_anchor[1] + float(rng.normal(0.0, self.local_noise_deg)),
                )
            )
        return coords
