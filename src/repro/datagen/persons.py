"""Latent natural persons: the ground-truth entities behind all accounts.

Each person carries every long-term trait the HYDRA features rely on:

* demographic attributes (gender, birth year, education, job, bio, tags,
  email) — the profile layer;
* a Dirichlet topical preference over the content genres and a sentiment
  disposition — the UGC layer;
* a small personal vocabulary of rare *style words* — the style layer;
* a home location plus travel spots — the trajectory layer;
* a latent face embedding — the visual-attribute layer;
* a pool of media items the person likes to share — the multimedia layer;
* a friend-circle id and the person-level friendship graph — the core social
  structure the paper's Step 2 exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.content import CONTENT_GENRES
from repro.datagen.names import UsernameGenerator
from repro.datagen.trajectory import CITY_CENTERS
from repro.socialnet.graph import SocialGraph
from repro.utils.rng import RngFactory

__all__ = ["NaturalPerson", "PersonPopulation", "generate_population"]

_EDUCATIONS = ("highschool", "bachelor", "master", "phd")
_JOBS = (
    "engineer", "teacher", "designer", "doctor", "analyst", "writer",
    "manager", "student", "chef", "lawyer", "artist", "nurse",
)
_BIO_WORDS = (
    "dreamer", "foodie", "runner", "reader", "gamer", "traveler", "coder",
    "singer", "photographer", "dancer", "thinker", "maker",
)
_STYLE_WORD_POOL = tuple(
    f"styleword{i:03d}" for i in range(400)
)  # rare by construction: each person owns a few, reused nowhere else

FACE_EMBEDDING_DIM = 16


@dataclass(frozen=True)
class NaturalPerson:
    """One real-world individual (see module docstring for field semantics)."""

    person_id: int
    gender: str
    birth: int
    city: str
    edu: str
    job: str
    bio: str
    tag: tuple[str, ...]
    email: str
    given_name: str
    family_name: str
    zh_name: str
    topic_preference: np.ndarray
    sentiment_disposition: np.ndarray
    style_words: tuple[str, ...]
    home: tuple[float, float]
    travel_spots: tuple[tuple[float, float], ...]
    activity: float
    face_embedding: np.ndarray
    media_pool: tuple[int, ...]
    circle: int


@dataclass
class PersonPopulation:
    """All persons plus their person-level (real-life) friendship graph."""

    persons: list[NaturalPerson]
    friendships: SocialGraph
    circles: list[list[int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.persons)

    def person(self, person_id: int) -> NaturalPerson:
        """Look up a person by id (ids are dense 0..n-1)."""
        return self.persons[person_id]


def _person_key(person_id: int) -> str:
    """Graph node key of a person (the friendship graph is keyed by string)."""
    return f"p{person_id}"


def generate_population(
    num_persons: int,
    *,
    num_topics: int = len(CONTENT_GENRES),
    circle_size: tuple[int, int] = (8, 20),
    intra_circle_edge_prob: float = 0.35,
    cross_circle_edges_per_person: float = 0.5,
    topic_concentration: float = 0.25,
    media_pool_size: tuple[int, int] = (4, 12),
    num_media_items: int | None = None,
    seed: int = 0,
) -> PersonPopulation:
    """Generate ``num_persons`` latent persons and their friendship graph.

    Persons are partitioned into friend circles (sizes uniform in
    ``circle_size``); within a circle each pair is connected with probability
    ``intra_circle_edge_prob`` and a lognormal interaction weight, modelling
    the paper's "friends with the most frequent interactions"; sparse random
    cross-circle edges keep the graph connected enough for hop-distance
    queries to be interesting.

    Parameters
    ----------
    topic_concentration:
        Dirichlet concentration of personal topic preferences — small values
        give peaked (highly discriminative) interests.
    num_media_items:
        Size of the global media-item universe; defaults to ``5 * num_persons``.
    seed:
        Root seed; all internal streams derive from it via
        :class:`~repro.utils.rng.RngFactory`.
    """
    if num_persons < 1:
        raise ValueError(f"num_persons must be >= 1, got {num_persons}")
    factory = RngFactory(seed)
    rng = factory.child("persons")
    name_gen = UsernameGenerator(seed=factory.child("names"))
    if num_media_items is None:
        num_media_items = 5 * num_persons

    # --- carve the population into friend circles -----------------------
    circles: list[list[int]] = []
    next_id = 0
    lo, hi = circle_size
    while next_id < num_persons:
        size = int(rng.integers(lo, hi + 1))
        members = list(range(next_id, min(next_id + size, num_persons)))
        circles.append(members)
        next_id += size

    cities = sorted(CITY_CENTERS)
    persons: list[NaturalPerson] = []
    for person_id in range(num_persons):
        circle_id = next(i for i, c in enumerate(circles) if person_id in c)
        given, family, zh = name_gen.draw_identity(rng)
        gender = "f" if rng.random() < 0.5 else "m"
        birth = int(rng.integers(1955, 2001))
        city = cities[int(rng.integers(0, len(cities)))]
        edu = _EDUCATIONS[int(rng.integers(0, len(_EDUCATIONS)))]
        job = _JOBS[int(rng.integers(0, len(_JOBS)))]
        bio_words = rng.choice(len(_BIO_WORDS), size=3, replace=False)
        bio = " ".join(_BIO_WORDS[i] for i in sorted(bio_words))
        tag_idx = rng.choice(len(CONTENT_GENRES), size=3, replace=False)
        tag = tuple(sorted(CONTENT_GENRES[i] for i in tag_idx))
        email = f"{given}.{family}.{person_id}@mail.example"
        topic_pref = rng.dirichlet(np.full(num_topics, topic_concentration))
        disposition = rng.dirichlet(np.array([1.5, 0.7, 0.7, 2.0]))
        n_style = int(rng.integers(2, 5))
        style_idx = rng.choice(len(_STYLE_WORD_POOL), size=n_style, replace=False)
        style_words = tuple(_STYLE_WORD_POOL[i] for i in sorted(style_idx))
        center = CITY_CENTERS[city]
        home = (
            center[0] + float(rng.normal(0.0, 0.05)),
            center[1] + float(rng.normal(0.0, 0.05)),
        )
        n_travel = int(rng.integers(1, 4))
        travel = tuple(
            (
                center[0] + float(rng.normal(0.0, 2.0)),
                center[1] + float(rng.normal(0.0, 2.0)),
            )
            for _ in range(n_travel)
        )
        activity = float(rng.lognormal(mean=0.0, sigma=0.6))
        face = rng.normal(0.0, 1.0, size=FACE_EMBEDDING_DIM)
        face /= np.linalg.norm(face)
        pool_size = int(rng.integers(media_pool_size[0], media_pool_size[1] + 1))
        pool = tuple(
            int(x) for x in rng.choice(num_media_items, size=pool_size, replace=False)
        )
        persons.append(
            NaturalPerson(
                person_id=person_id,
                gender=gender,
                birth=birth,
                city=city,
                edu=edu,
                job=job,
                bio=bio,
                tag=tag,
                email=email,
                given_name=given,
                family_name=family,
                zh_name=zh,
                topic_preference=topic_pref,
                sentiment_disposition=disposition,
                style_words=style_words,
                home=home,
                travel_spots=travel,
                activity=activity,
                face_embedding=face,
                media_pool=pool,
                circle=circle_id,
            )
        )

    # --- friendship graph ------------------------------------------------
    graph_rng = factory.child("friendships")
    friendships = SocialGraph()
    for person in persons:
        friendships.add_node(_person_key(person.person_id))
    for members in circles:
        for idx, u in enumerate(members):
            for v in members[idx + 1 :]:
                if graph_rng.random() < intra_circle_edge_prob:
                    weight = float(graph_rng.lognormal(mean=1.0, sigma=0.8))
                    friendships.add_interaction(_person_key(u), _person_key(v), weight)
    # sparse cross-circle ties
    expected_cross = cross_circle_edges_per_person * num_persons
    n_cross = int(graph_rng.poisson(expected_cross)) if expected_cross > 0 else 0
    for _ in range(n_cross):
        u = int(graph_rng.integers(0, num_persons))
        v = int(graph_rng.integers(0, num_persons))
        if u != v and persons[u].circle != persons[v].circle:
            weight = float(graph_rng.lognormal(mean=0.0, sigma=0.5))
            friendships.add_interaction(_person_key(u), _person_key(v), weight)

    return PersonPopulation(persons=persons, friendships=friendships, circles=circles)
