"""Username synthesis with cross-platform unreliability (Section 1.1, Fig 1).

The paper's motivating example: "while a user tends to add family name after
'Adele' in English communities, the user could be very likely to put a Chinese
name before or after 'Adele' in a Chinese community.  To make things worse,
some users may even add bizarre characters for eccentricity."

:class:`UsernameGenerator` reproduces those regimes.  For each person and
platform it draws one of several naming styles — full-name concatenations,
given-name + digits, language-mixed forms (Chinese name before/after the
Latin given name on ``zh`` platforms), eccentric decorations, or an unrelated
nickname — so username-overlap baselines get a realistic mixture of easy,
hard and impossible cases.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["GIVEN_NAMES", "FAMILY_NAMES", "ZH_NAMES", "NICKNAME_WORDS", "UsernameGenerator"]

GIVEN_NAMES: tuple[str, ...] = (
    "adele", "alice", "bob", "carol", "david", "emma", "frank", "grace",
    "henry", "iris", "jack", "kate", "leo", "mia", "nathan", "olivia",
    "peter", "quinn", "rachel", "sam", "tina", "victor", "wendy", "xavier",
    "yuki", "zoe", "brian", "cindy", "derek", "elaine", "felix", "gina",
    "harold", "ivy", "jason", "karen", "lucas", "maria", "nick", "paula",
)

FAMILY_NAMES: tuple[str, ...] = (
    "smith", "johnson", "lee", "brown", "garcia", "martin", "wang", "zhang",
    "chen", "liu", "robinson", "clark", "lewis", "walker", "hall", "young",
    "king", "wright", "hill", "green", "baker", "adams", "nelson", "carter",
)

#: Chinese display names (characters) used by the language-mixing styles.
ZH_NAMES: tuple[str, ...] = (
    "小暖", "素文", "文杰", "志强", "雨婷", "晓明", "丽华", "建国",
    "静怡", "子涵", "浩然", "欣怡", "天宇", "思琪", "俊杰", "雪梅",
)

#: Pool for unrelated nicknames (the unlinkable regime).
NICKNAME_WORDS: tuple[str, ...] = (
    "shadow", "dragon", "cloud", "pixel", "mango", "storm", "ninja", "comet",
    "ember", "frost", "lotus", "raven", "sonic", "tiger", "vortex", "zephyr",
)

_ECCENTRIC_DECOR = ("xX{}Xx", "~{}~", "{}_official", "_{}_", "{}.real")


class UsernameGenerator:
    """Draws per-platform usernames for a person with controllable reliability.

    Parameters
    ----------
    overlap_probability:
        Probability that the drawn style keeps a recognizable overlap with the
        person's real given name.  The complement produces unrelated
        nicknames, the regime where username-based baselines must fail.
    seed:
        Seed or generator.
    """

    def __init__(
        self,
        *,
        overlap_probability: float = 0.7,
        seed: int | np.random.Generator | None = None,
    ):
        if not 0.0 <= overlap_probability <= 1.0:
            raise ValueError(
                f"overlap_probability must be in [0, 1], got {overlap_probability}"
            )
        self.overlap_probability = overlap_probability
        self._rng = as_rng(seed)

    # ------------------------------------------------------------------
    def draw(
        self, given_name: str, family_name: str, zh_name: str, language: str
    ) -> str:
        """Draw one username for the given identity on a platform.

        ``language`` is ``"en"`` or ``"zh"``; the zh styles mix Chinese
        characters with the Latin given name as in Fig 1 of the paper.
        """
        rng = self._rng
        if rng.random() >= self.overlap_probability:
            # Unrelated nickname: no recoverable overlap with the real name.
            word = NICKNAME_WORDS[int(rng.integers(0, len(NICKNAME_WORDS)))]
            return f"{word}{int(rng.integers(10, 9999))}"

        styles_en = ("full", "dotted", "digits", "eccentric", "plain")
        styles_zh = ("zh_after", "zh_before", "digits", "eccentric", "plain")
        styles = styles_zh if language == "zh" else styles_en
        style = styles[int(rng.integers(0, len(styles)))]

        if style == "full":
            return f"{given_name}{family_name}"
        if style == "dotted":
            return f"{given_name}.{family_name}"
        if style == "digits":
            return f"{given_name}{int(rng.integers(1, 999))}"
        if style == "eccentric":
            decor = _ECCENTRIC_DECOR[int(rng.integers(0, len(_ECCENTRIC_DECOR)))]
            return decor.format(given_name)
        if style == "zh_after":
            return f"{given_name}_{zh_name}"
        if style == "zh_before":
            return f"{zh_name}{given_name.capitalize()}"
        return given_name

    def draw_identity(
        self, rng: np.random.Generator | None = None
    ) -> tuple[str, str, str]:
        """Draw a (given, family, zh) real-name triple for a new person."""
        r = rng if rng is not None else self._rng
        given = GIVEN_NAMES[int(r.integers(0, len(GIVEN_NAMES)))]
        family = FAMILY_NAMES[int(r.integers(0, len(FAMILY_NAMES)))]
        zh = ZH_NAMES[int(r.integers(0, len(ZH_NAMES)))]
        return given, family, zh
