"""User-generated-content synthesis from latent topical interests.

Section 5.2 of the paper: "over a sufficiently long period of time, the UGC of
a user collectively gives a faithful reflection of the user's topical
interests".  The generator plants exactly that invariant: each person owns a
Dirichlet topic preference over the paper's content-genre inventory, and every
message is sampled from a *platform-tilted* mixture of that preference — the
tilt implements the 25-85 % cross-platform content difference reported in
Section 1.1 ("Platform Difference").

Messages also carry the person's sentiment disposition (emotional keywords
from the sentiment lexicon) and rare personal style words, feeding the
sentiment-pattern and user-style features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.text.sentiment import DEFAULT_LEXICON, SENTIMENT_CATEGORIES
from repro.utils.rng import as_rng
from repro.utils.validation import check_probability_vector

__all__ = ["CONTENT_GENRES", "TopicVocabulary", "ContentGenerator"]

#: The paper's content-genre inventory (Section 5.2, verbatim list).
CONTENT_GENRES: tuple[str, ...] = (
    "sports", "music", "entertainment", "society", "history", "science",
    "art", "hightech", "commercial", "politics", "geography", "traveling",
    "fashions", "digitalgame", "industry", "luxury", "violence",
)

_GENRE_STEMS: tuple[str, ...] = (
    "news", "story", "event", "review", "update", "moment", "fans", "star",
    "trend", "photo", "match", "record", "world", "idea", "talk", "show",
    "club", "scene", "style", "report",
)

_COMMON_WORDS: tuple[str, ...] = (
    "today", "really", "people", "think", "time", "good", "new", "see",
    "make", "know", "going", "everyone", "just", "still", "very", "much",
)

_SENTIMENT_WORDS_BY_CATEGORY: dict[str, tuple[str, ...]] = {}
for _w, _c in DEFAULT_LEXICON.items():
    _SENTIMENT_WORDS_BY_CATEGORY.setdefault(_c, ())
    _SENTIMENT_WORDS_BY_CATEGORY[_c] = _SENTIMENT_WORDS_BY_CATEGORY[_c] + (_w,)


@dataclass(frozen=True)
class TopicVocabulary:
    """Word inventory organized by genre: ``words[g]`` lists genre g's words.

    Genre words are compounds like ``"sports_match"`` so the vocabulary is
    unambiguous and LDA can cleanly recover the planted topics.
    """

    genres: tuple[str, ...]
    words: tuple[tuple[str, ...], ...]

    @classmethod
    def build(cls, genres: tuple[str, ...] = CONTENT_GENRES) -> "TopicVocabulary":
        """Construct the default vocabulary: 20 compound words per genre."""
        words = tuple(
            tuple(f"{genre}_{stem}" for stem in _GENRE_STEMS) for genre in genres
        )
        return cls(genres=genres, words=words)

    @property
    def num_topics(self) -> int:
        """Number of genres (= planted topics)."""
        return len(self.genres)

    def all_words(self) -> list[str]:
        """Flat list of every genre word."""
        return [w for genre_words in self.words for w in genre_words]


class ContentGenerator:
    """Samples messages for a person on a platform.

    Parameters
    ----------
    vocabulary:
        The genre word inventory.
    words_per_message:
        (low, high) bounds of message length in words.
    sentiment_word_probability:
        Chance a message carries one emotional keyword drawn according to the
        person's sentiment disposition.
    style_word_probability:
        Chance a message carries one of the person's rare style words.
    """

    def __init__(
        self,
        vocabulary: TopicVocabulary,
        *,
        words_per_message: tuple[int, int] = (6, 14),
        sentiment_word_probability: float = 0.45,
        style_word_probability: float = 0.12,
        seed: int | np.random.Generator | None = None,
    ):
        low, high = words_per_message
        if not 1 <= low <= high:
            raise ValueError(f"invalid words_per_message bounds: {words_per_message}")
        self.vocabulary = vocabulary
        self.words_per_message = words_per_message
        self.sentiment_word_probability = sentiment_word_probability
        self.style_word_probability = style_word_probability
        self._rng = as_rng(seed)

    # ------------------------------------------------------------------
    def platform_topic_mixture(
        self,
        preference: np.ndarray,
        divergence: float,
        platform_tilt: np.ndarray,
    ) -> np.ndarray:
        """Blend a person's preference with a platform tilt.

        ``divergence`` in [0, 1] is the fraction of topical mass moved from
        the personal preference toward the platform's own topic profile —
        divergence 0.25 to 0.85 reproduces the paper's measured range of
        cross-platform content difference.
        """
        pref = check_probability_vector(preference, "preference")
        tilt = check_probability_vector(platform_tilt, "platform_tilt")
        if not 0.0 <= divergence <= 1.0:
            raise ValueError(f"divergence must be in [0, 1], got {divergence}")
        mixture = (1.0 - divergence) * pref + divergence * tilt
        return mixture / mixture.sum()

    def sample_message(
        self,
        topic_mixture: np.ndarray,
        sentiment_disposition: np.ndarray,
        style_words: tuple[str, ...],
    ) -> str:
        """Sample one message string."""
        rng = self._rng
        low, high = self.words_per_message
        length = int(rng.integers(low, high + 1))
        topic = int(rng.choice(self.vocabulary.num_topics, p=topic_mixture))
        genre_words = self.vocabulary.words[topic]
        words: list[str] = []
        for _ in range(length):
            if rng.random() < 0.25:
                words.append(_COMMON_WORDS[int(rng.integers(0, len(_COMMON_WORDS)))])
            else:
                words.append(genre_words[int(rng.integers(0, len(genre_words)))])
        if rng.random() < self.sentiment_word_probability:
            category = SENTIMENT_CATEGORIES[
                int(rng.choice(len(SENTIMENT_CATEGORIES), p=sentiment_disposition))
            ]
            pool = _SENTIMENT_WORDS_BY_CATEGORY.get(category)
            if pool:  # 'neutral' has no keywords: silence is neutrality
                words.append(pool[int(rng.integers(0, len(pool)))])
        if style_words and rng.random() < self.style_word_probability:
            words.append(style_words[int(rng.integers(0, len(style_words)))])
        rng.shuffle(words)
        return " ".join(words)
