"""Synthetic multi-platform social-world generator.

Substitute for the paper's proprietary 10-million-user, 7-platform crawl
(Section 7.1).  A latent *natural person* carries stable long-term traits —
topical interests, sentiment disposition, style vocabulary, mobility anchors,
a face, a media pool and a friend circle — and each platform projects those
traits through platform-dependent distortion: content divergence, behavior
asynchrony, data imbalance, unreliable usernames, information veracity noise
and missing attributes (the five challenges of Section 1.1).

The generator is fully deterministic given a seed, and ground-truth identity
(the paper's national-ID oracle) is retained on the generated
:class:`~repro.socialnet.platform.SocialWorld`.
"""

from repro.datagen.persons import NaturalPerson, PersonPopulation, generate_population
from repro.datagen.names import UsernameGenerator
from repro.datagen.content import TopicVocabulary, ContentGenerator, CONTENT_GENRES
from repro.datagen.trajectory import TrajectoryGenerator, CITY_CENTERS
from repro.datagen.media import MediaSharingModel, item_of, variant_of, make_fingerprint
from repro.datagen.missing import MISSING_PATTERNS, MissingnessInjector
from repro.datagen.generator import (
    PlatformSpec,
    WorldConfig,
    chinese_platform_specs,
    english_platform_specs,
    generate_world,
)
from repro.datagen.stats import (
    content_divergence,
    divergence_summary,
    volume_imbalance,
)

__all__ = [
    "NaturalPerson",
    "PersonPopulation",
    "generate_population",
    "UsernameGenerator",
    "TopicVocabulary",
    "ContentGenerator",
    "CONTENT_GENRES",
    "TrajectoryGenerator",
    "CITY_CENTERS",
    "MediaSharingModel",
    "item_of",
    "variant_of",
    "make_fingerprint",
    "MISSING_PATTERNS",
    "MissingnessInjector",
    "PlatformSpec",
    "WorldConfig",
    "chinese_platform_specs",
    "english_platform_specs",
    "generate_world",
    "content_divergence",
    "divergence_summary",
    "volume_imbalance",
]
