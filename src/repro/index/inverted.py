"""The mutable inverted-index primitive behind the blocking rules.

An :class:`InvertedIndex` maps hashable keys to the set of account ids that
carry them.  It is deliberately minimal — ``add`` / ``remove`` / ``query`` —
because every blocking rule reduces to "how many keys do this signature and
that account share":

* username rule: keys are character bigrams, the query returns overlap
  counts for a Jaccard test;
* email rule: one key per account, exact match;
* media rule: keys are down-sampled media fingerprints;
* rare-word rule: keys are the account's current joint-corpus-rare words;
* location rule: one home-cell key, queried with the 3x3 neighborhood.

Postings are insertion-ordered dicts used as ordered sets, so removal is
O(1) per key and iteration order is deterministic for a given mutation
history (queries aggregate into order-insensitive counters anyway).
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Key -> account-id postings with per-account key tracking.

    Each account owns a set of keys; ``remove`` uses the recorded keys so
    callers never need to re-derive a signature to un-index it.
    """

    def __init__(self) -> None:
        self._postings: dict[Hashable, dict[str, None]] = {}
        self._keys_of: dict[str, tuple[Hashable, ...]] = {}

    def __len__(self) -> int:
        return len(self._keys_of)

    def __contains__(self, account_id: str) -> bool:
        return account_id in self._keys_of

    def keys_of(self, account_id: str) -> tuple[Hashable, ...]:
        """The keys ``account_id`` is currently indexed under (empty if absent)."""
        return self._keys_of.get(account_id, ())

    def add(self, account_id: str, keys: Iterable[Hashable]) -> None:
        """Index ``account_id`` under ``keys`` (replacing any previous entry)."""
        if account_id in self._keys_of:
            self.remove(account_id)
        keys = tuple(dict.fromkeys(keys))  # dedupe, preserve order
        self._keys_of[account_id] = keys
        for key in keys:
            self._postings.setdefault(key, {})[account_id] = None

    def remove(self, account_id: str) -> None:
        """Drop ``account_id`` from every posting list (no-op when absent)."""
        for key in self._keys_of.pop(account_id, ()):
            postings = self._postings.get(key)
            if postings is not None:
                postings.pop(account_id, None)
                if not postings:
                    del self._postings[key]

    def postings(self, key: Hashable) -> tuple[str, ...]:
        """Account ids indexed under ``key`` (insertion order)."""
        return tuple(self._postings.get(key, ()))

    def query(self, keys: Iterable[Hashable]) -> Counter:
        """Overlap counts: account id -> number of shared (distinct) keys."""
        counts: Counter[str] = Counter()
        for key in dict.fromkeys(keys):
            postings = self._postings.get(key)
            if postings:
                counts.update(postings.keys())
        return counts

    def accounts(self) -> list[str]:
        """Sorted ids of every indexed account."""
        return sorted(self._keys_of)
