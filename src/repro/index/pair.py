"""One platform pair's five blocking rules as a mutable candidate index.

:class:`PairCandidateIndex` holds both sides of an ordered platform pair —
every account's :class:`~repro.index.signatures.BlockingSignature` plus one
:class:`~repro.index.inverted.InvertedIndex` per rule — and answers
"which accounts on the other side does this account block with, and under
which rules?".  It is built once per pair at fit time
(:meth:`PairCandidateIndex.bulk_build`, the path
:class:`~repro.core.candidates.CandidateGenerator` now runs on) and then
stays *live*: :meth:`add` and :meth:`remove` mutate it account by account.

Exact incremental maintenance
-----------------------------
Four of the five rules key on immutable per-account state, so adding or
removing an account only touches its own posting lists.  The rare-word rule
does not: an account's indexed keys are its ``rare_word_count`` rarest
distinct tokens *ranked against the joint corpus of both platforms*, and
every mutation shifts that corpus.  The index therefore maintains the joint
term-frequency counter incrementally and re-ranks exactly the accounts whose
rare-word sets can have changed:

* on **add**, token frequencies only grow, so a rare set can only change
  when one of its *current* members gains frequency (an outside word's rank
  strictly worsens, so it enters only by displacing a grown member) — only
  accounts whose current rare keys intersect the added tokens need
  re-ranking (found via the rare-word posting lists);
* on **remove**, frequencies shrink and words can (re-)enter rare sets, so
  every account whose distinct tokens intersect the removed tokens is
  re-ranked (found via the token posting lists).

After any mutation sequence the index state is identical to a fresh
:meth:`bulk_build` over the surviving accounts — the property the ingest
parity tests assert.

Mutations return the set of ``(side, account_id)`` entries whose candidate
relationships may have changed (the mutated account's matches, re-ranked
accounts, and their style partners under old and new keys), so a caller
maintaining budgeted per-account candidate groups knows exactly which groups
to recompute.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass, field

from repro.features.attributes import username_similarity
from repro.index.inverted import InvertedIndex
from repro.index.signatures import BlockingSignature

__all__ = ["PairCandidateIndex"]

#: ``(side, account_id)`` — how mutation fallout is addressed.
SideRef = tuple[str, str]

_SIDES = ("a", "b")


@dataclass
class _Side:
    """One platform's half of the pair index.

    ``runner_keys[id]`` is the ``(frequency, word)`` sort key of the account's
    best *non-rare* token as of its last full ranking (None when the account
    has no more than ``rare_word_count`` distinct tokens) — the barrier the
    growth fast path in :meth:`PairCandidateIndex._rerank` tests against.
    """

    signatures: dict[str, BlockingSignature] = field(default_factory=dict)
    rare_keys: dict[str, tuple[str, ...]] = field(default_factory=dict)
    runner_keys: dict[str, tuple | None] = field(default_factory=dict)
    bigrams: InvertedIndex = field(default_factory=InvertedIndex)
    emails: InvertedIndex = field(default_factory=InvertedIndex)
    media: InvertedIndex = field(default_factory=InvertedIndex)
    rare: InvertedIndex = field(default_factory=InvertedIndex)
    cells: InvertedIndex = field(default_factory=InvertedIndex)
    tokens: InvertedIndex = field(default_factory=InvertedIndex)


class PairCandidateIndex:
    """Mutable five-rule blocking index for one ordered platform pair.

    Parameters mirror :class:`~repro.core.candidates.CandidateGenerator`'s
    blocking thresholds; ``max_per_account`` is the per-left-account
    candidate budget applied by :meth:`ranked`.
    """

    def __init__(
        self,
        platform_a: str,
        platform_b: str,
        *,
        username_threshold: float = 0.4,
        min_shared_media: int = 2,
        min_shared_rare_words: int = 1,
        rare_word_count: int = 5,
        max_per_account: int = 10,
    ):
        self.platform_a = platform_a
        self.platform_b = platform_b
        self.username_threshold = username_threshold
        self.min_shared_media = min_shared_media
        self.min_shared_rare_words = min_shared_rare_words
        self.rare_word_count = rare_word_count
        self.max_per_account = max_per_account
        self.term_freq: Counter[str] = Counter()
        self._sides: dict[str, _Side] = {s: _Side() for s in _SIDES}

    # ------------------------------------------------------------------
    # side addressing
    # ------------------------------------------------------------------
    def side_of(self, platform: str) -> str:
        """``"a"`` or ``"b"`` for ``platform``; KeyError if neither."""
        if platform == self.platform_a:
            return "a"
        if platform == self.platform_b:
            return "b"
        raise KeyError(
            f"platform {platform!r} is not part of pair "
            f"({self.platform_a}, {self.platform_b})"
        )

    @staticmethod
    def other_side(side: str) -> str:
        return "b" if side == "a" else "a"

    def ids(self, side: str) -> list[str]:
        """Sorted indexed account ids on ``side``."""
        return sorted(self._sides[side].signatures)

    def __contains__(self, side_ref: SideRef) -> bool:
        side, account_id = side_ref
        return account_id in self._sides[side].signatures

    def rare_words(self, side: str, account_id: str) -> tuple[str, ...]:
        """The account's currently indexed joint-corpus-rare words."""
        return self._sides[side].rare_keys[account_id]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def bulk_build(
        self,
        signatures_a: dict[str, BlockingSignature],
        signatures_b: dict[str, BlockingSignature],
    ) -> "PairCandidateIndex":
        """(Re)build the index from both platforms' full signature maps.

        The joint term-frequency counter is assembled first, so every
        account's rare words are ranked against the final corpus in one
        pass — the fit-time fast path.
        """
        self.term_freq = Counter()
        self._sides = {s: _Side() for s in _SIDES}
        for signatures in (signatures_a, signatures_b):
            for sig in signatures.values():
                self.term_freq.update(sig.token_counts)
        for side, signatures in (("a", signatures_a), ("b", signatures_b)):
            for account_id in sorted(signatures):
                self._insert(side, account_id, signatures[account_id])
        return self

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(
        self, side: str, account_id: str, signature: BlockingSignature
    ) -> set[SideRef]:
        """Index a new account; returns the affected ``(side, id)`` entries.

        The returned set names every *other* account whose candidate
        relationships may have changed (accounts matching the new one,
        accounts whose rare-word sets were re-ranked, and their style
        partners) plus the new account itself.
        """
        return self.add_batch([(side, account_id, signature)])

    def add_batch(
        self, arrivals: list[tuple[str, str, BlockingSignature]]
    ) -> set[SideRef]:
        """Index a batch of new accounts in one maintenance pass.

        Equivalent to sequential :meth:`add` calls (the final state always
        equals a bulk build over the final accounts) but re-ranks each
        affected existing account at most *once*, against the batch-final
        term frequencies, instead of once per arrival that touches it —
        the growth-only argument makes this exact: an existing account's
        rare set can only change through one of its pre-batch rare words
        gaining frequency, so the pre-batch rare postings of the batch's
        token union bound the affected set.
        """
        for side, account_id, _ in arrivals:
            if account_id in self._sides[side].signatures:
                raise ValueError(
                    f"account {account_id!r} already indexed on side {side!r}"
                )
        changed: dict[str, None] = {}
        for _, _, signature in arrivals:
            self.term_freq.update(signature.token_counts)
            changed.update(dict.fromkeys(signature.token_counts))
        dirty = self._rerank_after_growth(changed)
        for side, account_id, signature in arrivals:
            self._insert(side, account_id, signature)
            dirty.add((side, account_id))
        for side, account_id, _ in arrivals:
            other = self.other_side(side)
            for oid in self.query(side, account_id):
                dirty.add((other, oid))
        return dirty

    def remove(self, side: str, account_id: str) -> set[SideRef]:
        """Un-index an account; returns the affected ``(side, id)`` entries.

        The removed account itself is *not* in the returned set (it no
        longer exists); its pre-removal matches and every rare-word
        re-ranking victim are.
        """
        state = self._sides[side]
        signature = state.signatures.get(account_id)
        if signature is None:
            raise KeyError(f"account {account_id!r} not indexed on side {side!r}")
        other = self.other_side(side)
        dirty: set[SideRef] = {
            (other, oid) for oid in self.query(side, account_id)
        }
        for index in (
            state.bigrams, state.emails, state.media,
            state.rare, state.cells, state.tokens,
        ):
            index.remove(account_id)
        del state.signatures[account_id]
        del state.rare_keys[account_id]
        state.runner_keys.pop(account_id, None)
        self.term_freq.subtract(signature.token_counts)
        changed = [w for w in signature.token_counts if self.term_freq[w] <= 0]
        for word in changed:
            del self.term_freq[word]
        dirty |= self._rerank_after_shrink(signature.token_counts)
        return dirty

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, side: str, account_id: str) -> dict[str, frozenset]:
        """Blocking hits of one indexed account against the other side.

        Returns ``other_account_id -> frozenset of rule names`` — the same
        rule semantics the batch candidate generator applied, evaluated
        through the live indexes.
        """
        state = self._sides[side]
        sig = state.signatures[account_id]
        other = self._sides[self.other_side(side)]
        hits: dict[str, set] = {}

        counts = other.bigrams.query(sig.bigrams)
        n_own = len(sig.bigrams)
        for oid, overlap in counts.items():
            union = n_own + len(other.signatures[oid].bigrams) - overlap
            if union and overlap / union >= self.username_threshold:
                hits.setdefault(oid, set()).add("username")

        if sig.email is not None:
            for oid in other.emails.query((sig.email,)):
                hits.setdefault(oid, set()).add("email")

        for oid, count in other.media.query(sig.media_items).items():
            if count >= self.min_shared_media:
                hits.setdefault(oid, set()).add("media")

        for oid, count in other.rare.query(state.rare_keys[account_id]).items():
            if count >= self.min_shared_rare_words:
                hits.setdefault(oid, set()).add("style")

        if sig.home_cell is not None:
            lat, lon = sig.home_cell
            neighborhood = [
                (lat + d_lat, lon + d_lon)
                for d_lat in (-1, 0, 1)
                for d_lon in (-1, 0, 1)
            ]
            for oid in other.cells.query(neighborhood):
                hits.setdefault(oid, set()).add("location")

        return {oid: frozenset(rules) for oid, rules in hits.items()}

    def ranked(self, side: str, account_id: str) -> list[tuple[str, frozenset]]:
        """The account's budgeted candidate group, strongest evidence first.

        Ranking matches the fit-time generator exactly: evidence count
        descending, username similarity descending, id ascending, truncated
        to ``max_per_account``.
        """
        hits = self.query(side, account_id)
        if not hits:
            return []
        own_name = self._sides[side].signatures[account_id].username
        other = self._sides[self.other_side(side)]
        ranked = sorted(
            hits.items(),
            key=lambda item: (
                -len(item[1]),
                -username_similarity(
                    own_name, other.signatures[item[0]].username
                ),
                item[0],
            ),
        )
        return ranked[: self.max_per_account]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _rank(
        self, signature: BlockingSignature
    ) -> tuple[tuple[str, ...], tuple | None]:
        """Full rare-word ranking against the current joint corpus.

        Returns ``(rare_words, runner_key)`` where ``runner_key`` is the
        sort key of the best token that did *not* make the cut (None when
        every distinct token made it).
        """
        freq = self.term_freq
        top = heapq.nsmallest(
            self.rare_word_count + 1,
            signature.distinct_tokens,
            key=lambda w: (freq[w], w),
        )
        if len(top) > self.rare_word_count:
            runner = top[self.rare_word_count]
            return tuple(top[: self.rare_word_count]), (freq[runner], runner)
        return tuple(top), None

    def _insert(
        self, side: str, account_id: str, signature: BlockingSignature
    ) -> None:
        state = self._sides[side]
        state.signatures[account_id] = signature
        rare, runner = self._rank(signature)
        state.rare_keys[account_id] = rare
        state.runner_keys[account_id] = runner
        state.bigrams.add(account_id, signature.bigrams)
        if signature.email is not None:
            state.emails.add(account_id, (signature.email,))
        state.media.add(account_id, signature.media_items)
        state.rare.add(account_id, rare)
        if signature.home_cell is not None:
            state.cells.add(account_id, (signature.home_cell,))
        state.tokens.add(account_id, signature.distinct_tokens)

    def _rerank_after_growth(self, token_counts: dict) -> set[SideRef]:
        """Re-rank accounts whose *current rare keys* touch grown tokens.

        Frequencies only increased, so a word outside a rare set cannot
        enter it — the rare posting lists bound the affected accounts.
        """
        affected: set[SideRef] = set()
        for side in _SIDES:
            rare_index = self._sides[side].rare
            for word in token_counts:
                for oid in rare_index.postings(word):
                    affected.add((side, oid))
        return self._rerank(affected, grown=True)

    def _rerank_after_shrink(self, token_counts: dict) -> set[SideRef]:
        """Re-rank accounts whose *distinct tokens* touch shrunken tokens.

        Frequencies dropped, so a word may (re-)enter a rare set — the full
        token posting lists are consulted.
        """
        affected: set[SideRef] = set()
        for side in _SIDES:
            token_index = self._sides[side].tokens
            for word in token_counts:
                for oid in token_index.postings(word):
                    affected.add((side, oid))
        return self._rerank(affected, grown=False)

    def _rerank(
        self, candidates: set[SideRef], *, grown: bool
    ) -> set[SideRef]:
        """Recompute rare keys for ``candidates``; return the dirty fallout.

        Every account whose rare-word *set* actually changed is dirty, and
        so is every other-side account sharing a rare word with its old or
        new keys — those are the pairs whose style evidence can flip.  A
        pure reordering (same words, shifted frequencies) updates the stored
        tuple but matches no differently, so it propagates nothing.

        ``grown=True`` (frequencies only increased) enables the barrier fast
        path: non-rare keys never shrink, so as long as every current rare
        word still sorts below the recorded runner-up key, the new ranking
        is just the old set re-sorted — O(R log R) instead of a full pass
        over the account's distinct tokens.  After shrinks the barrier is
        invalid and the full ranking runs.
        """
        dirty: set[SideRef] = set()
        freq = self.term_freq
        for side, account_id in candidates:
            state = self._sides[side]
            old = state.rare_keys[account_id]
            new: tuple[str, ...] | None = None
            if grown and old:
                runner = state.runner_keys.get(account_id)
                keyed = sorted((freq[word], word) for word in old)
                if runner is None or keyed[-1] < runner:
                    new = tuple(word for _, word in keyed)
            if new is None:
                new, runner = self._rank(state.signatures[account_id])
                state.runner_keys[account_id] = runner
            if new == old:
                continue
            state.rare_keys[account_id] = new
            if set(new) != set(old):
                other = self.other_side(side)
                other_rare = self._sides[other].rare
                for oid in other_rare.query(set(old) | set(new)):
                    dirty.add((other, oid))
                state.rare.add(account_id, new)
                dirty.add((side, account_id))
        return dirty
