"""Incremental blocking indexes for online candidate generation.

HYDRA's rule-based filtering (Section 3) was originally a fit-time batch
pass: five blocking rules evaluated once over two frozen platforms.  This
package re-expresses those rules on top of *incremental* inverted indexes so
the same code path serves both regimes:

* :class:`~repro.index.inverted.InvertedIndex` — the mutable key -> account
  postings primitive with ``add(ref, keys)`` / ``remove(ref)`` /
  ``query(keys)``;
* :class:`~repro.index.signatures.BlockingSignature` /
  :class:`~repro.index.signatures.SignatureExtractor` — the pair-independent
  per-account blocking state (username bigrams, email, media fingerprints,
  home grid cell, token statistics);
* :class:`~repro.index.pair.PairCandidateIndex` — one platform pair's five
  rule indexes with exact incremental maintenance: accounts can be added and
  removed after construction, and the index state (including the joint-corpus
  rare-word rule, which is re-ranked on every corpus mutation) always equals
  what a from-scratch bulk build over the current accounts would produce.

:class:`~repro.core.candidates.CandidateGenerator` builds its fit-time
candidate sets through :meth:`PairCandidateIndex.bulk_build`; the serving
layer's ingestion registry (:mod:`repro.serving.registry`) keeps the same
indexes live and feeds mutations through ``add`` / ``remove``.
"""

from repro.index.inverted import InvertedIndex
from repro.index.pair import PairCandidateIndex
from repro.index.signatures import BlockingSignature, SignatureExtractor

__all__ = [
    "BlockingSignature",
    "InvertedIndex",
    "PairCandidateIndex",
    "SignatureExtractor",
]
