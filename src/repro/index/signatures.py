"""Per-account blocking signatures: the pair-independent rule inputs.

A :class:`BlockingSignature` carries everything the five blocking rules need
to know about one account — username bigrams, email, down-sampled media
fingerprints, the median-check-in home grid cell, and the account's token
statistics (full term counts for joint-corpus frequency bookkeeping, the
distinct-token list for rare-word ranking).  Signatures are immutable once
extracted: ingestion adds and removes whole accounts, it never edits one.

:class:`SignatureExtractor` computes signatures straight from platform data;
:class:`~repro.core.candidates.CandidateGenerator` uses it for its fit-time
per-platform signature cache, and the serving registry uses it account by
account when new identities arrive.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.datagen.media import item_of
from repro.socialnet.platform import PlatformData
from repro.text.tokenizer import Tokenizer

__all__ = ["BlockingSignature", "SignatureExtractor"]


@dataclass(frozen=True)
class BlockingSignature:
    """One account's blocking-rule inputs.

    ``token_counts`` is the account's full token multiset (as a plain dict)
    — the unit of joint-corpus term-frequency bookkeeping — and
    ``distinct_tokens`` its sorted distinct-token tuple, the candidate pool
    for rare-word ranking.
    """

    username: str
    bigrams: frozenset[str]
    email: str | None
    media_items: frozenset[int]
    home_cell: tuple[int, int] | None
    token_counts: dict
    distinct_tokens: tuple[str, ...]


class SignatureExtractor:
    """Computes :class:`BlockingSignature` objects from platform data.

    Parameters
    ----------
    grid_degrees:
        Cell size of the home-location grid.
    tokenizer:
        Tokenizer for the account's posts (shared with the candidate
        generator so token statistics agree).
    """

    def __init__(
        self, *, grid_degrees: float = 0.05, tokenizer: Tokenizer | None = None
    ):
        if grid_degrees <= 0:
            raise ValueError(f"grid_degrees must be > 0, got {grid_degrees}")
        self.grid_degrees = grid_degrees
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()

    @staticmethod
    def username_bigrams(name: str) -> frozenset[str]:
        """Padded character bigrams of a (lowercased) username."""
        padded = f"^{name.lower()}$"
        return frozenset(padded[i : i + 2] for i in range(len(padded) - 1))

    def home_cell(
        self, platform: PlatformData, account_id: str
    ) -> tuple[int, int] | None:
        """Median check-in coordinates snapped to the grid, or None."""
        coords = platform.events.payloads_for(account_id, "checkin")
        if not coords:
            return None
        arr = np.asarray(coords, dtype=float)
        lat, lon = np.median(arr[:, 0]), np.median(arr[:, 1])
        return (
            int(np.floor(lat / self.grid_degrees)),
            int(np.floor(lon / self.grid_degrees)),
        )

    def signature(
        self, platform: PlatformData, account_id: str
    ) -> BlockingSignature:
        """Extract one account's signature from its platform."""
        tokens: list[str] = []
        for text in platform.events.texts_of(account_id):
            tokens.extend(self.tokenizer.tokenize(text))
        counts = Counter(tokens)
        profile = platform.accounts[account_id].profile
        media = frozenset(
            item_of(int(f))
            for f in platform.events.payloads_for(account_id, "media")
        )
        return BlockingSignature(
            username=profile.username,
            bigrams=self.username_bigrams(profile.username),
            email=profile.email,
            media_items=media,
            home_cell=self.home_cell(platform, account_id),
            token_counts=dict(counts),
            distinct_tokens=tuple(sorted(counts)),
        )

    def platform_signatures(
        self, platform: PlatformData
    ) -> dict[str, BlockingSignature]:
        """Signatures for every account on ``platform`` (sorted id order)."""
        return {
            account_id: self.signature(platform, account_id)
            for account_id in platform.account_ids()
        }
