"""Re-implementations of the paper's comparison methods (Section 7.1).

* :class:`MobiusBaseline` — MOBIUS [32], "a behavior-modeling approach to
  link users across social media platforms" built on username behavioral
  features (Zafarani & Liu, KDD'13);
* :class:`AliasDisambBaseline` — Alias-Disamb [16], "an unsupervised
  data-driven approach based on username analysis" exploiting username
  rarity (Liu et al., WSDM'13);
* :class:`SmashBaseline` — SMaSh [11], "a record linkage approach finding
  linkage points over Web data" (Hassanzadeh et al., PVLDB'13);
* :class:`SvmBBaseline` — SVM-B, "binary prediction on user pairs using
  support vector machines on the proposed similarity calculation schemes".

All baselines implement the interface of
:class:`repro.baselines.common.BaselineLinker` and share HYDRA's candidate
generation so comparisons isolate the *linkage model*, not the blocking.
"""

from repro.baselines.common import BaselineLinker
from repro.baselines.mobius import MobiusBaseline, username_feature_vector
from repro.baselines.alias_disamb import AliasDisambBaseline
from repro.baselines.smash import SmashBaseline
from repro.baselines.svm_b import SvmBBaseline

__all__ = [
    "BaselineLinker",
    "MobiusBaseline",
    "username_feature_vector",
    "AliasDisambBaseline",
    "SmashBaseline",
    "SvmBBaseline",
]
