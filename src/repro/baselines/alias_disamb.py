"""Alias-Disamb baseline: unsupervised username-rarity linkage (Liu et al.,
WSDM 2013, "What's in a name?").

The WSDM'13 approach links accounts whose usernames are both *similar* and
*rare*: a match on "john" is weak evidence (millions of Johns), a match on
"xX_adele_spain_Xx" is strong.  Rarity is estimated with a character n-gram
language model over the observed username population — exactly the paper's
"uniqueness (n-gram probability) of user names" — and the pair score is

    score(u, v) = similarity(u, v) * (1 - sqrt(P(u) * P(v)))

where ``P`` is the length-normalized n-gram probability.  No labels are used
(the method is unsupervised); the decision threshold is a fixed operating
point on the [0, 1] score.

HYDRA's paper notes this self-labeling strategy yields noisy training pairs
(~75 % precision) and an "extremely large quadratic programming problem";
our efficiency experiment models that by giving Alias-Disamb a quadratic
cost component in its self-generated pair set.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.baselines.common import BaselineLinker, Pair
from repro.features.attributes import username_similarity
from repro.socialnet.platform import SocialWorld

__all__ = ["NgramLanguageModel", "AliasDisambBaseline"]


class NgramLanguageModel:
    """Character n-gram model with add-one smoothing for username rarity.

    ``probability`` returns the per-character geometric-mean n-gram
    probability, a length-normalized commonness in (0, 1): common names built
    from frequent n-grams score high, eccentric ones low.
    """

    def __init__(self, n: int = 2):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self._counts: Counter[str] = Counter()
        self._total = 0

    def fit(self, names: list[str]) -> "NgramLanguageModel":
        """Count n-grams over the username population."""
        for name in names:
            for gram in self._grams(name):
                self._counts[gram] += 1
                self._total += 1
        return self

    def _grams(self, name: str) -> list[str]:
        padded = f"^{name.lower()}$"
        if len(padded) < self.n:
            return [padded]
        return [padded[i : i + self.n] for i in range(len(padded) - self.n + 1)]

    def probability(self, name: str) -> float:
        """Length-normalized n-gram probability (commonness) in (0, 1)."""
        grams = self._grams(name)
        if not grams or self._total == 0:
            return 0.5
        vocab = max(len(self._counts), 1)
        log_prob = 0.0
        for gram in grams:
            log_prob += np.log(
                (self._counts.get(gram, 0) + 1.0) / (self._total + vocab)
            )
        return float(np.exp(log_prob / len(grams)))


class AliasDisambBaseline(BaselineLinker):
    """Unsupervised username-analysis linkage.

    Parameters
    ----------
    threshold:
        Operating point on the [0, 1] rarity-weighted similarity score.
    """

    name = "Alias-Disamb"

    def __init__(self, *, threshold: float = 0.25, **kwargs):
        kwargs.setdefault("threshold", threshold)
        super().__init__(**kwargs)
        self._model = NgramLanguageModel(n=2)
        # scale chosen so typical commonness values spread over (0, 1)
        self._rarity_scale: float = 1.0

    def _fit_impl(
        self,
        world: SocialWorld,
        labeled_positive: list[Pair],
        labeled_negative: list[Pair],
    ) -> None:
        # unsupervised: labels are intentionally ignored
        names = [
            account.profile.username for account in world.iter_accounts()
        ]
        self._model.fit(names)
        commonness = np.array([self._model.probability(n) for n in names])
        # calibrate so the median name sits at commonness 0.5
        median = float(np.median(commonness))
        self._rarity_scale = 0.5 / max(median, 1e-9)

    def _rarity(self, name: str) -> float:
        commonness = min(self._model.probability(name) * self._rarity_scale, 1.0)
        return 1.0 - commonness

    def score_pairs(self, pairs: list[Pair]) -> np.ndarray:
        assert self._world is not None
        scores = np.zeros(len(pairs))
        for idx, ((pa, ida), (pb, idb)) in enumerate(pairs):
            name_a = self._world.platforms[pa].accounts[ida].profile.username
            name_b = self._world.platforms[pb].accounts[idb].profile.username
            sim = username_similarity(name_a, name_b)
            rarity = float(np.sqrt(self._rarity(name_a) * self._rarity(name_b)))
            scores[idx] = sim * rarity
        return scores

    def self_labeled_pairs(self) -> list[tuple[Pair, float]]:
        """The method's auto-generated training pairs with their scores.

        WSDM'13 bootstraps a classifier from these; HYDRA's paper measures
        their precision at ~75 %.  Exposed for the label-quality experiment.
        """
        out: list[tuple[Pair, float]] = []
        for cand in self.candidates_.values():
            scores = self.score_pairs(cand.pairs)
            for pair, score in zip(cand.pairs, scores):
                if score > self.threshold:
                    out.append((pair, float(score)))
        return out
