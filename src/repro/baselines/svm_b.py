"""SVM-B baseline: plain SVM on HYDRA's similarity vectors (Section 7.1 (IV)).

"Binary prediction on user pairs using support vector machines on the
proposed similarity calculation schemes."  SVM-B corresponds exactly to the
``F_D`` objective alone — it shares the heterogeneous behavior features but
has neither the structure consistency objective nor the core-structure
missing-data fill (missing features are zero-filled, the previous-work
convention the paper critiques).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import BaselineLinker, Pair
from repro.core.svm import LinearSVM
from repro.features.missing import ZeroFiller
from repro.features.pipeline import FeaturePipeline
from repro.socialnet.platform import SocialWorld

__all__ = ["SvmBBaseline"]


class SvmBBaseline(BaselineLinker):
    """Linear SVM over the Section 5 similarity vectors.

    Parameters
    ----------
    pipeline:
        Optionally inject a pre-configured (unfitted) feature pipeline —
        the eval harness passes the same configuration HYDRA uses so the
        comparison isolates the learning objective.
    """

    name = "SVM-B"

    def __init__(
        self,
        *,
        gamma_l: float = 0.01,
        iterations: int = 1000,
        pipeline: FeaturePipeline | None = None,
        num_topics: int = 12,
        max_lda_docs: int = 6000,
        seed: int = 0,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self._svm = LinearSVM(gamma_l=gamma_l, iterations=iterations)
        self.pipeline = (
            pipeline
            if pipeline is not None
            else FeaturePipeline(num_topics=num_topics, max_lda_docs=max_lda_docs, seed=seed)
        )
        self._filler = ZeroFiller()

    def _fit_impl(
        self,
        world: SocialWorld,
        labeled_positive: list[Pair],
        labeled_negative: list[Pair],
    ) -> None:
        if not labeled_positive or not labeled_negative:
            raise ValueError("SVM-B requires labeled pairs of both classes")
        self.pipeline.fit(world, list(labeled_positive), list(labeled_negative))
        pairs = list(labeled_positive) + list(labeled_negative)
        x = self._filler.fill_matrix(pairs, self.pipeline.matrix(pairs))
        y = np.array([1.0] * len(labeled_positive) + [-1.0] * len(labeled_negative))
        self._svm.fit(x, y)

    def score_pairs(self, pairs: list[Pair]) -> np.ndarray:
        if not pairs:
            return np.zeros(0)
        x = self._filler.fill_matrix(pairs, self.pipeline.matrix(pairs))
        return self._svm.decision_function(x)
