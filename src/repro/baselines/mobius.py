"""MOBIUS baseline: behavioral username modeling (Zafarani & Liu, KDD 2013).

MOBIUS links identities from *usernames alone*, on the premise that users
exhibit consistent behavioral patterns when creating usernames — habits of
length, alphabet, decoration, and reuse.  Our reconstruction extracts the
published feature families that apply to a username pair and trains a linear
classifier on labeled pairs:

* exact/lower-case equality, substring containment;
* normalized edit distance and longest-common-substring ratio;
* character-bigram Jaccard;
* length difference and length sum;
* alphabet-distribution cosine similarity;
* digit-fraction and special-character-fraction agreement;
* shared prefix/suffix lengths.

It sees none of the content, trajectory or structure signals, which is why
the paper finds it brittle on platforms where usernames are unreliable.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import BaselineLinker, Pair
from repro.core.svm import LinearSVM
from repro.socialnet.platform import SocialWorld

__all__ = ["username_feature_vector", "MobiusBaseline", "USERNAME_FEATURE_NAMES"]

USERNAME_FEATURE_NAMES: tuple[str, ...] = (
    "exact_match",
    "contains",
    "edit_similarity",
    "lcs_ratio",
    "bigram_jaccard",
    "length_diff",
    "length_sum",
    "alphabet_cosine",
    "digit_fraction_agreement",
    "special_fraction_agreement",
    "common_prefix",
    "common_suffix",
)


def _edit_distance(a: str, b: str) -> int:
    """Classic Levenshtein distance (iterative two-row DP)."""
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def _longest_common_substring(a: str, b: str) -> int:
    """Length of the longest common contiguous substring."""
    if not a or not b:
        return 0
    best = 0
    lengths = [0] * (len(b) + 1)
    for ch_a in a:
        new_lengths = [0] * (len(b) + 1)
        for j, ch_b in enumerate(b, start=1):
            if ch_a == ch_b:
                new_lengths[j] = lengths[j - 1] + 1
                best = max(best, new_lengths[j])
        lengths = new_lengths
    return best


def _alphabet_distribution(name: str) -> np.ndarray:
    """Distribution over 26 letters + digit bucket + other bucket."""
    counts = np.zeros(28)
    for ch in name.lower():
        if "a" <= ch <= "z":
            counts[ord(ch) - ord("a")] += 1
        elif ch.isdigit():
            counts[26] += 1
        else:
            counts[27] += 1
    total = counts.sum()
    return counts / total if total else counts


def _fraction(name: str, predicate) -> float:
    if not name:
        return 0.0
    return sum(1 for ch in name if predicate(ch)) / len(name)


def username_feature_vector(name_a: str, name_b: str) -> np.ndarray:
    """The MOBIUS-style feature vector for one username pair."""
    a = name_a.lower()
    b = name_b.lower()
    max_len = max(len(a), len(b), 1)
    edit_sim = 1.0 - _edit_distance(a, b) / max_len
    lcs = _longest_common_substring(a, b) / max_len
    grams_a = {a[i : i + 2] for i in range(max(len(a) - 1, 0))} or {a}
    grams_b = {b[i : i + 2] for i in range(max(len(b) - 1, 0))} or {b}
    jaccard = len(grams_a & grams_b) / len(grams_a | grams_b)
    dist_a = _alphabet_distribution(a)
    dist_b = _alphabet_distribution(b)
    denom = float(np.linalg.norm(dist_a) * np.linalg.norm(dist_b))
    cosine = float(dist_a @ dist_b) / denom if denom else 0.0
    digit_agreement = 1.0 - abs(
        _fraction(a, str.isdigit) - _fraction(b, str.isdigit)
    )
    special_agreement = 1.0 - abs(
        _fraction(a, lambda c: not c.isalnum()) - _fraction(b, lambda c: not c.isalnum())
    )
    prefix = 0
    for ch_a, ch_b in zip(a, b):
        if ch_a != ch_b:
            break
        prefix += 1
    suffix = 0
    for ch_a, ch_b in zip(reversed(a), reversed(b)):
        if ch_a != ch_b:
            break
        suffix += 1
    return np.array(
        [
            1.0 if a == b else 0.0,
            1.0 if (a and b and (a in b or b in a)) else 0.0,
            edit_sim,
            lcs,
            jaccard,
            abs(len(a) - len(b)) / max_len,
            (len(a) + len(b)) / 2.0 / 20.0,  # normalized by a typical max length
            cosine,
            digit_agreement,
            special_agreement,
            prefix / max_len,
            suffix / max_len,
        ]
    )


class MobiusBaseline(BaselineLinker):
    """Username-behavior classifier over candidate pairs."""

    name = "MOBIUS"

    def __init__(self, *, gamma_l: float = 0.05, iterations: int = 800, **kwargs):
        super().__init__(**kwargs)
        self._svm = LinearSVM(gamma_l=gamma_l, iterations=iterations)

    def _pair_features(self, pairs: list[Pair]) -> np.ndarray:
        assert self._world is not None
        rows = []
        for (pa, ida), (pb, idb) in pairs:
            name_a = self._world.platforms[pa].accounts[ida].profile.username
            name_b = self._world.platforms[pb].accounts[idb].profile.username
            rows.append(username_feature_vector(name_a, name_b))
        return np.vstack(rows) if rows else np.zeros((0, len(USERNAME_FEATURE_NAMES)))

    def _fit_impl(
        self,
        world: SocialWorld,
        labeled_positive: list[Pair],
        labeled_negative: list[Pair],
    ) -> None:
        if not labeled_positive or not labeled_negative:
            raise ValueError("MOBIUS requires labeled pairs of both classes")
        x = self._pair_features(list(labeled_positive) + list(labeled_negative))
        y = np.array([1.0] * len(labeled_positive) + [-1.0] * len(labeled_negative))
        self._svm.fit(x, y)

    def score_pairs(self, pairs: list[Pair]) -> np.ndarray:
        if not pairs:
            return np.zeros(0)
        return self._svm.decision_function(self._pair_features(pairs))
