"""SMaSh baseline: linkage-point discovery (Hassanzadeh et al., PVLDB 2013).

SMaSh discovers *linkage points* between two data sources: attribute (pairs)
whose value overlap is both substantial (coverage) and identifying
(strength — a shared value should pin down few records on each side).  Records
agreeing on a strong linkage point are linked.

Our reconstruction evaluates a library of candidate linkage points over the
two platforms' profile tables:

* normalized username;
* email;
* (birth, city-grid) composite;
* tag set (sorted tuple);
* (edu, job) composite.

For each point we measure coverage (fraction of accounts with the value
present on both sides) and strength (mean ``1 / (|left bucket| * |right
bucket|)`` over shared values); points above the strength floor become active,
and a candidate pair's score is the best active point's strength among points
it agrees on.  The method is schema-driven and unsupervised — exactly why it
misses behavior-only linkable users.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

import numpy as np

from repro.baselines.common import BaselineLinker, Pair
from repro.socialnet.platform import PlatformData, Profile, SocialWorld

__all__ = ["SmashBaseline", "LINKAGE_POINT_EXTRACTORS"]


def _lp_username(profile: Profile) -> str | None:
    name = profile.username.lower()
    # strip decoration: digits and non-alphanumerics collapse away
    core = "".join(ch for ch in name if ch.isalpha())
    return core or None


def _lp_email(profile: Profile) -> str | None:
    return profile.email


def _lp_birth_city(profile: Profile) -> str | None:
    # city is not a tracked attribute in our Profile; birth + gender composite
    if profile.birth is None or profile.gender is None:
        return None
    return f"{profile.birth}|{profile.gender}"


def _lp_tags(profile: Profile) -> str | None:
    if not profile.tag:
        return None
    return "|".join(sorted(profile.tag))


def _lp_edu_job(profile: Profile) -> str | None:
    if profile.edu is None or profile.job is None:
        return None
    return f"{profile.edu}|{profile.job}"


#: Candidate linkage points: name -> value extractor over profiles.
LINKAGE_POINT_EXTRACTORS: dict[str, Callable[[Profile], str | None]] = {
    "username_core": _lp_username,
    "email": _lp_email,
    "birth_gender": _lp_birth_city,
    "tags": _lp_tags,
    "edu_job": _lp_edu_job,
}


class SmashBaseline(BaselineLinker):
    """Linkage-point record linkage over profile attributes.

    Parameters
    ----------
    strength_floor:
        Minimum strength for a linkage point to become active.
    min_coverage:
        Minimum fraction of accounts carrying the attribute on each side.
    """

    name = "SMaSh"

    def __init__(
        self, *, strength_floor: float = 0.3, min_coverage: float = 0.05, **kwargs
    ):
        kwargs.setdefault("threshold", 0.0)
        super().__init__(**kwargs)
        self.strength_floor = strength_floor
        self.min_coverage = min_coverage
        # (platform_a, platform_b) -> {point name -> strength}
        self.active_points_: dict[tuple[str, str], dict[str, float]] = {}
        self._value_maps: dict[
            tuple[str, str], dict[str, dict[str, list[str]]]
        ] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _values(
        platform: PlatformData, extractor: Callable[[Profile], str | None]
    ) -> dict[str, list[str]]:
        buckets: dict[str, list[str]] = defaultdict(list)
        for account_id in platform.account_ids():
            value = extractor(platform.accounts[account_id].profile)
            if value is not None:
                buckets[value].append(account_id)
        return buckets

    def _evaluate_point(
        self,
        buckets_a: dict[str, list[str]],
        buckets_b: dict[str, list[str]],
        n_a: int,
        n_b: int,
    ) -> tuple[float, float]:
        """Return (coverage, strength) of one candidate linkage point."""
        covered_a = sum(len(v) for v in buckets_a.values())
        covered_b = sum(len(v) for v in buckets_b.values())
        coverage = min(covered_a / max(n_a, 1), covered_b / max(n_b, 1))
        shared = set(buckets_a) & set(buckets_b)
        if not shared:
            return coverage, 0.0
        strengths = [
            1.0 / (len(buckets_a[v]) * len(buckets_b[v])) for v in shared
        ]
        return coverage, float(np.mean(strengths))

    def _fit_impl(
        self,
        world: SocialWorld,
        labeled_positive: list[Pair],
        labeled_negative: list[Pair],
    ) -> None:
        # unsupervised: discovers linkage points from the data sources alone
        self.active_points_ = {}
        self._value_maps = {}
        for pa, pb in self.platform_pairs_:
            plat_a = world.platforms[pa]
            plat_b = world.platforms[pb]
            active: dict[str, float] = {}
            maps: dict[str, dict[str, list[str]]] = {}
            for point, extractor in LINKAGE_POINT_EXTRACTORS.items():
                buckets_a = self._values(plat_a, extractor)
                buckets_b = self._values(plat_b, extractor)
                coverage, strength = self._evaluate_point(
                    buckets_a, buckets_b, len(plat_a), len(plat_b)
                )
                if coverage >= self.min_coverage and strength >= self.strength_floor:
                    active[point] = strength
                    maps[point] = buckets_a  # left-side map reused at scoring
            self.active_points_[(pa, pb)] = active
            self._value_maps[(pa, pb)] = maps

    def score_pairs(self, pairs: list[Pair]) -> np.ndarray:
        assert self._world is not None
        scores = np.zeros(len(pairs))
        for idx, ((pa, ida), (pb, idb)) in enumerate(pairs):
            key = (pa, pb)
            active = self.active_points_.get(key)
            if active is None:
                active = self.active_points_.get((pb, pa), {})
            prof_a = self._world.platforms[pa].accounts[ida].profile
            prof_b = self._world.platforms[pb].accounts[idb].profile
            best = 0.0
            for point, strength in active.items():
                extractor = LINKAGE_POINT_EXTRACTORS[point]
                value_a = extractor(prof_a)
                value_b = extractor(prof_b)
                if value_a is not None and value_a == value_b:
                    best = max(best, strength)
            scores[idx] = best
        return scores
