"""Shared baseline interface and linkage-resolution helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.candidates import CandidateGenerator, CandidateSet
from repro.core.hydra import LinkageResult
from repro.socialnet.platform import SocialWorld

__all__ = ["BaselineLinker"]

AccountRef = tuple[str, str]
Pair = tuple[AccountRef, AccountRef]


class BaselineLinker(ABC):
    """Base class for comparison methods.

    Subclasses implement :meth:`_fit_impl` (train whatever internal model the
    method uses) and :meth:`score_pairs`.  Candidate generation, threshold
    application and one-to-one resolution are shared so every method answers
    the same question on the same candidates.

    Parameters
    ----------
    threshold:
        Score cut for asserting a link (method-specific scale).
    one_to_one:
        Greedy one-to-one resolution of the final linkage.
    candidate_generator:
        Blocking; defaults to HYDRA's.  The eval harness injects a shared,
        pre-generated candidate dict to keep comparisons identical.
    """

    name: str = "baseline"

    def __init__(
        self,
        *,
        threshold: float = 0.0,
        one_to_one: bool = True,
        candidate_generator: CandidateGenerator | None = None,
    ):
        self.threshold = threshold
        self.one_to_one = one_to_one
        self.candidate_generator = (
            candidate_generator if candidate_generator is not None else CandidateGenerator()
        )
        self.candidates_: dict[tuple[str, str], CandidateSet] = {}
        self._world: SocialWorld | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        world: SocialWorld,
        labeled_positive: list[Pair],
        labeled_negative: list[Pair],
        platform_pairs: list[tuple[str, str]] | None = None,
        *,
        candidates: dict[tuple[str, str], CandidateSet] | None = None,
    ) -> "BaselineLinker":
        """Generate (or adopt) candidates, then train the method's model."""
        self._world = world
        if platform_pairs is None:
            names = world.platform_names()
            platform_pairs = [
                (names[i], names[j])
                for i in range(len(names))
                for j in range(i + 1, len(names))
            ]
        self.platform_pairs_ = platform_pairs
        if candidates is not None:
            self.candidates_ = dict(candidates)
        else:
            self.candidates_ = {
                (pa, pb): self.candidate_generator.generate(world, pa, pb)
                for pa, pb in platform_pairs
            }
        self._fit_impl(world, labeled_positive, labeled_negative)
        return self

    @abstractmethod
    def _fit_impl(
        self,
        world: SocialWorld,
        labeled_positive: list[Pair],
        labeled_negative: list[Pair],
    ) -> None:
        """Train internal state; candidates are available in ``candidates_``."""

    @abstractmethod
    def score_pairs(self, pairs: list[Pair]) -> np.ndarray:
        """Linkage scores for arbitrary cross-platform pairs."""

    # ------------------------------------------------------------------
    def linkage(self, platform_a: str, platform_b: str) -> LinkageResult:
        """Score this platform pair's candidates and resolve the linkage."""
        if self._world is None:
            raise RuntimeError("baseline is not fitted; call fit() first")
        key = (platform_a, platform_b)
        flipped = False
        if key not in self.candidates_:
            key = (platform_b, platform_a)
            flipped = True
            if key not in self.candidates_:
                raise KeyError(
                    f"platform pair ({platform_a}, {platform_b}) was not fitted"
                )
        cand = self.candidates_[key]
        scores = self.score_pairs(cand.pairs)
        oriented = [(b, a) for a, b in cand.pairs] if flipped else list(cand.pairs)
        result = LinkageResult(
            platform_a=platform_a,
            platform_b=platform_b,
            pairs=oriented,
            scores=scores,
        )
        passing = sorted(
            ((float(scores[i]), i) for i in range(len(oriented))
             if scores[i] > self.threshold),
            key=lambda t: (-t[0], t[1]),
        )
        used_a: set[str] = set()
        used_b: set[str] = set()
        linked: list[Pair] = []
        linked_scores: list[float] = []
        for score, idx in passing:
            ref_a, ref_b = oriented[idx]
            if self.one_to_one and (ref_a[1] in used_a or ref_b[1] in used_b):
                continue
            used_a.add(ref_a[1])
            used_b.add(ref_b[1])
            linked.append((ref_a, ref_b))
            linked_scores.append(score)
        result.linked = linked
        result.linked_scores = np.asarray(linked_scores)
        return result
