"""Serialized account state carried inside WAL ingest records.

An :class:`AccountPayload` is everything
:meth:`~repro.socialnet.platform.PlatformData.ingest_account` needs to
re-enact one account's arrival into a *recovered* world: the account
(profile included), its behavior events, its social-graph interactions,
and its identity-oracle entry.  :func:`capture_payload` reads that state
out of the live world at append time — so the log is self-contained and
recovery never depends on the crashed process's memory —
and :func:`apply_payload` replays it into another world.

A JSON codec (:func:`payload_to_json` / :func:`payload_from_json`) lets
the gateway accept account state *inline* over ``POST /ingest``, which
is what a remote chaos driver uses to feed a gateway subprocess accounts
its artifact has never seen.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.socialnet.platform import Account, Profile, SocialWorld
from repro.socialnet.storage import EVENT_KINDS, BehaviorEvent

__all__ = [
    "AccountPayload",
    "apply_payload",
    "capture_payload",
    "payload_from_json",
    "payload_to_json",
]


@dataclass(frozen=True)
class AccountPayload:
    """One account's world state, sufficient to replay its arrival."""

    account: Account
    events: tuple[BehaviorEvent, ...]
    interactions: tuple[tuple[str, float], ...]
    identity: int | None

    @property
    def ref(self) -> tuple[str, str]:
        return (self.account.platform, self.account.account_id)


def capture_payload(world: SocialWorld, ref) -> AccountPayload:
    """Read one account's full state out of ``world``."""
    platform, account_id = ref
    data = world.platforms[platform]
    account = data.accounts[account_id]
    events = tuple(
        event
        for kind in EVENT_KINDS
        for event in data.events.events_for(account_id, kind)
    )
    interactions = tuple(
        (other, data.graph.weight(account_id, other))
        for other in data.graph.neighbors(account_id)
    )
    return AccountPayload(
        account=account,
        events=events,
        interactions=interactions,
        identity=world.identity.get((platform, account_id)),
    )


def apply_payload(world: SocialWorld, payload: AccountPayload) -> tuple[str, str]:
    """Re-enact the account's arrival into ``world``; returns its ref.

    Already-registered accounts are left untouched (replay after a crash
    may race a base artifact that absorbed the world mutation but not the
    serving one; registration is idempotent here so replay converges).
    Graph interactions are restricted to accounts present in the target
    world, mirroring :func:`~repro.socialnet.platform.transplant_account`.
    """
    platform, account_id = payload.ref
    data = world.platforms[platform]
    if account_id not in data.accounts:
        interactions = [
            (other, weight)
            for other, weight in payload.interactions
            if other in data.accounts
        ]
        data.ingest_account(payload.account, payload.events, interactions)
        if payload.identity is not None:
            world.identity[(platform, account_id)] = payload.identity
    return (platform, account_id)


# ----------------------------------------------------------------------
# JSON codec (inline accounts over POST /ingest)
# ----------------------------------------------------------------------
def payload_to_json(payload: AccountPayload) -> dict:
    """A JSON-safe dict mirror of ``payload`` (numpy arrays to lists)."""
    profile = payload.account.profile
    face = profile.face_embedding
    return {
        "platform": payload.account.platform,
        "account_id": payload.account.account_id,
        "profile": {
            "username": profile.username,
            "gender": profile.gender,
            "birth": profile.birth,
            "bio": profile.bio,
            "tag": list(profile.tag) if profile.tag is not None else None,
            "edu": profile.edu,
            "job": profile.job,
            "email": profile.email,
            "face_embedding": (
                [float(x) for x in face] if face is not None else None
            ),
            "face_is_real": profile.face_is_real,
        },
        "events": [
            [event.kind, event.timestamp,
             list(event.payload) if isinstance(event.payload, tuple)
             else event.payload]
            for event in payload.events
        ],
        "interactions": [
            [other, weight] for other, weight in payload.interactions
        ],
        "identity": payload.identity,
    }


def payload_from_json(raw: dict) -> AccountPayload:
    """Decode :func:`payload_to_json` output back into a payload."""
    if not isinstance(raw, dict):
        raise ValueError(f"account payload must be an object, got {raw!r}")
    for key in ("platform", "account_id", "profile"):
        if key not in raw:
            raise ValueError(f"account payload missing field {key!r}")
    profile_raw = dict(raw["profile"])
    tag = profile_raw.get("tag")
    face = profile_raw.get("face_embedding")
    profile = Profile(
        username=profile_raw["username"],
        gender=profile_raw.get("gender"),
        birth=profile_raw.get("birth"),
        bio=profile_raw.get("bio"),
        tag=tuple(tag) if tag is not None else None,
        edu=profile_raw.get("edu"),
        job=profile_raw.get("job"),
        email=profile_raw.get("email"),
        face_embedding=(
            np.asarray(face, dtype=float) if face is not None else None
        ),
        face_is_real=bool(profile_raw.get("face_is_real", True)),
    )
    account = Account(
        account_id=raw["account_id"], platform=raw["platform"],
        profile=profile,
    )
    events = []
    for kind, timestamp, event_payload in raw.get("events", []):
        if kind == "checkin" and isinstance(event_payload, list):
            event_payload = tuple(float(x) for x in event_payload)
        events.append(
            BehaviorEvent(
                account_id=account.account_id, kind=kind,
                timestamp=float(timestamp), payload=event_payload,
            )
        )
    interactions = tuple(
        (other, float(weight))
        for other, weight in raw.get("interactions", [])
    )
    identity = raw.get("identity")
    return AccountPayload(
        account=account,
        events=tuple(events),
        interactions=interactions,
        identity=int(identity) if identity is not None else None,
    )
