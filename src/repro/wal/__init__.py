"""Durable ingest write-ahead logging, crash recovery, fault injection.

The serving stack's robustness layer (ROADMAP: "Replicated ingest log
and zero-downtime updates"): :class:`WriteAheadLog` persists every
online mutation before it applies (:mod:`repro.wal.log`),
:func:`recover` rebuilds the exact pre-crash service from artifact +
log (:mod:`repro.wal.recovery`), and :mod:`repro.wal.faults` provides
the armed crash/torn-write sites the chaos harness uses to prove both.
"""

from repro.wal.faults import FaultInjected, arm, arm_from_env, reset, trip
from repro.wal.log import (
    FSYNC_POLICIES,
    RecoveredLog,
    SegmentInfo,
    WalError,
    WalRecord,
    WriteAheadLog,
    read_wal,
    segment_stats,
)
from repro.wal.tail import (
    TailBatch,
    WalCursor,
    load_cursor,
    save_cursor,
    tail_read,
)
from repro.wal.payload import (
    AccountPayload,
    apply_payload,
    capture_payload,
    payload_from_json,
    payload_to_json,
)
from repro.wal.recovery import (
    RecoveryError,
    RecoveryResult,
    recover,
    replay_records,
    replay_wal_delta,
)

__all__ = [
    "AccountPayload",
    "FSYNC_POLICIES",
    "FaultInjected",
    "RecoveredLog",
    "RecoveryError",
    "RecoveryResult",
    "SegmentInfo",
    "TailBatch",
    "WalCursor",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "apply_payload",
    "arm",
    "arm_from_env",
    "capture_payload",
    "load_cursor",
    "payload_from_json",
    "payload_to_json",
    "read_wal",
    "recover",
    "replay_records",
    "replay_wal_delta",
    "reset",
    "save_cursor",
    "segment_stats",
    "tail_read",
]
