"""Reconstructing a service from a base artifact plus the WAL delta.

:func:`recover` is the crash-recovery entry point (also behind
``repro recover``): load the persisted artifact, replay every effective
logged mutation with an epoch newer than the artifact's, and come back
at the exact pre-crash registry epoch — bit-identical to a service that
never crashed, because ingestion is order- and batch-independent (each
account's derived featurization state is keyed to the account, not the
arrival order) and replay applies the very account payloads the live
service logged.

:func:`replay_wal_delta` is the same replay used *online* by the
gateway's blue/green ``POST /swap``: a freshly loaded refit artifact is
caught up with the mutations the live service absorbed since the refit
snapshot, then takes over serving.  Because a refit restarts epochs at
0 while the log keeps the live service's numbering, replay *adopts* each
record's epoch after applying it — the WAL is the authority on what
``registry_epoch`` means across artifacts and restarts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.service import LinkageService
from repro.wal.log import WalRecord, WriteAheadLog, read_wal
from repro.wal.payload import apply_payload

__all__ = [
    "RecoveryError",
    "RecoveryResult",
    "recover",
    "replay_records",
    "replay_wal_delta",
]


class RecoveryError(RuntimeError):
    """Replay diverged from the logged history."""


@dataclass(frozen=True)
class RecoveryResult:
    """What :func:`recover` reconstructed."""

    service: LinkageService
    base_epoch: int
    recovered_epoch: int
    records_replayed: int
    truncated_tail: bool


def _apply_record(service: LinkageService, record: WalRecord) -> None:
    if record.op == "ingest":
        for payload in record.payloads or ():
            apply_payload(service.world, payload)
        service.add_accounts([tuple(ref) for ref in record.refs], score=False)
    elif record.op == "remove":
        (ref,) = record.refs
        service.remove_account(tuple(ref))
    else:
        raise RecoveryError(f"cannot replay record op {record.op!r}")


def replay_records(
    service: LinkageService, records, *, after_epoch: int
) -> tuple[int, int]:
    """Apply effective ``records`` newer than ``after_epoch`` in order.

    Returns ``(last_applied_epoch, records_applied)``.  Each record must
    advance the service by exactly one mutation; the record's logged
    epoch is then adopted as the service epoch (see module docstring).
    The service must not have a WAL attached while replaying — replay
    re-appending its own input would double the log.
    """
    if service.wal is not None:
        raise RecoveryError("detach the service WAL before replaying into it")
    applied = after_epoch
    count = 0
    for record in records:
        if record.epoch <= applied:
            continue
        before = service.registry_epoch
        _apply_record(service, record)
        if service.registry_epoch != before + 1:
            raise RecoveryError(
                f"replaying epoch {record.epoch} moved the service from "
                f"epoch {before} to {service.registry_epoch}; expected one "
                f"mutation"
            )
        service.linker.ingest_epoch_ = record.epoch
        applied = record.epoch
        count += 1
    return applied, count


def replay_wal_delta(
    service: LinkageService, wal, *, after_epoch: int
) -> tuple[int, int]:
    """Catch ``service`` up with a log's mutations newer than ``after_epoch``.

    ``wal`` is an open :class:`~repro.wal.log.WriteAheadLog` (snapshotted
    tolerantly, so an in-flight append at worst parks in the torn tail
    and is picked up by the next pass) or a log directory path.
    """
    if isinstance(wal, WriteAheadLog):
        recovered = wal.snapshot()
    else:
        recovered = read_wal(wal)
    return replay_records(
        service, recovered.effective_records(), after_epoch=after_epoch
    )


def recover(
    artifact_path,
    wal_path,
    *,
    reopen: bool = True,
    fsync: str = "batch",
    **service_kwargs,
) -> RecoveryResult:
    """Load the base artifact and replay the WAL delta on top of it.

    With ``reopen=True`` (the default) the log is reopened for append —
    truncating any torn tail — and attached to the recovered service, so
    serving can resume writing history where the crash cut it off.
    """
    service = LinkageService.from_artifact(artifact_path, **service_kwargs)
    base_epoch = service.registry_epoch
    recovered = read_wal(wal_path)
    final_epoch, count = replay_records(
        service, recovered.effective_records(), after_epoch=base_epoch
    )
    if reopen:
        service.attach_wal(WriteAheadLog(wal_path, fsync=fsync))
    return RecoveryResult(
        service=service,
        base_epoch=base_epoch,
        recovered_epoch=final_epoch,
        records_replayed=count,
        truncated_tail=recovered.truncated,
    )
