"""The durable append-only mutation log.

On-disk layout: a *directory* of segment files (``00000001.wal``,
``00000002.wal``, ...), each starting with an 12-byte header (magic
``REPROWAL`` + little-endian u32 format version) followed by
length-prefixed records::

    u32 payload_len | u32 crc32(payload) | payload (pickled WalRecord)

Every record carries the *post-mutation* registry epoch plus enough
serialized account state (:mod:`repro.wal.payload`) to replay the
mutation into a freshly loaded artifact.  The framing makes two things
cheap:

* **torn-tail tolerance** — a crash mid-write leaves a short or
  CRC-broken final frame; :func:`read_wal` stops at the first corrupt
  byte and reports everything before it (the *longest valid prefix*),
  and a writer reopening the log truncates that tail before appending;
* **durability policy** — every append is flushed to the OS (so a
  ``kill -9`` of the process loses nothing already appended; only the
  machine dying can), while ``fsync`` is configurable: ``always``
  (fsync per record — power-loss safe, slowest), ``batch`` (fsync every
  ``fsync_batch_bytes`` and on close/rotate — the serving default), or
  ``never`` (leave it to the kernel).

Fault points ``wal.append`` and ``wal.fsync`` (see
:mod:`repro.wal.faults`) let the chaos harness crash or tear a write at
an exact record boundary.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.wal import faults

__all__ = [
    "FSYNC_POLICIES",
    "RecoveredLog",
    "SegmentInfo",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "read_wal",
    "segment_stats",
]

FSYNC_POLICIES = ("always", "batch", "never")

_MAGIC = b"REPROWAL"
_VERSION = 1
_HEADER = _MAGIC + struct.pack("<I", _VERSION)
_FRAME = struct.Struct("<II")  # payload_len, crc32(payload)


class WalError(RuntimeError):
    """Unrecoverable log damage (not a torn tail) or misuse."""


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation.

    ``op`` is ``"ingest"`` / ``"remove"`` / ``"abort"``; ``epoch`` is the
    registry epoch the mutation *produces* (write-ahead: the record hits
    the log before the service applies it).  ``payloads`` carries one
    :class:`~repro.wal.payload.AccountPayload` per ref for ingests, so
    replay can re-register accounts into a recovered world; removals and
    aborts log refs only.  An ``abort`` record cancels the immediately
    preceding record of the same epoch: the service appends it when the
    apply step failed after the write-ahead append, so replay must skip
    the mutation exactly like the live service did.

    ``ts`` is the wall-clock append time (``time.time()``); replay
    ignores it, but follower replicas subtract it from *now* to report
    replication lag in seconds.  Records logged before the field existed
    decode with ``ts=None``.
    """

    op: str
    epoch: int
    refs: tuple
    payloads: tuple | None = None
    ts: float | None = None

    def to_bytes(self) -> bytes:
        return pickle.dumps(
            {
                "op": self.op,
                "epoch": self.epoch,
                "refs": tuple(tuple(ref) for ref in self.refs),
                "payloads": self.payloads,
                "ts": self.ts,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "WalRecord":
        raw = pickle.loads(data)
        return cls(
            op=raw["op"],
            epoch=raw["epoch"],
            refs=raw["refs"],
            payloads=raw["payloads"],
            ts=raw.get("ts"),
        )


@dataclass(frozen=True)
class RecoveredLog:
    """What a tolerant read of the log found.

    ``truncated`` is True when a torn/corrupt tail (or a segment created
    but never written) was dropped; ``records`` is the longest valid
    prefix.  ``last_epoch`` is the epoch of the final valid record — the
    epoch recovery can reconstruct.
    """

    records: tuple[WalRecord, ...]
    last_epoch: int
    truncated: bool
    segments: int

    def effective_records(self) -> list[WalRecord]:
        """The records replay must apply: aborted mutations cancelled out."""
        effective: list[WalRecord] = []
        for record in self.records:
            if record.op == "abort":
                if effective and effective[-1].epoch == record.epoch:
                    effective.pop()
                continue
            effective.append(record)
        return effective


def _segment_paths(directory: Path) -> list[Path]:
    return sorted(directory.glob("[0-9]" * 8 + ".wal"))


def _decode_frame(data: bytes, offset: int):
    """Decode one frame at ``offset``: ``(record, end_offset)``.

    Returns ``None`` when the bytes there are short, fail their CRC, or
    will not unpickle — the longest-valid-prefix stopping condition
    shared by :func:`read_wal` and the tail reader (an in-flight append
    looks exactly like a torn tail until its last byte lands).
    """
    frame_end = offset + _FRAME.size
    if frame_end > len(data):
        return None
    length, crc = _FRAME.unpack_from(data, offset)
    payload_end = frame_end + length
    if payload_end > len(data):
        return None
    payload = data[frame_end:payload_end]
    if zlib.crc32(payload) != crc:
        return None
    try:
        return WalRecord.from_bytes(payload), payload_end
    except Exception:
        return None


def _check_header(data: bytes, path: Path) -> bool:
    """Whether ``data`` starts with a complete, supported segment header."""
    if len(data) < len(_HEADER) or data[: len(_MAGIC)] != _MAGIC:
        return False
    version = struct.unpack("<I", data[len(_MAGIC): len(_HEADER)])[0]
    if version != _VERSION:
        raise WalError(f"{path}: unsupported WAL format version {version}")
    return True


def _scan_segment(path: Path) -> tuple[list[WalRecord], int, bool]:
    """Parse one segment: (records, end of the valid prefix, ended clean)."""
    data = path.read_bytes()
    if not _check_header(data, path):
        return [], 0, False
    records: list[WalRecord] = []
    offset = len(_HEADER)
    while offset < len(data):
        decoded = _decode_frame(data, offset)
        if decoded is None:
            return records, offset, False
        record, offset = decoded
        records.append(record)
    return records, offset, True


def read_wal(path) -> RecoveredLog:
    """Tolerantly read every record up to the first corruption.

    Reads segments in order and stops at the first frame that is short,
    fails its CRC, or will not decode — everything after that point
    (including later segments) is suspect and ignored.  An empty or
    missing directory recovers zero records at epoch 0.
    """
    directory = Path(path)
    segments = _segment_paths(directory) if directory.is_dir() else []
    records: list[WalRecord] = []
    truncated = False
    for segment in segments:
        segment_records, _end, clean = _scan_segment(segment)
        records.extend(segment_records)
        if not clean:
            # everything past the corruption — including any later
            # segments — is suspect and dropped
            truncated = True
            break
    return RecoveredLog(
        records=tuple(records),
        last_epoch=records[-1].epoch if records else 0,
        truncated=truncated,
        segments=len(segments),
    )


@dataclass(frozen=True)
class SegmentInfo:
    """One segment's shape, as ``repro wal info`` reports it.

    ``valid_bytes`` is where the valid prefix ends; ``size_bytes`` the
    file size — they differ exactly when the segment has a torn tail
    (``clean`` False).  Epochs are of the segment's first/last valid
    record, 0 when it holds none.
    """

    index: int
    path: Path
    records: int
    valid_bytes: int
    size_bytes: int
    first_epoch: int
    last_epoch: int
    clean: bool


def segment_stats(path) -> list[SegmentInfo]:
    """Per-segment inspection of a log directory (tolerant, read-only)."""
    directory = Path(path)
    segments = _segment_paths(directory) if directory.is_dir() else []
    infos: list[SegmentInfo] = []
    for segment in segments:
        records, valid_end, clean = _scan_segment(segment)
        infos.append(SegmentInfo(
            index=int(segment.stem),
            path=segment,
            records=len(records),
            valid_bytes=valid_end,
            size_bytes=segment.stat().st_size,
            first_epoch=records[0].epoch if records else 0,
            last_epoch=records[-1].epoch if records else 0,
            clean=clean,
        ))
    return infos


class WriteAheadLog:
    """Appendable, crash-recoverable mutation log over a segment directory.

    Opening an existing log validates it, *truncates* a torn tail of the
    final segment (a clean reopen after a crash), and resumes appending;
    damage anywhere before the final segment's tail raises
    :class:`WalError` — that is lost history, not a torn write, and
    silently dropping it would violate the durability contract.

    Parameters
    ----------
    path:
        The log directory (created if missing).
    fsync:
        ``"always"`` / ``"batch"`` / ``"never"`` — see the module
        docstring for the trade-offs.
    fsync_batch_bytes:
        Unsynced-byte threshold that triggers an fsync under ``batch``.
    segment_max_bytes:
        Size at which the current segment rotates.
    """

    def __init__(
        self,
        path,
        *,
        fsync: str = "batch",
        fsync_batch_bytes: int = 1 << 20,
        segment_max_bytes: int = 64 << 20,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_batch_bytes < 1:
            raise ValueError("fsync_batch_bytes must be >= 1")
        if segment_max_bytes < len(_HEADER) + _FRAME.size:
            raise ValueError("segment_max_bytes is too small for one record")
        self.path = Path(path)
        self.fsync = fsync
        self.fsync_batch_bytes = fsync_batch_bytes
        self.segment_max_bytes = segment_max_bytes
        self.path.mkdir(parents=True, exist_ok=True)
        self._file = None
        self._unsynced = 0
        self._last_epoch = 0
        self._records_appended = 0
        segments = _segment_paths(self.path)
        if segments:
            for segment in segments[:-1]:
                _records, _end, clean = _scan_segment(segment)
                if not clean:
                    raise WalError(
                        f"{segment}: corrupt non-final segment; refusing to "
                        f"append after lost history"
                    )
            recovered = read_wal(self.path)
            self._last_epoch = recovered.last_epoch
            tail = segments[-1]
            _records, valid_end, clean = _scan_segment(tail)
            if not clean:
                with open(tail, "r+b") as fh:
                    fh.truncate(valid_end)
                    if valid_end < len(_HEADER):
                        # segment was created but its header never landed
                        fh.seek(0)
                        fh.truncate(0)
                        fh.write(_HEADER)
                    fh.flush()
                    os.fsync(fh.fileno())
            self._segment_index = int(tail.stem)
            self._file = open(tail, "ab")
            self._size = self._file.tell()
        else:
            self._segment_index = 0
            self.rotate()

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._file is None

    @property
    def last_epoch(self) -> int:
        """Epoch of the newest record in the log (appended or recovered)."""
        return self._last_epoch

    @property
    def records_appended(self) -> int:
        """Records appended by *this* handle (recovery not included)."""
        return self._records_appended

    def _segment_path(self, index: int) -> Path:
        return self.path / f"{index:08d}.wal"

    def append(self, record: WalRecord) -> None:
        """Frame, checksum, and write one record (flushed to the OS)."""
        if self._file is None:
            raise WalError("write-ahead log is closed")
        payload = record.to_bytes()
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        if faults.trip("wal.append") == "torn":
            # a torn write: push a strict prefix of the frame to the OS,
            # then die — the reader must stop exactly here
            self._file.write(frame[: max(1, len(frame) // 2)])
            self._file.flush()
            os.fsync(self._file.fileno())
            faults.crash()
        self._file.write(frame)
        self._file.flush()  # to the OS page cache: survives SIGKILL
        self._unsynced += len(frame)
        self._size += len(frame)
        self._records_appended += 1
        if record.epoch > self._last_epoch:
            self._last_epoch = record.epoch
        if self.fsync == "always" or (
            self.fsync == "batch" and self._unsynced >= self.fsync_batch_bytes
        ):
            self.sync()
        if self._size >= self.segment_max_bytes:
            self.rotate()

    def flush(self) -> None:
        """Push buffered bytes to the OS (no fsync)."""
        if self._file is not None:
            self._file.flush()

    def sync(self) -> None:
        """Flush and fsync the current segment."""
        if self._file is None:
            return
        faults.trip("wal.fsync")
        self._file.flush()
        os.fsync(self._file.fileno())
        self._unsynced = 0

    def rotate(self) -> None:
        """Seal the current segment and start the next one."""
        if self._file is not None:
            self.sync()
            self._file.close()
        self._segment_index += 1
        path = self._segment_path(self._segment_index)
        if path.exists():
            raise WalError(f"segment {path} already exists")
        self._file = open(path, "ab")
        self._file.write(_HEADER)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._size = len(_HEADER)
        self._unsynced = 0

    def snapshot(self) -> RecoveredLog:
        """Read the log's current contents (usable while open for append)."""
        self.flush()
        return read_wal(self.path)

    def close(self) -> None:
        """Flush, fsync, and close — idempotent, safe from any state."""
        if self._file is None:
            return
        self.sync()
        self._file.close()
        self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
