"""Fault-injection points for the durability and swap machinery.

A *fault point* is a named site in the code (``"wal.append"``,
``"wal.fsync"``, ``"swap.cutover"``) that asks the registry whether an
armed fault should fire when execution reaches it.  Tests arm faults
programmatically (:func:`arm`) or through the ``REPRO_FAULTS``
environment variable (:func:`arm_from_env`) before spawning a real
gateway subprocess — which is how the chaos harness kills a server
mid-ingest at a *precise* point in the write-ahead protocol instead of
at a random instant.

Actions
-------
``crash``
    ``kill -9`` the current process (``os.kill(getpid(), SIGKILL)``) —
    no atexit handlers, no flushes, exactly like a power-off of the
    process.
``torn``
    Returned to the call site, which is expected to emit a *partial*
    write and then crash — simulates a record torn across the moment of
    failure.  Only sites that know how to tear their write honor it
    (``wal.append``); other sites ignore it (arm ``crash`` there).
``error``
    Raise :class:`FaultInjected` — exercises error paths (e.g. a swap
    cutover that must leave the old service serving).

``REPRO_FAULTS`` grammar: comma-separated ``site:action[:nth]`` triples;
``nth`` (default 1) makes the fault fire on the nth trip of the site,
letting the chaos driver crash after a chosen number of appends.
"""

from __future__ import annotations

import os
import signal
import threading

__all__ = [
    "FAULT_ACTIONS",
    "FaultInjected",
    "arm",
    "arm_from_env",
    "armed",
    "reset",
    "trip",
]

FAULT_ACTIONS = ("crash", "torn", "error")

_lock = threading.Lock()
_armed: dict[str, list] = {}  # site -> [action, trips_remaining]


class FaultInjected(RuntimeError):
    """An armed ``error`` fault fired at its site."""


def arm(site: str, action: str = "crash", *, nth: int = 1) -> None:
    """Arm ``site`` to fire ``action`` on its ``nth`` trip."""
    if action not in FAULT_ACTIONS:
        raise ValueError(f"unknown fault action {action!r}; "
                         f"expected one of {FAULT_ACTIONS}")
    if nth < 1:
        raise ValueError(f"nth must be >= 1, got {nth}")
    with _lock:
        _armed[site] = [action, nth]


def arm_from_env(env: dict | None = None) -> int:
    """Arm every fault listed in ``REPRO_FAULTS``; returns how many.

    Grammar: ``site:action[:nth]`` triples, comma-separated, e.g.
    ``REPRO_FAULTS="wal.append:torn:5,swap.cutover:error"``.
    """
    spec = (env if env is not None else os.environ).get("REPRO_FAULTS", "")
    count = 0
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad REPRO_FAULTS entry {entry!r}; expected site:action[:nth]"
            )
        nth = int(parts[2]) if len(parts) == 3 else 1
        arm(parts[0], parts[1], nth=nth)
        count += 1
    return count


def armed(site: str) -> bool:
    """Whether ``site`` currently has a fault armed."""
    with _lock:
        return site in _armed


def reset() -> None:
    """Disarm every fault (test teardown)."""
    with _lock:
        _armed.clear()


def trip(site: str) -> str | None:
    """Fire ``site``'s armed fault if its trip count is due.

    Returns ``None`` (no fault / not yet due), raises
    :class:`FaultInjected` for ``error``, never returns for ``crash``,
    and returns ``"torn"`` for call sites that tear their own writes.
    """
    with _lock:
        entry = _armed.get(site)
        if entry is None:
            return None
        entry[1] -= 1
        if entry[1] > 0:
            return None
        del _armed[site]
        action = entry[0]
    if action == "crash":
        crash()
    if action == "error":
        raise FaultInjected(f"injected fault at {site}")
    return action


def crash() -> "None":
    """SIGKILL the current process — the no-cleanup crash primitive."""
    os.kill(os.getpid(), signal.SIGKILL)
