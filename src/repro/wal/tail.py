"""Incremental (cursor-based) reads of a live write-ahead log.

:func:`read_wal` answers "everything the log holds" — right for crash
recovery, wasteful for a follower replica that polls the log every few
milliseconds.  :func:`tail_read` answers the incremental question: given
a :class:`WalCursor` — the ``(segment, byte offset)`` where the last
read stopped — return only the records appended since, plus the new
cursor.

The reader shares the writer's framing invariants, so the races a live
log exposes all resolve safely:

* **in-flight append** — a partially flushed frame at the tail decodes
  as short/corrupt; the batch stops *before* it (``torn=True``) and the
  cursor does not advance past the last whole record, so the next poll
  re-reads the frame once its final byte lands;
* **rotation** — the writer seals (fsync + close) a segment before
  creating its successor, so a clean end-of-segment with a
  higher-numbered segment visible means "advance"; a clean end with no
  successor means "caught up, poll again";
* **crash + reopen** — the writer's reopen truncates a torn tail at
  exactly the valid-prefix boundary the reader refused to cross, so a
  parked cursor stays valid across the primary's own crash recovery;
* **segment with no header yet** — a successor file created but whose
  12-byte header has not landed reads as torn; the cursor waits at its
  start.

Cursors serialize to a JSON file (written atomically: temp file +
``os.replace``) so a restarted tailer resumes at the exact record
boundary it had reached — the property test in
``tests/test_replica_properties.py`` proves a cut-anywhere restart
replays the identical record sequence as one fresh :func:`read_wal`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.wal.log import (
    _check_header,
    _decode_frame,
    _HEADER,
    _segment_paths,
    WalError,
    WalRecord,
)

__all__ = ["TailBatch", "WalCursor", "load_cursor", "save_cursor",
           "tail_read"]


@dataclass(frozen=True)
class WalCursor:
    """Where an incremental reader stopped: segment index + byte offset.

    The zero cursor (``segment=0``) means "before the first segment";
    the first :func:`tail_read` resolves it to the log's lowest segment.
    Offsets always land on record boundaries (or the segment header's
    end), never inside a frame.
    """

    segment: int = 0
    offset: int = 0

    def as_dict(self) -> dict:
        return {"segment": self.segment, "offset": self.offset}


@dataclass(frozen=True)
class TailBatch:
    """One poll's result: new records, the advanced cursor, tail state.

    ``torn`` is True when the read stopped at incomplete/invalid bytes
    short of the visible end — either an append in flight (the next
    poll will get it) or a genuinely torn tail awaiting the writer's
    reopen truncation.  Either way the cursor parks before it.
    """

    records: tuple[WalRecord, ...]
    cursor: WalCursor
    torn: bool


def save_cursor(cursor: WalCursor, path) -> None:
    """Durably persist a cursor: write a temp file, fsync, rename."""
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(cursor.as_dict(), fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)


def load_cursor(path) -> WalCursor | None:
    """Read a persisted cursor; None when the file does not exist."""
    target = Path(path)
    if not target.exists():
        return None
    raw = json.loads(target.read_text(encoding="utf-8"))
    segment, offset = int(raw["segment"]), int(raw["offset"])
    if segment < 0 or offset < 0:
        raise WalError(f"{target}: invalid cursor {raw!r}")
    return WalCursor(segment=segment, offset=offset)


def tail_read(path, cursor: WalCursor) -> TailBatch:
    """Read every whole record appended after ``cursor``.

    Safe against a concurrently appending writer (see module docstring).
    A cursor pointing at a segment the directory no longer contains is a
    hard error — that cursor belongs to a different (or rewritten) log,
    and silently restarting would replay history twice.
    """
    directory = Path(path)
    segments = _segment_paths(directory) if directory.is_dir() else []
    indices = [int(segment.stem) for segment in segments]
    if cursor.segment == 0:
        if not indices:
            return TailBatch((), cursor, False)
        seg, off = indices[0], 0
    else:
        if cursor.segment not in indices:
            raise WalError(
                f"cursor points at segment {cursor.segment} but {directory} "
                f"holds {indices or 'no segments'}; refusing to tail a "
                f"different log"
            )
        seg, off = cursor.segment, cursor.offset

    records: list[WalRecord] = []
    torn = False
    known = set(indices)
    while True:
        data = (directory / f"{seg:08d}.wal").read_bytes()
        if off < len(_HEADER):
            if not _check_header(data, directory / f"{seg:08d}.wal"):
                # successor created but its header hasn't landed: wait
                # at the segment start, don't call it progress
                torn = True
                break
            off = len(_HEADER)
        clean = True
        while off < len(data):
            decoded = _decode_frame(data, off)
            if decoded is None:
                clean = False
                break
            record, off = decoded
            records.append(record)
        if not clean:
            torn = True
            break
        successors = [index for index in known if index > seg]
        if not successors:
            break
        # the writer seals a segment before creating its successor, so a
        # clean end here means this segment is final-length: rotate
        seg, off = min(successors), 0
    return TailBatch(tuple(records), WalCursor(segment=seg, offset=off), torn)
