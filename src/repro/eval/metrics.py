"""Linkage quality metrics (Section 7.1, Evaluation Metrics).

"Precision is defined as the fraction of the user pairs in the returned
result that are correctly linked.  Recall is defined as the fraction of the
actual linked user pairs that are contained in the returned result."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

__all__ = ["LinkageMetrics", "precision_recall_f1"]


@dataclass(frozen=True)
class LinkageMetrics:
    """Precision / recall / F1 with the underlying counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    returned: int
    actual: int

    def as_dict(self) -> dict[str, float]:
        """Flat dict for tabular reporting."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "true_positives": float(self.true_positives),
            "returned": float(self.returned),
            "actual": float(self.actual),
        }


def precision_recall_f1(
    returned: Iterable[Hashable],
    actual: Iterable[Hashable],
    *,
    exclude: Iterable[Hashable] = (),
) -> LinkageMetrics:
    """Compute linkage metrics over hashable pair identifiers.

    ``exclude`` removes items (typically training-labeled pairs) from both
    the returned set and the gold set, so metrics measure generalization.
    Empty returned set gives precision 0 by convention; empty gold set gives
    recall 0.
    """
    excluded = set(exclude)
    returned_set = {item for item in returned if item not in excluded}
    actual_set = {item for item in actual if item not in excluded}
    tp = len(returned_set & actual_set)
    precision = tp / len(returned_set) if returned_set else 0.0
    recall = tp / len(actual_set) if actual_set else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return LinkageMetrics(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=tp,
        returned=len(returned_set),
        actual=len(actual_set),
    )
