"""The tolerance harness for approximate scoring: recall@k and NDCG@k.

Approximate ``top_k`` (:mod:`repro.approx`) deliberately trades ranking
exactness for speed, so its quality has to be *measured*, not assumed.
This module compares an approximate ranking against exhaustive exact
scoring of the same candidate set:

* **recall@k** — of the exact top-k pairs, what fraction the approximate
  top-k returned.  This is the headline gate (CI enforces recall@10 at
  the default budget);
* **NDCG@k** — position-aware quality with the *exact* scores as graded
  relevance (shifted to be non-negative), so a near-miss that returns
  the 11th-strongest pair instead of the 10th is penalized less than one
  that returns noise.

:func:`evaluate_top_k` sweeps budgets for one platform pair of a live
service; :func:`sweep_service` covers every platform pair; the
speed-vs-recall benchmark (``benchmarks/test_approx_scoring.py``) runs
the sweep across world seeds and commits the curve.

Everything here goes through the public serving interface —
``service.top_k(..., exact=False, budget=...)`` against
``service.score_pairs`` ground truth — so the harness exercises exactly
the path users get, including the exact-rescore contract (asserted
separately in the test suite: returned approximate *scores* are
bit-identical to exact scoring of the same pairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.utils.ranking import top_k_indices

__all__ = [
    "QualityPoint",
    "evaluate_top_k",
    "ndcg_at_k",
    "recall_at_k",
    "sweep_service",
]


def recall_at_k(approx_pairs: Iterable, exact_pairs: Iterable) -> float:
    """|approx ∩ exact| / |exact| over two top-k pair lists.

    1.0 when the exact list is empty: a cutoff cannot lose links that do
    not exist.
    """
    exact = set(exact_pairs)
    if not exact:
        return 1.0
    return len(exact & set(approx_pairs)) / len(exact)


def ndcg_at_k(
    approx_pairs: Sequence,
    exact_pairs: Sequence,
    exact_scores: dict,
) -> float:
    """NDCG of the approximate list against the exact ranking.

    ``exact_scores`` maps every candidate pair to its exhaustive exact
    score; relevances are the scores shifted so the weakest considered
    candidate sits at zero (decision values may be negative).  The ideal
    DCG comes from the exact list, so 1.0 means the rankings agree on
    both membership and order at this ``k``.
    """
    if not exact_pairs:
        return 1.0
    floor = min(exact_scores.values())

    def dcg(pairs: Sequence) -> float:
        return sum(
            (exact_scores.get(pair, floor) - floor) / np.log2(i + 2.0)
            for i, pair in enumerate(pairs)
        )

    ideal = dcg(exact_pairs)
    if ideal <= 0.0:
        return 1.0
    return dcg(approx_pairs) / ideal


@dataclass(frozen=True)
class QualityPoint:
    """Quality of one (platform pair, budget, k) configuration."""

    platform_a: str
    platform_b: str
    budget: int
    k: int
    recall: float
    ndcg: float
    candidates: int  # exhaustive candidate count (what exact scoring pays)

    @property
    def pruned_fraction(self) -> float:
        """Fraction of the candidate set the approximate path skipped."""
        if self.candidates == 0:
            return 0.0
        return 1.0 - min(self.budget, self.candidates) / self.candidates


def evaluate_top_k(
    service,
    platform_a: str,
    platform_b: str,
    *,
    k: int = 10,
    budgets: Sequence[int] = (32, 64, 128),
) -> list[QualityPoint]:
    """Recall@k / NDCG@k of approximate ``top_k`` for one platform pair.

    Exhaustive ground truth is computed once (exact scores for every
    indexed candidate), then each budget's approximate ranking is
    compared against it.
    """
    if (platform_a, platform_b) not in service.platform_pairs():
        platform_a, platform_b = platform_b, platform_a
    pairs = service.candidate_pairs((platform_a, platform_b))
    scores = np.asarray(service.score_pairs(pairs))
    order = top_k_indices(scores, k)
    exact_pairs = [pairs[int(row)] for row in order]
    exact_scores = {pair: float(score) for pair, score in zip(pairs, scores)}

    points = []
    for budget in budgets:
        links = service.top_k(
            platform_a, platform_b, k, exact=False, budget=budget
        )
        approx_pairs = [link.pair for link in links]
        points.append(
            QualityPoint(
                platform_a=platform_a,
                platform_b=platform_b,
                budget=budget,
                k=k,
                recall=recall_at_k(approx_pairs, exact_pairs),
                ndcg=ndcg_at_k(approx_pairs, exact_pairs, exact_scores),
                candidates=len(pairs),
            )
        )
    return points


def sweep_service(
    service,
    *,
    k: int = 10,
    budgets: Sequence[int] = (32, 64, 128),
) -> list[QualityPoint]:
    """The full budget sweep over every platform pair a service answers."""
    points: list[QualityPoint] = []
    for platform_a, platform_b in service.platform_pairs():
        points.extend(
            evaluate_top_k(
                service, platform_a, platform_b, k=k, budgets=budgets
            )
        )
    return points
