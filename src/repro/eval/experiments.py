"""Per-figure experiment configurations shared by benchmarks and docs.

The paper's evaluation ran on 10 M crawled users; we reproduce every figure's
*protocol and shape* on generated worlds at laptop scale.  World presets:

* :func:`english_world` — Twitter + Facebook (the "English" data set);
* :func:`chinese_world` — the five Chinese platforms, modeled along a chain
  of platform pairs so the joint QP stays tractable;
* :func:`cross_cultural_world` — all seven platforms, evaluated across the
  culture boundary (Fig 13).

:func:`default_method_factories` builds the paper's method suite (HYDRA-M,
HYDRA-Z, SVM-B, MOBIUS, Alias-Disamb, SMaSh) with shared speed-oriented
settings; :func:`run_method_comparison` is the common "one world, all
methods" loop used by Figs 9, 11, 13, 14 and 15.
"""

from __future__ import annotations

from typing import Callable

from repro.core.hydra import HydraLinker
from repro.baselines import (
    AliasDisambBaseline,
    MobiusBaseline,
    SmashBaseline,
    SvmBBaseline,
)
from repro.datagen import (
    WorldConfig,
    chinese_platform_specs,
    english_platform_specs,
    generate_world,
)
from repro.eval.harness import ExperimentHarness, MethodResult
from repro.socialnet.platform import SocialWorld

__all__ = [
    "FAST_FEATURE_SETTINGS",
    "HARD_WORLD_OVERRIDES",
    "very_hard_world_overrides",
    "english_world",
    "chinese_world",
    "cross_cultural_world",
    "chinese_chain_pairs",
    "cross_cultural_pairs",
    "default_method_factories",
    "run_method_comparison",
]

#: Speed-oriented featurization settings shared by all experiment methods.
FAST_FEATURE_SETTINGS: dict = {"num_topics": 10, "max_lda_docs": 2500}

#: World overrides that remove the ceiling effects of the default generator:
#: fewer recognizable usernames, noisier attributes, weaker media/style/geo
#: signals.  Used by figures that need visible performance gradients.
HARD_WORLD_OVERRIDES: dict = {
    "username_overlap_probability": 0.5,
    "false_attribute_probability": 0.15,
    "media_reshare_probability": 0.35,
    "style_word_probability": 0.07,
    "checkin_noise_deg": 0.04,
}


def very_hard_world_overrides() -> dict:
    """Overrides for parameter-sweep figures: every linkage signal weakened.

    A fresh dict (with a fresh :class:`MissingnessInjector`) per call so
    callers can mutate their copy safely.
    """
    from repro.datagen import MissingnessInjector

    return {
        "username_overlap_probability": 0.35,
        "false_attribute_probability": 0.22,
        "media_reshare_probability": 0.22,
        "media_universe_per_person": 0.6,
        "style_word_probability": 0.04,
        "checkin_noise_deg": 0.12,
        "impostor_face_probability": 0.2,
        "face_noise": 0.3,
        "missingness": MissingnessInjector(
            email_hidden_probability=0.97, image_missing_probability=0.6
        ),
    }


def english_world(num_persons: int, seed: int = 0, **overrides) -> SocialWorld:
    """The paper's English data set: Twitter + Facebook."""
    config = WorldConfig(
        num_persons=num_persons, platforms=english_platform_specs(), seed=seed,
        **overrides,
    )
    return generate_world(config)


def chinese_world(num_persons: int, seed: int = 0, **overrides) -> SocialWorld:
    """The paper's Chinese data set: five platforms."""
    config = WorldConfig(
        num_persons=num_persons, platforms=chinese_platform_specs(), seed=seed,
        **overrides,
    )
    return generate_world(config)


def cross_cultural_world(num_persons: int, seed: int = 0, **overrides) -> SocialWorld:
    """All seven platforms (Fig 13's whole-data-set experiment)."""
    config = WorldConfig(
        num_persons=num_persons,
        platforms=chinese_platform_specs() + english_platform_specs(),
        seed=seed,
        **overrides,
    )
    return generate_world(config)


def chinese_chain_pairs() -> list[tuple[str, str]]:
    """A chain of four platform pairs through the five Chinese platforms.

    Modeling all C(5,2) = 10 pairs multiplies candidate counts without
    changing the evaluation shape; the chain keeps the joint dual problem
    laptop-sized while still exercising multi-platform blocks (Eqn 14).
    """
    return [
        ("douban", "kaixin"),
        ("kaixin", "renren"),
        ("renren", "sina_weibo"),
        ("sina_weibo", "tecent_weibo"),
    ]


def cross_cultural_pairs() -> list[tuple[str, str]]:
    """Culture-crossing pairs for Fig 13 (Chinese x English platforms)."""
    return [
        ("sina_weibo", "twitter"),
        ("renren", "facebook"),
    ]


def default_method_factories(
    *,
    seed: int = 0,
    gamma_l: float = 0.01,
    gamma_m: float = 100.0,
    p: float = 1.0,
    include: tuple[str, ...] = (
        "HYDRA-M", "HYDRA-Z", "SVM-B", "MOBIUS", "Alias-Disamb", "SMaSh",
    ),
) -> dict[str, Callable[[], object]]:
    """The paper's method suite as harness-ready factories."""
    catalogue: dict[str, Callable[[], object]] = {
        "HYDRA-M": lambda: HydraLinker(
            gamma_l=gamma_l, gamma_m=gamma_m, p=p, missing_strategy="core",
            seed=seed, **FAST_FEATURE_SETTINGS,
        ),
        "HYDRA-Z": lambda: HydraLinker(
            gamma_l=gamma_l, gamma_m=gamma_m, p=p, missing_strategy="zero",
            seed=seed, **FAST_FEATURE_SETTINGS,
        ),
        "SVM-B": lambda: SvmBBaseline(seed=seed, **FAST_FEATURE_SETTINGS),
        "MOBIUS": lambda: MobiusBaseline(),
        "Alias-Disamb": lambda: AliasDisambBaseline(),
        "SMaSh": lambda: SmashBaseline(),
    }
    unknown = set(include) - set(catalogue)
    if unknown:
        raise ValueError(f"unknown methods requested: {sorted(unknown)}")
    return {name: catalogue[name] for name in include}


def run_method_comparison(
    world: SocialWorld,
    *,
    platform_pairs: list[tuple[str, str]] | None = None,
    label_fraction: float = 1.0 / 6.0,
    seed: int = 0,
    methods: dict[str, Callable[[], object]] | None = None,
) -> list[MethodResult]:
    """One world, one split, all methods — the shared protocol of Figs 9-15."""
    harness = ExperimentHarness(
        world,
        platform_pairs=platform_pairs,
        label_fraction=label_fraction,
        seed=seed,
    )
    factories = methods if methods is not None else default_method_factories(seed=seed)
    return harness.run_suite(factories)
