"""Precision-recall trade-off curves for linkage scores.

The paper reports precision and recall at the model's operating point;
downstream users usually want the whole trade-off to pick their own
threshold.  :func:`precision_recall_curve` sweeps the decision threshold over
a :class:`~repro.core.hydra.LinkageResult`'s scores (with the one-to-one
constraint re-applied at each threshold) and returns the frontier;
:func:`best_threshold` picks the F-beta-optimal operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CurvePoint", "precision_recall_curve", "best_threshold", "average_precision"]


@dataclass(frozen=True)
class CurvePoint:
    """One operating point of the linkage trade-off."""

    threshold: float
    precision: float
    recall: float

    def f_beta(self, beta: float = 1.0) -> float:
        """F-beta score at this point (beta > 1 favors recall)."""
        p, r = self.precision, self.recall
        if p == 0.0 and r == 0.0:
            return 0.0
        b2 = beta * beta
        return (1 + b2) * p * r / (b2 * p + r)


def _one_to_one(pairs, scores, threshold):
    order = sorted(
        (i for i in range(len(pairs)) if scores[i] > threshold),
        key=lambda i: (-scores[i], i),
    )
    used_a: set = set()
    used_b: set = set()
    linked = []
    for i in order:
        ref_a, ref_b = pairs[i]
        if ref_a in used_a or ref_b in used_b:
            continue
        used_a.add(ref_a)
        used_b.add(ref_b)
        linked.append(pairs[i])
    return linked


def precision_recall_curve(
    pairs: list,
    scores: np.ndarray,
    true_pairs: set,
    *,
    num_thresholds: int = 50,
    one_to_one: bool = True,
) -> list[CurvePoint]:
    """Sweep thresholds over the score range and collect (P, R) points.

    ``pairs`` and ``scores`` come from a
    :class:`~repro.core.hydra.LinkageResult`; ``true_pairs`` is the gold set.
    Thresholds run from just below the minimum score (link everything the
    matching allows) to the maximum (link nothing).
    """
    scores = np.asarray(scores, dtype=float)
    if len(pairs) != scores.shape[0]:
        raise ValueError("pairs and scores must have equal length")
    if scores.size == 0:
        return []
    lo = float(scores.min()) - 1e-9
    hi = float(scores.max())
    thresholds = np.linspace(lo, hi, num_thresholds)
    points = []
    for threshold in thresholds:
        if one_to_one:
            linked = _one_to_one(pairs, scores, threshold)
        else:
            linked = [pairs[i] for i in range(len(pairs)) if scores[i] > threshold]
        tp = sum(1 for p in linked if p in true_pairs)
        precision = tp / len(linked) if linked else 0.0
        recall = tp / len(true_pairs) if true_pairs else 0.0
        points.append(
            CurvePoint(threshold=float(threshold), precision=precision, recall=recall)
        )
    return points


def best_threshold(points: list[CurvePoint], *, beta: float = 1.0) -> CurvePoint:
    """The F-beta-optimal point of a curve (ties -> highest threshold)."""
    if not points:
        raise ValueError("curve is empty")
    return max(points, key=lambda pt: (pt.f_beta(beta), pt.threshold))


def average_precision(points: list[CurvePoint]) -> float:
    """Area under the precision-recall frontier (step interpolation).

    Points are sorted by recall; precision is taken as the running maximum
    from the high-recall side, the standard AP convention.
    """
    if not points:
        return 0.0
    ordered = sorted(points, key=lambda pt: pt.recall)
    recalls = np.array([0.0] + [pt.recall for pt in ordered])
    precisions = np.array([pt.precision for pt in ordered] + [0.0])
    # running max from the right so precision is monotone non-increasing
    for i in range(len(precisions) - 2, -1, -1):
        precisions[i] = max(precisions[i], precisions[i + 1])
    return float(np.sum(np.diff(recalls) * precisions[:-1]))
