"""Evaluation layer: metrics, the experiment harness and per-figure configs."""

from repro.eval.metrics import LinkageMetrics, precision_recall_f1
from repro.eval.approx_quality import (
    QualityPoint,
    evaluate_top_k,
    ndcg_at_k,
    recall_at_k,
    sweep_service,
)
from repro.eval.harness import (
    ExperimentHarness,
    LabelSplit,
    MethodResult,
    make_label_split,
)
from repro.eval.experiments import (
    chinese_world,
    english_world,
    cross_cultural_world,
    default_method_factories,
    run_method_comparison,
)
from repro.eval.prepared import PreparedExperiment
from repro.eval.tuning import TuningGrid, TuningResult, tune_feature_parameters
from repro.eval.curves import (
    CurvePoint,
    average_precision,
    best_threshold,
    precision_recall_curve,
)
from repro.eval.report import format_table, markdown_table, method_results_table

__all__ = [
    "LinkageMetrics",
    "precision_recall_f1",
    "QualityPoint",
    "evaluate_top_k",
    "ndcg_at_k",
    "recall_at_k",
    "sweep_service",
    "ExperimentHarness",
    "LabelSplit",
    "MethodResult",
    "make_label_split",
    "chinese_world",
    "english_world",
    "cross_cultural_world",
    "default_method_factories",
    "run_method_comparison",
    "PreparedExperiment",
    "TuningGrid",
    "TuningResult",
    "tune_feature_parameters",
    "CurvePoint",
    "average_precision",
    "best_threshold",
    "precision_recall_curve",
    "format_table",
    "markdown_table",
    "method_results_table",
]
