"""Result reporting: turn experiment outputs into aligned text / markdown.

Shared by the benchmark harness (which writes the ``benchmarks/results``
tables) and by anyone regenerating EXPERIMENTS.md after a run.
"""

from __future__ import annotations

from typing import Sequence

from repro.eval.harness import MethodResult

__all__ = ["format_table", "markdown_table", "method_results_table"]


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Aligned plain-text table."""
    widths = [
        max(len(str(h)), *(len(_fmt(row[i])) for row in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """GitHub-flavored markdown table."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return "\n".join(lines)


def method_results_table(
    results: Sequence[MethodResult], *, markdown: bool = False
) -> str:
    """Standard method-comparison table from harness results."""
    headers = ["method", "precision", "recall", "f1", "seconds"]
    rows = [
        [r.method, r.metrics.precision, r.metrics.recall, r.metrics.f1, r.seconds]
        for r in results
    ]
    if markdown:
        return markdown_table(headers, rows)
    return format_table(headers, rows)
