"""Experiment harness: label splitting, shared candidates, method timing.

One harness instance owns one generated world.  It fixes the labeled /
held-out split (the paper's 1:5 labeled-to-unlabeled ratio by default) and a
single shared candidate generation, then runs any number of methods under
identical conditions, timing each (the Fig 14 measurements come from these
timers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.candidates import CandidateGenerator, CandidateSet
from repro.core.hydra import LinkageResult
from repro.eval.metrics import LinkageMetrics, precision_recall_f1
from repro.socialnet.platform import SocialWorld
from repro.utils.rng import RngFactory
from repro.utils.timing import timed

__all__ = ["LabelSplit", "MethodResult", "make_label_split", "ExperimentHarness"]

AccountRef = tuple[str, str]
Pair = tuple[AccountRef, AccountRef]


class LinkerProtocol(Protocol):
    """What the harness requires of a method (HYDRA and baselines comply)."""

    def fit(
        self,
        world: SocialWorld,
        labeled_positive: list[Pair],
        labeled_negative: list[Pair],
        platform_pairs: list[tuple[str, str]] | None = None,
        *,
        candidates: dict[tuple[str, str], CandidateSet] | None = None,
    ) -> object: ...

    def linkage(self, platform_a: str, platform_b: str) -> LinkageResult: ...


@dataclass
class LabelSplit:
    """Supervision for one world: labeled pairs and the held-out gold set."""

    labeled_positive: list[Pair]
    labeled_negative: list[Pair]
    heldout_true: dict[tuple[str, str], set[Pair]]

    @property
    def all_true_labeled(self) -> set[Pair]:
        """Training positives as a set (excluded from evaluation)."""
        return set(self.labeled_positive)


@dataclass
class MethodResult:
    """One method's aggregate evaluation on one harness."""

    method: str
    metrics: LinkageMetrics
    seconds: float
    per_pair: dict[tuple[str, str], LinkageMetrics] = field(default_factory=dict)
    extras: dict[str, float] = field(default_factory=dict)

    def row(self) -> dict[str, float | str]:
        """Flat reporting row."""
        out: dict[str, float | str] = {"method": self.method, "seconds": self.seconds}
        out.update(self.metrics.as_dict())
        out.update(self.extras)
        return out


def make_label_split(
    world: SocialWorld,
    platform_pairs: list[tuple[str, str]],
    *,
    label_fraction: float = 1.0 / 6.0,
    negatives_per_positive: float = 2.0,
    seed: int = 0,
) -> LabelSplit:
    """Split each platform pair's true links into labeled vs held-out.

    ``label_fraction`` of true pairs become labeled positives (the paper's
    labeled:unlabeled = 1:5 ratio corresponds to 1/6); labeled negatives are
    sampled mismatched pairs, ``negatives_per_positive`` per positive.
    """
    if not 0.0 <= label_fraction <= 1.0:
        raise ValueError(f"label_fraction must be in [0, 1], got {label_fraction}")
    factory = RngFactory(seed)
    labeled_positive: list[Pair] = []
    labeled_negative: list[Pair] = []
    heldout: dict[tuple[str, str], set[Pair]] = {}
    for pa, pb in platform_pairs:
        rng = factory.child(f"split:{pa}:{pb}")
        true_pairs = [
            ((pa, ida), (pb, idb)) for ida, idb in world.true_pairs(pa, pb)
        ]
        n_label = int(round(label_fraction * len(true_pairs)))
        order = rng.permutation(len(true_pairs))
        labeled_idx = set(int(i) for i in order[:n_label])
        pair_pos = [true_pairs[i] for i in sorted(labeled_idx)]
        labeled_positive.extend(pair_pos)
        heldout[(pa, pb)] = {
            true_pairs[i] for i in range(len(true_pairs)) if i not in labeled_idx
        }
        # mismatched negatives: derange the right-hand accounts
        n_neg = int(round(negatives_per_positive * max(len(pair_pos), 1)))
        ids_b = world.platforms[pb].account_ids()
        true_map = dict(world.true_pairs(pa, pb))
        produced = 0
        attempts = 0
        seen: set[Pair] = set()
        while produced < n_neg and attempts < 50 * n_neg:
            attempts += 1
            left = true_pairs[int(rng.integers(0, len(true_pairs)))][0]
            right_id = ids_b[int(rng.integers(0, len(ids_b)))]
            if true_map.get(left[1]) == right_id:
                continue
            pair = (left, (pb, right_id))
            if pair in seen:
                continue
            seen.add(pair)
            labeled_negative.append(pair)
            produced += 1
    return LabelSplit(
        labeled_positive=labeled_positive,
        labeled_negative=labeled_negative,
        heldout_true=heldout,
    )


class ExperimentHarness:
    """Fixed world + split + candidates; runs methods under identical terms.

    Parameters
    ----------
    world:
        The generated multi-platform world.
    platform_pairs:
        Platform pairs to model; default all ordered combinations.
    label_fraction, negatives_per_positive, seed:
        Split parameters (see :func:`make_label_split`).
    candidate_generator:
        Shared blocking configuration.
    """

    def __init__(
        self,
        world: SocialWorld,
        *,
        platform_pairs: list[tuple[str, str]] | None = None,
        label_fraction: float = 1.0 / 6.0,
        negatives_per_positive: float = 2.0,
        seed: int = 0,
        candidate_generator: CandidateGenerator | None = None,
    ):
        self.world = world
        if platform_pairs is None:
            names = world.platform_names()
            platform_pairs = [
                (names[i], names[j])
                for i in range(len(names))
                for j in range(i + 1, len(names))
            ]
        self.platform_pairs = platform_pairs
        self.split = make_label_split(
            world,
            platform_pairs,
            label_fraction=label_fraction,
            negatives_per_positive=negatives_per_positive,
            seed=seed,
        )
        generator = (
            candidate_generator if candidate_generator is not None else CandidateGenerator()
        )
        self.candidates: dict[tuple[str, str], CandidateSet] = {
            (pa, pb): generator.generate(world, pa, pb)
            for pa, pb in platform_pairs
        }

    # ------------------------------------------------------------------
    def candidate_recall(self) -> float:
        """Fraction of held-out true pairs surviving blocking (upper bound)."""
        total = 0
        found = 0
        for key, gold in self.split.heldout_true.items():
            cand = set(self.candidates[key].pairs)
            total += len(gold)
            found += len(gold & cand)
        return found / total if total else 0.0

    def evaluate(self, linker: LinkerProtocol) -> tuple[LinkageMetrics, dict]:
        """Aggregate micro-averaged metrics of a fitted method."""
        exclude = self.split.all_true_labeled
        tp_sum = 0
        returned_sum = 0
        actual_sum = 0
        per_pair: dict[tuple[str, str], LinkageMetrics] = {}
        for pa, pb in self.platform_pairs:
            result = linker.linkage(pa, pb)
            gold = self.split.heldout_true[(pa, pb)]
            metrics = precision_recall_f1(result.linked, gold, exclude=exclude)
            per_pair[(pa, pb)] = metrics
            tp_sum += metrics.true_positives
            returned_sum += metrics.returned
            actual_sum += metrics.actual
        precision = tp_sum / returned_sum if returned_sum else 0.0
        recall = tp_sum / actual_sum if actual_sum else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        overall = LinkageMetrics(
            precision=precision,
            recall=recall,
            f1=f1,
            true_positives=tp_sum,
            returned=returned_sum,
            actual=actual_sum,
        )
        return overall, per_pair

    def run(self, name: str, factory: Callable[[], LinkerProtocol]) -> MethodResult:
        """Fit + evaluate one method, timing the fit+link wall clock."""
        linker = factory()

        def _fit_and_link():
            linker.fit(
                self.world,
                self.split.labeled_positive,
                self.split.labeled_negative,
                self.platform_pairs,
                candidates=self.candidates,
            )
            return self.evaluate(linker)

        (overall, per_pair), seconds = timed(_fit_and_link)
        extras: dict[str, float] = {}
        sparsity = getattr(linker, "sparsity_report", None)
        if callable(sparsity):
            extras.update(sparsity())
        return MethodResult(
            method=name,
            metrics=overall,
            seconds=seconds,
            per_pair=per_pair,
            extras=extras,
        )

    def run_suite(
        self, factories: dict[str, Callable[[], LinkerProtocol]]
    ) -> list[MethodResult]:
        """Run several methods; returns results in insertion order."""
        return [self.run(name, factory) for name, factory in factories.items()]
