"""Grid-search parameter tuning on a validation split (Section 7.1).

Paper: "For the pair-wise similarity calculation ... the parameters (e.g.,
ε for user profiling, q and λ for multi-resolution temporal similarity
modeling) are tuned by a grid search procedure to maximize the performance of
a linear SVM on the validation set.  Then the optimized multi-dimensional
similarity x_ii' are used for model construction."

:func:`tune_feature_parameters` implements exactly that procedure: for each
grid point it builds a feature pipeline, featurizes the labeled validation
pairs, trains a linear SVM, and keeps the configuration with the best
validation F1.  The winner's settings are returned ready to hand to
:class:`~repro.core.hydra.HydraLinker` (whose constructor accepts the same
``sensor_q``/``sensor_lam`` knobs through a pre-built pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.core.svm import LinearSVM
from repro.features.missing import ZeroFiller
from repro.features.pipeline import AccountRef, FeaturePipeline
from repro.socialnet.platform import SocialWorld

__all__ = ["TuningGrid", "TuningResult", "tune_feature_parameters"]

Pair = tuple[AccountRef, AccountRef]


@dataclass
class TuningGrid:
    """Search space for the featurization hyper-parameters.

    Defaults cover the ranges the paper's components expect: pooling order q
    from mean to near-max, sigmoid steepness lambda over one decade, epsilon
    over three decades.
    """

    q: tuple[float, ...] = (1.0, 3.0, 6.0)
    lam: tuple[float, ...] = (2.0, 4.0, 8.0)
    epsilon: tuple[float, ...] = (0.001, 0.01, 0.1)


@dataclass
class TuningResult:
    """Winner of the grid search plus the full score table."""

    best_q: float
    best_lam: float
    best_epsilon: float
    best_score: float
    table: list[dict] = field(default_factory=list)

    def pipeline_kwargs(self) -> dict:
        """Keyword arguments for a :class:`FeaturePipeline` at the optimum."""
        return {"sensor_q": self.best_q, "sensor_lam": self.best_lam}


def _validation_f1(
    svm: LinearSVM, x: np.ndarray, y: np.ndarray
) -> float:
    predictions = svm.predict(x)
    tp = float(((predictions > 0) & (y > 0)).sum())
    fp = float(((predictions > 0) & (y < 0)).sum())
    fn = float(((predictions < 0) & (y > 0)).sum())
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def tune_feature_parameters(
    world: SocialWorld,
    train_positive: list[Pair],
    train_negative: list[Pair],
    validation_positive: list[Pair],
    validation_negative: list[Pair],
    *,
    grid: TuningGrid | None = None,
    num_topics: int = 10,
    max_lda_docs: int = 2000,
    seed: int = 0,
) -> TuningResult:
    """Run the paper's grid search; returns the best (q, lambda, epsilon).

    The SVM is trained on the training pairs and scored on the validation
    pairs for every grid point; ties break toward the first (smallest)
    configuration so results are deterministic.
    """
    if grid is None:
        grid = TuningGrid()
    if not train_positive or not train_negative:
        raise ValueError("training pairs of both classes are required")
    if not validation_positive or not validation_negative:
        raise ValueError("validation pairs of both classes are required")

    y_train = np.array(
        [1.0] * len(train_positive) + [-1.0] * len(train_negative)
    )
    y_val = np.array(
        [1.0] * len(validation_positive) + [-1.0] * len(validation_negative)
    )
    train_pairs = list(train_positive) + list(train_negative)
    val_pairs = list(validation_positive) + list(validation_negative)
    filler = ZeroFiller()

    best: tuple[float, float, float, float] | None = None
    table: list[dict] = []
    for q, lam, epsilon in product(grid.q, grid.lam, grid.epsilon):
        pipeline = FeaturePipeline(
            num_topics=num_topics,
            max_lda_docs=max_lda_docs,
            sensor_q=q,
            sensor_lam=lam,
            seed=seed,
        )
        pipeline.importance.epsilon = epsilon
        pipeline.fit(world, train_positive, train_negative)
        x_train = filler.fill_matrix(train_pairs, pipeline.matrix(train_pairs))
        x_val = filler.fill_matrix(val_pairs, pipeline.matrix(val_pairs))
        svm = LinearSVM(gamma_l=0.01, iterations=500).fit(x_train, y_train)
        score = _validation_f1(svm, x_val, y_val)
        table.append({"q": q, "lam": lam, "epsilon": epsilon, "f1": score})
        if best is None or score > best[3]:
            best = (q, lam, epsilon, score)

    assert best is not None
    return TuningResult(
        best_q=best[0],
        best_lam=best[1],
        best_epsilon=best[2],
        best_score=best[3],
        table=table,
    )
