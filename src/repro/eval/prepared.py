"""Prepared experiment state for hyper-parameter sweeps (Figs 8 and 10).

The paper's parameter studies re-train the *model* many times on the *same*
features (gamma_L x gamma_M grid under several p; p = 1..10).  Re-running
candidate generation, featurization and graph construction for every cell
would dominate the sweep, so :class:`PreparedExperiment` does the expensive
part once — split, candidates, pipeline fit, feature matrix, missing-data
fill, consistency blocks — and exposes :meth:`evaluate_config`, which solves
one :class:`~repro.core.moo.MooConfig` and scores the held-out linkage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.consistency import ConsistencyBlock, StructureConsistencyBuilder
from repro.core.moo import MooConfig, MultiObjectiveModel
from repro.eval.harness import ExperimentHarness
from repro.eval.metrics import LinkageMetrics, precision_recall_f1
from repro.features.missing import CoreStructureFiller, ZeroFiller
from repro.features.pipeline import FeaturePipeline
from repro.socialnet.platform import SocialWorld

__all__ = ["PreparedExperiment"]

AccountRef = tuple[str, str]
Pair = tuple[AccountRef, AccountRef]


@dataclass
class _SweepResult:
    """Outcome of one configuration cell."""

    config: MooConfig
    metrics: LinkageMetrics
    objective_values: list[float]


class PreparedExperiment:
    """One world, featurized once; many model configurations evaluated fast.

    Parameters mirror the harness; ``missing_strategy`` picks the HYDRA-M or
    HYDRA-Z fill applied to the (single) feature matrix.
    """

    def __init__(
        self,
        world: SocialWorld,
        *,
        platform_pairs: list[tuple[str, str]] | None = None,
        label_fraction: float = 1.0 / 6.0,
        missing_strategy: str = "core",
        num_topics: int = 10,
        max_lda_docs: int = 2500,
        seed: int = 0,
    ):
        self.world = world
        self.harness = ExperimentHarness(
            world,
            platform_pairs=platform_pairs,
            label_fraction=label_fraction,
            seed=seed,
        )
        split = self.harness.split

        # labels: ground-truth labeled pairs (prematched pairs stay unlabeled
        # here so sweep cells measure the pure configuration effect)
        labels: dict[Pair, float] = {p: 1.0 for p in split.labeled_positive}
        labels.update({p: -1.0 for p in split.labeled_negative})
        labeled_pairs = sorted(labels, key=lambda p: (p[0], p[1]))
        unlabeled: list[Pair] = []
        seen = set(labeled_pairs)
        for key in sorted(self.harness.candidates):
            for pair in self.harness.candidates[key].pairs:
                if pair not in seen:
                    seen.add(pair)
                    unlabeled.append(pair)
        self.global_pairs: list[Pair] = labeled_pairs + unlabeled
        self.num_labeled = len(labeled_pairs)
        self.y = np.array([labels[p] for p in labeled_pairs])

        # featurize once
        self.pipeline = FeaturePipeline(
            num_topics=num_topics, max_lda_docs=max_lda_docs, seed=seed
        )
        self.pipeline.fit(
            world,
            [p for p in labeled_pairs if labels[p] > 0],
            [p for p in labeled_pairs if labels[p] < 0],
        )
        raw = self.pipeline.matrix(self.global_pairs)
        if missing_strategy == "core":
            filler = CoreStructureFiller(world, self.pipeline)
        elif missing_strategy == "zero":
            filler = ZeroFiller()
        else:
            raise ValueError(f"unknown missing_strategy: {missing_strategy!r}")
        self.x_all = filler.fill_matrix(self.global_pairs, raw)

        # consistency blocks once
        row_of = {pair: i for i, pair in enumerate(self.global_pairs)}
        behavior = {
            ref: self.pipeline.behavior_summary(ref)
            for pair in self.global_pairs
            for ref in pair
        }
        builder = StructureConsistencyBuilder()
        self.blocks: list[ConsistencyBlock] = []
        self._pair_rows: dict[tuple[str, str], list[int]] = {}
        for pa, pb in self.harness.platform_pairs:
            block_pairs = [
                p for p in self.global_pairs if p[0][0] == pa and p[1][0] == pb
            ]
            self._pair_rows[(pa, pb)] = [row_of[p] for p in block_pairs]
            if len(block_pairs) >= 2:
                indices = np.array([row_of[p] for p in block_pairs], dtype=np.int64)
                self.blocks.append(
                    builder.build(world, block_pairs, behavior, indices=indices)
                )

    # ------------------------------------------------------------------
    def evaluate_config(
        self, config: MooConfig, *, threshold: float = 0.0, one_to_one: bool = True
    ) -> _SweepResult:
        """Fit one configuration and score held-out linkage quality."""
        model = MultiObjectiveModel(config)
        model.fit(
            self.x_all[: self.num_labeled],
            self.y,
            self.x_all[self.num_labeled:],
            self.blocks,
        )
        scores = model.decision_function(self.x_all)

        exclude = self.harness.split.all_true_labeled
        tp_sum = returned_sum = actual_sum = 0
        for key, rows in self._pair_rows.items():
            ranked = sorted(
                ((float(scores[r]), r) for r in rows if scores[r] > threshold),
                key=lambda t: (-t[0], t[1]),
            )
            used_a: set[str] = set()
            used_b: set[str] = set()
            linked: list[Pair] = []
            for _, row in ranked:
                ref_a, ref_b = self.global_pairs[row]
                if one_to_one and (ref_a[1] in used_a or ref_b[1] in used_b):
                    continue
                used_a.add(ref_a[1])
                used_b.add(ref_b[1])
                linked.append((ref_a, ref_b))
            metrics = precision_recall_f1(
                linked, self.harness.split.heldout_true[key], exclude=exclude
            )
            tp_sum += metrics.true_positives
            returned_sum += metrics.returned
            actual_sum += metrics.actual
        precision = tp_sum / returned_sum if returned_sum else 0.0
        recall = tp_sum / actual_sum if actual_sum else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        overall = LinkageMetrics(
            precision=precision,
            recall=recall,
            f1=f1,
            true_positives=tp_sum,
            returned=returned_sum,
            actual=actual_sum,
        )
        return _SweepResult(
            config=config, metrics=overall, objective_values=model.objective_values_
        )
