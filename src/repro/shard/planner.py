"""Shard planner: partition one fitted artifact into K serving shards.

The planner turns a single-process artifact (:mod:`repro.persist`) into a
*shard plan* directory::

    plan/
      shard_plan.json     # assignment, candidate ownership, shard inventory
      head/               # the scoring head (decision function, no world)
      shard_0000/         # a full artifact: packed-subset store + manifest
      shard_0001/
      ...

Each shard artifact is a complete, loadable linker over a
``PackedAccountStore.subset()`` of the account universe, so the per-shard
serving workers initialize from a path exactly like single-process parallel
workers do (:func:`repro.parallel.worker.init_shard_worker`).

Three account sets per shard, computed here and recorded in the shard's
manifest:

**owned**
    ``assignment.shard_of(ref) == shard``.  Disjoint across shards; writes
    route by ownership.  A candidate pair is owned by the shard that owns
    its left ref.

**served**
    Owned accounts plus the partners of owned candidate pairs.  Any pair of
    served accounts can be featurized on this shard with a bit-exact Eqn 18
    fill (see below); shard workers refuse pairs outside the served set
    rather than silently fill them approximately.

**resident**
    Served accounts plus the one-hop top-``k`` interaction-friend closure
    of every served account.  Residents are featurizable (they are in the
    packed subset) but not addressable.  The closure is what makes served
    fills exact: ``graph.top_friends`` ranks by ``(-weight, id)`` — a total
    order — so when a served account's global top-k friends are all kept,
    the subset graph's top-k equals the full graph's top-k, and friend-pair
    vectors are raw featurizations (no recursive fill), so one hop closes
    the recursion.

Known approximation (documented, deliberate): blocking statistics are
shard-local.  Candidate pairs *created by post-plan ingestion* may differ
from what a single-process deployment would create (rare-word rarity is
judged per shard, partners on other shards are invisible to blocking), so
parity over mutations is defined on the plan-time candidate set plus
owner-created pairs — the chaos suite pins exactly that contract.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.candidates import CandidateSet
from repro.features.missing import CoreStructureFiller, ZeroFiller
from repro.persist import load_linker, save_linker, save_scoring_head
from repro.persist.artifact import _pair_from_json, _pair_to_json
from repro.shard.assign import (
    ExplicitAssignment,
    HashAssignment,
    assignment_from_json,
)
from repro.socialnet.platform import subset_world

__all__ = [
    "PLAN_FORMAT",
    "PLAN_VERSION",
    "PlanEntry",
    "ShardInfo",
    "ShardPlanError",
    "ShardTopology",
    "load_shard_plan",
    "plan_shards",
    "rebalance_assignment",
    "rebalance_plan",
]

PLAN_FORMAT = "hydra-shard-plan"
PLAN_VERSION = 1

_PLAN_FILE = "shard_plan.json"
_HEAD_DIR = "head"

AccountRef = tuple[str, str]


class ShardPlanError(RuntimeError):
    """Raised for unreadable, incomplete, or incompatible shard plans."""


@dataclass(frozen=True)
class PlanEntry:
    """One plan-time candidate pair with its rule evidence and owner."""

    pair: tuple[AccountRef, AccountRef]
    evidence: frozenset[str]
    owner: int


@dataclass(frozen=True)
class ShardInfo:
    """One shard's inventory facts, as recorded in ``shard_plan.json``."""

    index: int
    path: str
    owned_accounts: int
    served_accounts: int
    resident_accounts: int
    owned_pairs: int


@dataclass
class ShardTopology:
    """A loaded shard plan: everything the gateway router needs."""

    path: Path
    num_shards: int
    assignment: object
    source_artifact: str | None
    base_epoch: int
    threshold: float
    platform_pairs: list[tuple[str, str]]
    #: per platform-pair key: the global candidate list in source order
    entries: dict[tuple[str, str], list[PlanEntry]] = field(
        default_factory=dict
    )
    shards: list[ShardInfo] = field(default_factory=list)

    @property
    def head_path(self) -> Path:
        return self.path / _HEAD_DIR

    def shard_path(self, index: int) -> Path:
        return self.path / self.shards[index].path


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def _slice_filler(filler, sub_world, sub_pipeline):
    """A filler equivalent to ``filler`` but bound to the shard subset."""
    if isinstance(filler, ZeroFiller):
        return ZeroFiller()
    if isinstance(filler, CoreStructureFiller):
        if filler._matrix is None:
            raise ShardPlanError(
                "cannot shard a linker whose filler uses a custom "
                "pair_vector override"
            )
        return CoreStructureFiller(
            sub_world,
            sub_pipeline,
            top_k=filler.top_k,
            engine=filler.engine,
            cache_limit=filler.cache_limit,
        )
    raise ShardPlanError(
        f"cannot shard a linker with filler {type(filler).__name__}"
    )


def _slice_linker(linker, resident_order, shard_candidates, owned_pairs):
    """A shallow linker clone serving only the shard's resident subset.

    Shares the fitted model and read-only feature models with the source;
    replaces the world, pipeline cache/store, filler, and candidate index
    with shard-local slices.  Consistency blocks are fit-time state indexed
    against the *global* candidate rows, meaningless on a slice — shard
    artifacts drop them.
    """
    full_pipe = linker.pipeline
    keep: dict[str, list[str]] = {
        name: [] for name in linker._world.platforms
    }
    for platform, account_id in resident_order:
        keep[platform].append(account_id)
    sub_world = subset_world(linker._world, keep)

    pipe = copy.copy(full_pipe)
    pipe._world = sub_world
    pipe._cache = {ref: full_pipe._cache[ref] for ref in resident_order}
    pipe._packed = full_pipe.packed_store.subset(resident_order)
    pipe._batch = pipe._make_featurizer(pipe._packed)

    shard = copy.copy(linker)
    shard.pipeline = pipe
    shard._world = sub_world
    shard._filler = _slice_filler(linker._filler, sub_world, pipe)
    shard.candidates_ = shard_candidates
    shard.global_pairs_ = owned_pairs
    shard.blocks_ = []
    shard.artifact_path_ = None
    return shard


def plan_shards(
    artifact,
    out_dir,
    num_shards: int,
    *,
    seed: int = 0,
    assignment=None,
    linker=None,
) -> ShardTopology:
    """Partition ``artifact`` into ``num_shards`` shard artifacts.

    ``assignment`` defaults to :class:`HashAssignment(num_shards, seed)`;
    pass an :class:`ExplicitAssignment` (e.g. from
    :func:`rebalance_assignment`) to pin placements.  ``linker`` skips the
    artifact reload when the caller already holds the loaded source.
    Returns the loaded :class:`ShardTopology` of the written plan.
    """
    if num_shards < 1:
        raise ShardPlanError(f"num_shards must be >= 1, got {num_shards}")
    if linker is None:
        linker = load_linker(artifact)
    if assignment is None:
        assignment = HashAssignment(num_shards, seed=seed)
    if assignment.num_shards != num_shards:
        raise ShardPlanError(
            f"assignment partitions into {assignment.num_shards} shards, "
            f"planner asked for {num_shards}"
        )

    full_pipe = linker.pipeline
    store = full_pipe.packed_store
    world = linker._world

    owned: list[set[AccountRef]] = [set() for _ in range(num_shards)]
    for ref in store.refs:
        owned[assignment.shard_of(ref)].add(ref)

    # candidate ownership: the shard owning the left ref owns the pair;
    # per-shard slices keep the global (per-key, source-order) row order
    entries: dict[tuple[str, str], list[PlanEntry]] = {}
    shard_cands: list[dict] = [{} for _ in range(num_shards)]
    served: list[set[AccountRef]] = [set(s) for s in owned]
    for key in sorted(linker.candidates_):
        cand = linker.candidates_[key]
        entries[key] = []
        prematched = set(cand.prematched)
        for row, (pair, evidence) in enumerate(zip(cand.pairs, cand.evidence)):
            owner = assignment.shard_of(pair[0])
            entries[key].append(PlanEntry(pair, evidence, owner))
            slice_ = shard_cands[owner].setdefault(
                key,
                CandidateSet(platform_a=key[0], platform_b=key[1]),
            )
            if row in prematched:
                slice_.prematched.append(len(slice_.pairs))
            slice_.pairs.append(pair)
            slice_.evidence.append(evidence)
            served[owner].add(pair[0])
            served[owner].add(pair[1])

    # every shard carries every platform-pair key (possibly empty) so
    # shard-local top_k / ingestion always finds its registry slot
    for shard_index in range(num_shards):
        for key in sorted(linker.candidates_):
            shard_cands[shard_index].setdefault(
                key, CandidateSet(platform_a=key[0], platform_b=key[1])
            )

    # resident closure: top-k interaction friends of every served account,
    # so served pairs' Eqn 18 fills are computed from exactly the friends
    # the full deployment would use
    residents: list[set[AccountRef]] = [set(s) for s in served]
    filler = linker._filler
    friend_k = getattr(filler, "top_k", 0)
    if friend_k:
        for shard_index in range(num_shards):
            for platform, account_id in served[shard_index]:
                graph = world.platforms[platform].graph
                for friend_id in graph.top_friends(account_id, friend_k):
                    friend = (platform, friend_id)
                    if friend in store.row_of and friend in full_pipe._cache:
                        residents[shard_index].add(friend)

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    save_scoring_head(linker, out_dir / _HEAD_DIR)

    shard_infos = []
    pack_order = list(full_pipe._cache)
    for shard_index in range(num_shards):
        resident_order = [
            ref for ref in pack_order if ref in residents[shard_index]
        ]
        owned_pairs = [
            pair
            for pair in linker.global_pairs_
            if assignment.shard_of(pair[0]) == shard_index
        ]
        shard_linker = _slice_linker(
            linker,
            resident_order,
            shard_cands[shard_index],
            owned_pairs,
        )
        shard_name = f"shard_{shard_index:04d}"
        save_linker(
            shard_linker,
            out_dir / shard_name,
            extra_manifest={
                "shard": {
                    "index": shard_index,
                    "num_shards": num_shards,
                    "served": sorted(
                        [list(ref) for ref in served[shard_index]]
                    ),
                    "owned_accounts": len(owned[shard_index]),
                    "resident_accounts": len(resident_order),
                    "owned_pairs": len(owned_pairs),
                }
            },
        )
        shard_infos.append(
            ShardInfo(
                index=shard_index,
                path=shard_name,
                owned_accounts=len(owned[shard_index]),
                served_accounts=len(served[shard_index]),
                resident_accounts=len(resident_order),
                owned_pairs=len(owned_pairs),
            )
        )

    plan = {
        "format": PLAN_FORMAT,
        "version": PLAN_VERSION,
        "num_shards": num_shards,
        "assignment": assignment.to_json(),
        "source_artifact": str(artifact) if artifact is not None else None,
        "base_epoch": getattr(linker, "ingest_epoch_", 0),
        "threshold": linker.threshold,
        "platform_pairs": [list(key) for key in sorted(entries)],
        "candidates": [
            {
                "platform_a": key[0],
                "platform_b": key[1],
                "entries": [
                    [
                        _pair_to_json(entry.pair),
                        sorted(entry.evidence),
                        entry.owner,
                    ]
                    for entry in entries[key]
                ],
            }
            for key in sorted(entries)
        ],
        "shards": [
            {
                "index": info.index,
                "path": info.path,
                "owned_accounts": info.owned_accounts,
                "served_accounts": info.served_accounts,
                "resident_accounts": info.resident_accounts,
                "owned_pairs": info.owned_pairs,
            }
            for info in shard_infos
        ],
    }
    (out_dir / _PLAN_FILE).write_text(
        json.dumps(plan, indent=2, sort_keys=True)
    )
    return load_shard_plan(out_dir)


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def load_shard_plan(plan_dir) -> ShardTopology:
    """Read a plan directory written by :func:`plan_shards`."""
    plan_dir = Path(plan_dir)
    plan_path = plan_dir / _PLAN_FILE
    if not plan_path.is_file():
        raise ShardPlanError(f"no shard plan at {plan_path}")
    try:
        plan = json.loads(plan_path.read_text())
    except json.JSONDecodeError as exc:
        raise ShardPlanError(f"corrupt shard plan at {plan_path}: {exc}")
    if plan.get("format") != PLAN_FORMAT:
        raise ShardPlanError(
            f"unknown plan format {plan.get('format')!r} "
            f"(expected {PLAN_FORMAT!r})"
        )
    if plan.get("version") != PLAN_VERSION:
        raise ShardPlanError(
            f"unsupported plan version {plan.get('version')!r} "
            f"(this build reads version {PLAN_VERSION})"
        )
    entries = {}
    for block in plan["candidates"]:
        key = (block["platform_a"], block["platform_b"])
        entries[key] = [
            PlanEntry(
                pair=_pair_from_json(raw_pair),
                evidence=frozenset(rules),
                owner=int(owner),
            )
            for raw_pair, rules, owner in block["entries"]
        ]
    shards = [
        ShardInfo(
            index=int(raw["index"]),
            path=raw["path"],
            owned_accounts=int(raw["owned_accounts"]),
            served_accounts=int(raw["served_accounts"]),
            resident_accounts=int(raw["resident_accounts"]),
            owned_pairs=int(raw["owned_pairs"]),
        )
        for raw in sorted(plan["shards"], key=lambda raw: raw["index"])
    ]
    return ShardTopology(
        path=plan_dir,
        num_shards=int(plan["num_shards"]),
        assignment=assignment_from_json(plan["assignment"]),
        source_artifact=plan.get("source_artifact"),
        base_epoch=int(plan.get("base_epoch", 0)),
        threshold=float(plan["threshold"]),
        platform_pairs=[tuple(key) for key in plan["platform_pairs"]],
        entries=entries,
        shards=shards,
    )


# ----------------------------------------------------------------------
# rebalancing
# ----------------------------------------------------------------------
def rebalance_assignment(
    topology: ShardTopology, num_shards: int | None = None
) -> ExplicitAssignment:
    """A pinned assignment that balances owned-pair load across shards.

    Greedy longest-processing-time placement: accounts are weighted by the
    candidate pairs they anchor (1 for storage + 2 per owned pair, since a
    pair costs its owner featurization of both sides), sorted heaviest
    first, and placed on the currently lightest shard.  Deterministic: ties
    break on the ref, then the lowest shard index.
    """
    num_shards = num_shards or topology.num_shards
    weights: dict[AccountRef, int] = {}
    for entry_list in topology.entries.values():
        for entry in entry_list:
            weights[entry.pair[0]] = weights.get(entry.pair[0], 0) + 2
            weights.setdefault(entry.pair[1], weights.get(entry.pair[1], 0))
    ranked = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
    loads = [0] * num_shards
    mapping: dict[AccountRef, int] = {}
    for ref, weight in ranked:
        target = min(range(num_shards), key=lambda i: (loads[i], i))
        mapping[ref] = target
        loads[target] += 1 + weight
    fallback_seed = getattr(topology.assignment, "seed", None)
    if fallback_seed is None:
        fallback_seed = getattr(
            getattr(topology.assignment, "fallback", None), "seed", 0
        )
    return ExplicitAssignment(
        mapping,
        num_shards,
        fallback=HashAssignment(num_shards, seed=fallback_seed),
    )


def rebalance_plan(
    plan_dir, out_dir, *, num_shards: int | None = None
) -> ShardTopology:
    """Re-plan an existing shard plan with a load-balanced assignment.

    Loads the plan at ``plan_dir``, derives a pinned
    :class:`ExplicitAssignment` from its candidate ownership skew, and
    writes a fresh plan (from the original source artifact) to ``out_dir``.
    """
    topology = load_shard_plan(plan_dir)
    if not topology.source_artifact:
        raise ShardPlanError("plan records no source artifact to re-plan from")
    source = Path(topology.source_artifact)
    if not (source / "manifest.json").is_file():
        raise ShardPlanError(
            f"source artifact no longer available at {source}"
        )
    num_shards = num_shards or topology.num_shards
    assignment = rebalance_assignment(topology, num_shards)
    return plan_shards(
        source, out_dir, num_shards, assignment=assignment
    )
