"""Distributed multi-shard serving: planner, workers, scatter-gather router.

The tier splits a fitted :class:`~repro.core.HydraLinker` artifact into K
disjoint shard artifacts (:func:`plan_shards`), serves each from its own
worker process (:mod:`repro.shard.tasks` over
:func:`repro.parallel.worker.init_shard_worker`), and routes queries
through :class:`ShardedLinkageService` — a drop-in
:class:`~repro.serving.LinkageService` for the gateway whose merged
results are bit-identical to a single-process deployment.
"""

from repro.shard.assign import (
    ExplicitAssignment,
    HashAssignment,
    assignment_from_json,
)
from repro.shard.planner import (
    PlanEntry,
    ShardInfo,
    ShardPlanError,
    ShardTopology,
    load_shard_plan,
    plan_shards,
    rebalance_assignment,
    rebalance_plan,
)
from repro.shard.router import (
    RouterStats,
    ShardedLinkageService,
    ShardUnavailableError,
)
from repro.shard.tasks import PairNotServed, StaleShardEpoch

__all__ = [
    "ExplicitAssignment",
    "HashAssignment",
    "PairNotServed",
    "PlanEntry",
    "RouterStats",
    "ShardInfo",
    "ShardPlanError",
    "ShardTopology",
    "ShardUnavailableError",
    "ShardedLinkageService",
    "StaleShardEpoch",
    "assignment_from_json",
    "load_shard_plan",
    "plan_shards",
    "rebalance_assignment",
    "rebalance_plan",
]
