"""Scatter-gather routing across per-shard serving workers.

:class:`ShardedLinkageService` loads a shard plan
(:func:`repro.shard.planner.plan_shards`) and serves the
:class:`~repro.serving.LinkageService` query interface from K shard worker
processes — the gateway (:mod:`repro.gateway`) cannot tell the two apart.

**Bit-parity by construction.**  Feature rows are row-independent, so each
shard featurizes its slice of a request bit-identically to a single-process
deployment; kernel Gram products are *chunk-shape-sensitive*, so the router
reassembles the rows in request order and scores them itself through the
plan's scoring head (:func:`repro.persist.load_scoring_head`) in exactly
the ``batch_size`` chunk composition the single-shard service would use
(:func:`repro.parallel.worker.score_chunked` /
:func:`~repro.parallel.worker.score_grouped`).  Same rows, same chunks,
same operands — same bytes.

**Degraded reads.**  A shard failure (dead pool, timeout) marks the shard
down; its rows stay NaN in the assembled matrix, which keeps the chunk
*shapes* — and therefore the healthy rows' bits — unchanged.  NaN scores
sort last and are dropped from ``top_k`` / ``link_account`` results, the
response carries a ``shards_unavailable`` marker, and degraded score
arrays are never cached.  Writes routed to a down *owner* shard are
rejected with :class:`ShardUnavailableError` (HTTP 503 at the gateway).

**Writes.**  Ingests/removals broadcast to every live shard with an
ownership mask: the owner runs full candidate maintenance, other shards
ghost-ingest interaction partners of their residents
(:mod:`repro.shard.tasks`).  Accepted mutations append to an in-memory
journal; :meth:`ShardedLinkageService.restart_shard` rebuilds a shard
worker from its artifact and replays the journal, so a crashed shard
rejoins at the epoch it would have reached had it never died.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.approx import ApproxConfig, FastScorer, prune_rows
from repro.parallel import worker as _worker
from repro.parallel.engine import default_mp_context
from repro.persist import load_scoring_head
from repro.serving.service import IngestReport, LruCache, ScoredLink
from repro.shard import tasks as _tasks
from repro.shard.planner import ShardTopology, load_shard_plan
from repro.utils.ranking import top_k_indices

__all__ = [
    "RouterStats",
    "ShardUnavailableError",
    "ShardedLinkageService",
]

AccountRef = tuple[str, str]
Pair = tuple[AccountRef, AccountRef]


class ShardUnavailableError(RuntimeError):
    """A write was routed to a shard that is currently down."""

    def __init__(self, shards):
        self.shards = sorted(shards)
        super().__init__(
            f"shard(s) {self.shards} unavailable; retry after restart"
        )


@dataclass
class RouterStats:
    """Running counters of a sharded deployment (gateway ``/stats``)."""

    queries: int = 0
    pairs_scored: int = 0
    batches: int = 0
    degraded_queries: int = 0
    score_cache_entries: int = 0
    score_cache_hits: int = 0
    score_cache_misses: int = 0
    registry_epoch: int = 0
    accounts_ingested: int = 0
    accounts_removed: int = 0
    ingest_batches: int = 0
    num_shards: int = 0
    shards: list[dict] = field(default_factory=list)
    shards_unavailable: list[int] = field(default_factory=list)
    approx_queries: int = 0
    approx_pairs_scored: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Entry:
    """One routed candidate pair: the pair, its evidence, its owner shard."""

    pair: Pair
    evidence: frozenset[str]
    owner: int


@dataclass
class _KeyIndex:
    by_left: dict[str, list[int]] = field(default_factory=dict)
    by_right: dict[str, list[int]] = field(default_factory=dict)


class _ShardHandle:
    """The router's view of one shard worker."""

    def __init__(self, index: int, path: str):
        self.index = index
        self.path = path
        self.pool: ProcessPoolExecutor | None = None
        self.inline_state: dict | None = None
        self.alive = False
        self.pid: int | None = None
        self.expected_epoch = 0
        self.restarts = 0
        self.last_error: str | None = None

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "path": self.path,
            "alive": self.alive,
            "pid": self.pid,
            "epoch": self.expected_epoch,
            "restarts": self.restarts,
            "last_error": self.last_error,
        }


class ShardedLinkageService:
    """Serve linkage queries by scatter-gather over K shard workers.

    Implements the :class:`~repro.serving.LinkageService` query/mutation
    interface (``score_pairs``, ``score_pairs_grouped``, ``top_k``,
    ``link_account``, ``ingest_payloads``, ``remove_account``, ``stats``,
    ``candidate_pairs`` …) so :class:`repro.gateway.LinkageGateway` serves
    it unchanged.

    Parameters
    ----------
    plan:
        A plan directory path or a loaded :class:`ShardTopology`.
    batch_size:
        Kernel chunk size for head scoring — must match the single-shard
        deployment being compared against for bit-parity.
    inline:
        Run every shard in-process (sandboxed via
        :func:`repro.parallel.worker.swap_state`) instead of spawning
        worker processes.  For tests and constrained environments; the
        failure-isolation story obviously requires processes.
    score_cache_size:
        Capacity of the per-platform-pair candidate-score LRU.
    request_timeout:
        Seconds to wait on any one shard task before declaring the shard
        down.
    approx:
        Defaults for the approximate path (``top_k(..., exact=False)``):
        router-side prefilter budget, rescore window, landmark count.
        The fast scorer itself comes from the scoring head when the plan
        persisted one, so the router's approximate ranking bit-agrees
        with the single-process service over the same artifact.
    """

    #: lets the gateway distinguish sharded deployments (no /swap, 503s)
    is_sharded = True

    def __init__(
        self,
        plan,
        *,
        batch_size: int = 256,
        inline: bool = False,
        score_cache_size: int = 64,
        request_timeout: float = 600.0,
        approx: ApproxConfig | None = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        topology = (
            plan if isinstance(plan, ShardTopology) else load_shard_plan(plan)
        )
        self.topology = topology
        self.batch_size = batch_size
        self.inline = inline
        self.request_timeout = request_timeout
        self.approx = approx if approx is not None else ApproxConfig()
        head = load_scoring_head(topology.head_path)
        self._model = head["model"]
        self.feature_names = head["feature_names"]
        self.threshold = head["threshold"]
        self._fast_scorer = head.get("fast_scorer")
        self._assignment = topology.assignment

        self._entries: dict[tuple[str, str], list[_Entry]] = {
            key: [
                _Entry(entry.pair, entry.evidence, entry.owner)
                for entry in entry_list
            ]
            for key, entry_list in topology.entries.items()
        }
        self._owner_of: dict[Pair, int] = {}
        self._index: dict[tuple[str, str], _KeyIndex] = {}
        for key in self._entries:
            self._reindex_key(key)

        self._epoch = topology.base_epoch
        self._journal: list[tuple] = []
        self._score_cache = LruCache(score_cache_size)
        self._stats_lock = threading.Lock()
        self._queries = 0
        self._pairs_scored = 0
        self._batches = 0
        self._degraded_queries = 0
        self._accounts_ingested = 0
        self._accounts_removed = 0
        self._ingest_batches = 0
        self._approx_queries = 0
        self._approx_pairs_scored = 0

        self._handles = [
            _ShardHandle(info.index, str(topology.shard_path(info.index)))
            for info in topology.shards
        ]
        try:
            for handle in self._handles:
                self._start_shard(handle)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # shard lifecycle
    # ------------------------------------------------------------------
    def _start_shard(self, handle: _ShardHandle) -> dict:
        """Boot one shard worker from its artifact and health-check it."""
        if self.inline:
            state: dict = {}
            previous = _worker.swap_state(state)
            try:
                _worker.init_shard_worker(handle.path, self.batch_size)
            finally:
                _worker.swap_state(previous)
            handle.inline_state = state
        else:
            handle.pool = ProcessPoolExecutor(
                max_workers=1,
                initializer=_worker.init_shard_worker,
                initargs=(handle.path, self.batch_size),
                mp_context=default_mp_context(),
            )
        health = self._submit(handle, _tasks.shard_health).result(
            timeout=self.request_timeout
        )
        handle.pid = health["pid"]
        handle.expected_epoch = health["epoch"]
        handle.alive = True
        handle.last_error = None
        return health

    def _submit(self, handle: _ShardHandle, fn, *args) -> Future:
        if handle.pool is not None:
            try:
                return handle.pool.submit(fn, *args)
            except Exception as exc:
                # a broken pool rejects at submit time; deliver the failure
                # through the future so every gather path handles it once
                future: Future = Future()
                future.set_exception(exc)
                return future
        future = Future()
        previous = _worker.swap_state(handle.inline_state)
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # delivered via future, like a pool
            future.set_exception(exc)
        finally:
            _worker.swap_state(previous)
        return future

    def _mark_down(self, handle: _ShardHandle, exc: BaseException) -> None:
        handle.alive = False
        handle.last_error = f"{type(exc).__name__}: {exc}"
        if handle.pool is not None:
            handle.pool.shutdown(wait=False, cancel_futures=True)
            handle.pool = None
        handle.inline_state = None

    def restart_shard(self, index: int) -> dict:
        """Rebuild one shard worker from its artifact and replay the journal.

        The restarted worker loads the plan-time shard artifact, then
        re-applies every journaled mutation with this shard's ownership
        mask — including mutations accepted while it was down — so it
        rejoins at the epoch it would hold had it never crashed.  Returns
        the post-replay health probe.
        """
        if not 0 <= index < len(self._handles):
            raise KeyError(f"no shard {index}")
        handle = self._handles[index]
        if handle.pool is not None:
            handle.pool.shutdown(wait=False, cancel_futures=True)
            handle.pool = None
        handle.inline_state = None
        handle.alive = False
        self._start_shard(handle)
        for op in self._journal:
            try:
                if op[0] == "ingest":
                    _, refs, payloads = op
                    mask = [
                        self._route_account(ref) == index for ref in refs
                    ]
                    result = self._submit(
                        handle, _tasks.shard_ingest, refs, payloads, mask
                    ).result(timeout=self.request_timeout)
                else:
                    _, ref = op
                    result = self._submit(
                        handle, _tasks.shard_remove, ref
                    ).result(timeout=self.request_timeout)
                handle.expected_epoch = result["epoch"]
            except Exception as exc:
                # a mutation that failed live fails identically on replay;
                # anything else is a real fault and downs the shard again
                if isinstance(exc, (ValueError, KeyError)):
                    continue
                self._mark_down(handle, exc)
                raise
        health = self._submit(handle, _tasks.shard_health).result(
            timeout=self.request_timeout
        )
        handle.expected_epoch = health["epoch"]
        handle.pid = health["pid"]
        handle.restarts += 1
        handle.alive = True
        handle.last_error = None
        return {**health, "restarts": handle.restarts}

    def shards_unavailable(self) -> list[int]:
        """Indexes of shards currently marked down."""
        return [h.index for h in self._handles if not h.alive]

    def close(self) -> None:
        for handle in getattr(self, "_handles", []):
            if handle.pool is not None:
                handle.pool.shutdown(wait=False, cancel_futures=True)
                handle.pool = None
            handle.inline_state = None
            handle.alive = False

    def __enter__(self) -> "ShardedLinkageService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # gateway-compat surface
    # ------------------------------------------------------------------
    @property
    def registry_epoch(self) -> int:
        """Router mutation epoch: one bump per accepted write."""
        return self._epoch

    @property
    def wal(self):
        """Sharded deployments have no single WAL (the journal stands in)."""
        return None

    def close_wal(self) -> None:
        pass

    def platform_pairs(self) -> list[tuple[str, str]]:
        return sorted(self._entries)

    def num_candidates(self) -> int:
        return sum(len(entries) for entries in self._entries.values())

    def candidate_pairs(self, key: tuple[str, str]) -> list[Pair]:
        key = (key[0], key[1])
        if key not in self._entries:
            raise KeyError(f"platform pair {key} was not fitted")
        return [entry.pair for entry in self._entries[key]]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route_account(self, ref: AccountRef) -> int:
        return self._assignment.shard_of((ref[0], ref[1]))

    def _route_pair(self, pair: Pair) -> int:
        owner = self._owner_of.get(pair)
        if owner is not None:
            return owner
        return self._route_account(pair[0])

    def _reindex_key(self, key: tuple[str, str]) -> None:
        index = _KeyIndex()
        for row, entry in enumerate(self._entries[key]):
            index.by_left.setdefault(entry.pair[0][1], []).append(row)
            index.by_right.setdefault(entry.pair[1][1], []).append(row)
            self._owner_of[entry.pair] = entry.owner
        self._index[key] = index

    # ------------------------------------------------------------------
    # scatter-gather reads
    # ------------------------------------------------------------------
    def _featurize(self, pairs: list[Pair]) -> tuple[np.ndarray, list[int]]:
        """Assembled feature matrix in request order, plus down shards.

        Rows owned by an unavailable shard stay NaN — same matrix shape,
        so healthy rows keep their exact single-shard bits, and NaN
        propagates to exactly the affected scores.
        """
        groups: dict[int, list[int]] = {}
        for row, pair in enumerate(pairs):
            groups.setdefault(self._route_pair(pair), []).append(row)
        x = np.full((len(pairs), len(self.feature_names)), np.nan)
        down: set[int] = set()
        dispatched = []
        for shard_index in sorted(groups):
            handle = self._handles[shard_index]
            rows = groups[shard_index]
            if not handle.alive:
                down.add(shard_index)
                continue
            future = self._submit(
                handle,
                _tasks.shard_featurize,
                [pairs[row] for row in rows],
                handle.expected_epoch,
            )
            dispatched.append((handle, rows, future))
        for handle, rows, future in dispatched:
            try:
                block = future.result(timeout=self.request_timeout)
            except (_tasks.PairNotServed, _tasks.StaleShardEpoch):
                raise
            except Exception as exc:
                self._mark_down(handle, exc)
                down.add(handle.index)
                continue
            x[rows] = block
        return x, sorted(down)

    def _score_rows(self, x: np.ndarray, batch: int) -> np.ndarray:
        """Head scoring with the canonical single-shard chunk composition."""
        out = np.empty(len(x))
        for lo in range(0, len(x), batch):
            chunk = x[lo : lo + batch]
            out[lo : lo + len(chunk)] = self._model.decision_function(chunk)
        return out

    def _normalize(self, pairs) -> list[Pair]:
        return [
            ((pair[0][0], pair[0][1]), (pair[1][0], pair[1][1]))
            for pair in pairs
        ]

    def score_pairs(
        self, pairs: list[Pair], *, batch_size: int | None = None
    ) -> np.ndarray:
        """Decision values in request order; NaN for pairs on down shards."""
        with self._stats_lock:
            self._queries += 1
        if not pairs:
            return np.zeros(0)
        pairs = self._normalize(pairs)
        batch = batch_size if batch_size is not None else self.batch_size
        if batch < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch}")
        x, down = self._featurize(pairs)
        scores = self._score_rows(x, batch)
        with self._stats_lock:
            self._pairs_scored += len(pairs)
            self._batches += -(-len(pairs) // batch)
            if down:
                self._degraded_queries += 1
        return scores

    def score_pairs_grouped(
        self, groups: list[list[Pair]], *, batch_size: int | None = None
    ) -> list[np.ndarray]:
        """Coalesced scoring for the gateway micro-batcher.

        One scatter featurizes every group's pairs; each group's rows are
        then head-scored with exactly the chunk composition a standalone
        ``score_pairs`` call would use, mirroring
        :func:`repro.parallel.worker.score_grouped` — so coalescing never
        changes a group's bytes.
        """
        batch = batch_size if batch_size is not None else self.batch_size
        if batch < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch}")
        with self._stats_lock:
            self._queries += len(groups)
        groups = [self._normalize(group) for group in groups]
        total = sum(len(group) for group in groups)
        if total == 0:
            return [np.zeros(0) for _ in groups]
        all_pairs = [pair for group in groups for pair in group]
        x, down = self._featurize(all_pairs)
        out: list[np.ndarray] = []
        offset = 0
        for group in groups:
            scores = np.empty(len(group))
            for lo in range(0, len(group), batch):
                hi = min(lo + batch, len(group))
                scores[lo:hi] = self._model.decision_function(
                    x[offset + lo : offset + hi]
                )
            out.append(scores)
            offset += len(group)
        with self._stats_lock:
            self._pairs_scored += total
            self._batches += -(-total // batch)
            if down:
                self._degraded_queries += 1
        return out

    def _cached_scores(self, key: tuple[str, str]) -> np.ndarray:
        """Per-key candidate scores via the LRU; degraded fills not cached."""

        def compute():
            pairs = [entry.pair for entry in self._entries[key]]
            x, down = self._featurize(pairs)
            return self._score_rows(x, self.batch_size), bool(down)

        scores, degraded = self._score_cache.get_or_compute(key, compute)
        if degraded:
            self._score_cache.invalidate(key)
            with self._stats_lock:
                self._degraded_queries += 1
        return scores

    def _distances(self, pairs: list[Pair]) -> np.ndarray:
        """Behavior distances from each pair's owner shard (NaN when down)."""
        out = np.full(len(pairs), np.nan)
        groups: dict[int, list[int]] = {}
        for row, pair in enumerate(pairs):
            groups.setdefault(self._route_pair(pair), []).append(row)
        dispatched = []
        for shard_index, rows in sorted(groups.items()):
            handle = self._handles[shard_index]
            if not handle.alive:
                continue
            future = self._submit(
                handle, _tasks.shard_distances, [pairs[row] for row in rows]
            )
            dispatched.append((handle, rows, future))
        for handle, rows, future in dispatched:
            try:
                out[rows] = future.result(timeout=self.request_timeout)
            except Exception as exc:
                self._mark_down(handle, exc)
        return out

    def _resolve(
        self, platform_a: str, platform_b: str
    ) -> tuple[tuple[str, str], bool]:
        key = (platform_a, platform_b)
        if key in self._entries:
            return key, False
        key = (platform_b, platform_a)
        if key in self._entries:
            return key, True
        raise KeyError(
            f"platform pair ({platform_a}, {platform_b}) was not fitted"
        )

    def _links(
        self,
        key: tuple[str, str],
        rows: list[int],
        scores: np.ndarray,
        flipped: bool,
    ) -> list[ScoredLink]:
        entries = self._entries[key]
        distances = self._distances([entries[row].pair for row in rows])
        links = []
        for row, distance in zip(rows, distances):
            entry = entries[row]
            pair = (
                (entry.pair[1], entry.pair[0]) if flipped else entry.pair
            )
            links.append(
                ScoredLink(
                    pair=pair,
                    score=float(scores[row]),
                    evidence=entry.evidence,
                    behavior_distance=float(distance),
                )
            )
        return links

    def _ensure_fast_scorer(self) -> FastScorer:
        """The landmark fast scorer for the approximate path.

        Prefer the scoring head's persisted scorer (identical bytes to the
        single-process service over the same artifact); otherwise rebuild
        deterministically from the head model with the default seed — the
        same fallback :meth:`repro.core.HydraLinker.ensure_fast_scorer`
        uses, so both deployments still agree.
        """
        if self._fast_scorer is None:
            defaults = ApproxConfig()
            self._fast_scorer = FastScorer.from_model(
                self._model,
                num_landmarks=defaults.num_landmarks,
                seed=defaults.seed,
                ridge=defaults.ridge,
            )
        return self._fast_scorer

    def _budget(self, budget: int | None) -> int:
        budget = self.approx.budget if budget is None else int(budget)
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        return budget

    def _approx_select(
        self,
        items: list[tuple[tuple[str, str], int, bool]],
        k: int,
    ) -> list[ScoredLink]:
        """Approximate ranking over pruned routed candidates.

        Mirrors the single-process service: one scatter featurizes the
        pruned pool (rows stay bit-identical — row independence), the
        float32 landmark scorer ranks it, a ``rescore_multiple * k`` short
        list is head-rescored exactly to place the cutoff, and the final
        rows are rescored once more so returned bytes equal
        ``score_pairs`` on exactly those pairs.  Degraded rows (down
        shards) carry NaN through the fast scorer, sort last, and are
        omitted — the same contract as the exact path.  Results never
        enter the exact score cache.
        """
        if not items or k == 0:
            return []
        pairs = [self._entries[key][row].pair for key, row, _ in items]
        x, down = self._featurize(pairs)
        fast = self._ensure_fast_scorer().score(x)
        shortlist = top_k_indices(
            fast, min(len(items), k * self.approx.rescore_multiple)
        )
        mid = self._score_rows(x[shortlist], self.batch_size)
        keep = top_k_indices(mid, k)
        final = shortlist[keep]
        final_scores = self._score_rows(x[final], self.batch_size)
        order = top_k_indices(final_scores, final_scores.shape[0])
        with self._stats_lock:
            self._approx_queries += 1
            self._approx_pairs_scored += len(items)
            if down:
                self._degraded_queries += 1
        chosen: list[tuple[tuple[str, str], int, bool]] = []
        scores: list[float] = []
        for position in order:
            score = final_scores[int(position)]
            if np.isnan(score):
                continue
            chosen.append(items[int(final[int(position)])])
            scores.append(float(score))
        return self._assemble_links(chosen, scores)

    def _assemble_links(
        self,
        items: list[tuple[tuple[str, str], int, bool]],
        scores: list[float],
    ) -> list[ScoredLink]:
        """Build a response's links with one batched distance scatter."""
        entries = [self._entries[key][row] for key, row, _ in items]
        distances = self._distances([entry.pair for entry in entries])
        links: list[ScoredLink] = []
        for (key, row, flipped), entry, score, distance in zip(
            items, entries, scores, distances
        ):
            pair = (
                (entry.pair[1], entry.pair[0]) if flipped else entry.pair
            )
            links.append(
                ScoredLink(
                    pair=pair,
                    score=float(score),
                    evidence=entry.evidence,
                    behavior_distance=float(distance),
                )
            )
        return links

    def top_k(
        self,
        platform_a: str,
        platform_b: str,
        k: int = 10,
        *,
        exact: bool = True,
        budget: int | None = None,
    ) -> list[ScoredLink]:
        """The ``k`` strongest links; pairs on down shards are omitted.

        ``exact=False`` prunes to the top-``budget`` blocking-rule
        survivors at the router, scatter-featurizes only those, ranks with
        the head's landmark fast scorer and exactly rescores the final
        list — approximate cutoff, exact returned scores, same contract
        as :meth:`repro.serving.LinkageService.top_k`.
        """
        with self._stats_lock:
            self._queries += 1
        key, flipped = self._resolve(platform_a, platform_b)
        if not exact:
            entries = self._entries[key]
            rows = prune_rows(
                [entry.evidence for entry in entries],
                [entry.pair for entry in entries],
                self._budget(budget),
            )
            return self._approx_select(
                [(key, int(row), flipped) for row in rows], max(k, 0)
            )
        scores = self._cached_scores(key)
        order = top_k_indices(scores, max(k, 0))
        rows = [int(row) for row in order if not np.isnan(scores[row])]
        return self._links(key, rows, scores, flipped)

    def link_account(
        self,
        platform: str,
        account_id: str,
        *,
        other_platform: str | None = None,
        top: int = 5,
        exact: bool = True,
        budget: int | None = None,
    ) -> list[ScoredLink]:
        """Resolve one account against its routed candidates.

        ``exact=False`` prunes each platform pair's rows for this account
        to the budget's strongest blocking survivors before ranking the
        union through the approximate path (exact rescoring of the final
        list, as in :meth:`top_k`).
        """
        with self._stats_lock:
            self._queries += 1
        found: list[tuple[tuple[str, str], int, bool, float]] = []
        candidates: list[tuple[tuple[str, str], int, bool]] = []
        for key, index in self._index.items():
            if key[0] == platform and (other_platform in (None, key[1])):
                rows, flipped = index.by_left.get(account_id, []), False
            elif key[1] == platform and (other_platform in (None, key[0])):
                rows, flipped = index.by_right.get(account_id, []), True
            else:
                continue
            if not exact:
                entries = self._entries[key]
                pruned = prune_rows(
                    [entry.evidence for entry in entries],
                    [entry.pair for entry in entries],
                    self._budget(budget),
                    rows=rows,
                )
                candidates.extend((key, int(row), flipped) for row in pruned)
                continue
            scores = self._cached_scores(key)
            for row in rows:
                if not np.isnan(scores[row]):
                    found.append((key, row, flipped, float(scores[row])))
        if not exact:
            return self._approx_select(candidates, max(top, 0))
        found.sort(key=lambda item: -item[3])
        found = found[: max(top, 0)]
        return self._assemble_links(
            [(key, row, flipped) for key, row, flipped, _score in found],
            [score for _key, _row, _flipped, score in found],
        )

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def _broadcast_mutation(self, fn, *args) -> dict[int, dict]:
        """Run one mutation task on every live shard; gather results.

        Pool-level failures mark the shard down (its state is journal-
        recoverable); task-level errors re-raise after the sweep so every
        reachable shard saw the same op.
        """
        dispatched = []
        for handle in self._handles:
            if not handle.alive:
                continue
            dispatched.append((handle, self._submit(handle, fn, *args)))
        results: dict[int, dict] = {}
        task_error: BaseException | None = None
        for handle, future in dispatched:
            try:
                results[handle.index] = future.result(
                    timeout=self.request_timeout
                )
            except (ValueError, KeyError, RuntimeError) as exc:
                task_error = task_error or exc
            except Exception as exc:
                self._mark_down(handle, exc)
        if task_error is not None:
            raise task_error
        return results

    def _merge_key(
        self, key: tuple[str, str], snapshots: dict[int, dict]
    ) -> tuple[int, int, list[_Entry]]:
        """Fold per-shard owned candidate state into the routed catalog.

        Surviving entries keep the catalog order; entries dropped by their
        (reporting) owner disappear; new pairs append in shard-index order,
        owned by the shard that created them.  Returns (added, removed,
        added_entries).
        """
        reported = {
            shard: {
                pair: row
                for row, pair in enumerate(snapshot["pairs"])
            }
            for shard, snapshot in snapshots.items()
        }
        old_entries = self._entries[key]
        for entry in old_entries:
            self._owner_of.pop(entry.pair, None)
        merged: list[_Entry] = []
        seen: set[Pair] = set()
        removed = 0
        for entry in old_entries:
            if entry.owner in reported:
                row = reported[entry.owner].get(entry.pair)
                if row is None:
                    removed += 1
                    continue
                evidence = snapshots[entry.owner]["evidence"][row]
                merged.append(_Entry(entry.pair, evidence, entry.owner))
            else:
                merged.append(entry)
            seen.add(entry.pair)
        added_entries: list[_Entry] = []
        for shard in sorted(snapshots):
            snapshot = snapshots[shard]
            for pair, evidence in zip(
                snapshot["pairs"], snapshot["evidence"]
            ):
                if pair not in seen:
                    entry = _Entry(pair, evidence, shard)
                    merged.append(entry)
                    added_entries.append(entry)
                    seen.add(pair)
        self._entries[key] = merged
        self._reindex_key(key)
        self._score_cache.invalidate(key)
        return len(added_entries), removed, added_entries

    def _apply_snapshots(
        self, results: dict[int, dict]
    ) -> tuple[int, int, list[tuple[tuple[str, str], _Entry]]]:
        affected: dict[tuple[str, str], dict[int, dict]] = {}
        for shard, result in results.items():
            for key, snapshot in result.get("keys", {}).items():
                affected.setdefault(key, {})[shard] = snapshot
        added = removed = 0
        new_entries: list[tuple[tuple[str, str], _Entry]] = []
        for key in sorted(affected):
            key_added, key_removed, entries = self._merge_key(
                key, affected[key]
            )
            added += key_added
            removed += key_removed
            new_entries.extend((key, entry) for entry in entries)
        return added, removed, new_entries

    def ingest_payloads(
        self, refs: list[AccountRef], payloads: list[dict], *, score: bool = True
    ) -> IngestReport:
        """Route one ingest batch: owners apply, neighbors ghost-ingest.

        ``payloads`` are JSON payload dicts (:func:`payload_to_json`
        form) — the transport the gateway receives and the journal
        replays.  Raises :class:`ShardUnavailableError` (HTTP 503) when
        any arriving ref's owner shard is down: accepting the write would
        strand it outside the journal's recovery guarantee.
        """
        refs = [(ref[0], ref[1]) for ref in refs]
        if len(payloads) != len(refs):
            raise ValueError(
                f"{len(refs)} refs but {len(payloads)} account payloads"
            )
        down_owners = {
            shard
            for shard in (self._route_account(ref) for ref in refs)
            if not self._handles[shard].alive
        }
        if down_owners:
            raise ShardUnavailableError(down_owners)
        self._journal.append(("ingest", refs, payloads))
        results = {}
        for handle in self._handles:
            if not handle.alive:
                continue
            mask = [
                self._route_account(ref) == handle.index for ref in refs
            ]
            results.update(
                self._broadcast_single(
                    handle,
                    _tasks.shard_ingest,
                    refs,
                    payloads,
                    mask,
                    handle.expected_epoch,
                )
            )
        for shard, result in results.items():
            self._handles[shard].expected_epoch = result["epoch"]
        added, removed, new_entries = self._apply_snapshots(results)
        self._epoch += 1
        with self._stats_lock:
            self._accounts_ingested += len(refs)
            self._ingest_batches += 1
        links: tuple[ScoredLink, ...] = ()
        if score and new_entries:
            links = tuple(
                sorted(
                    self._score_links(new_entries),
                    key=lambda link: -link.score,
                )
            )
        return IngestReport(
            refs=tuple(refs),
            epoch=self._epoch,
            pairs_added=added,
            pairs_removed=removed,
            links=links,
        )

    def _broadcast_single(self, handle, fn, *args) -> dict[int, dict]:
        """One shard's slice of a broadcast mutation (owner masks differ)."""
        future = self._submit(handle, fn, *args)
        try:
            return {
                handle.index: future.result(timeout=self.request_timeout)
            }
        except (ValueError, KeyError, _tasks.StaleShardEpoch):
            raise
        except Exception as exc:
            self._mark_down(handle, exc)
            return {}

    def _score_links(
        self, new_entries: list[tuple[tuple[str, str], _Entry]]
    ) -> list[ScoredLink]:
        by_key: dict[tuple[str, str], list[_Entry]] = {}
        for key, entry in new_entries:
            by_key.setdefault(key, []).append(entry)
        links: list[ScoredLink] = []
        for key, entries in by_key.items():
            pairs = [entry.pair for entry in entries]
            x, _down = self._featurize(pairs)
            scores = self._score_rows(x, self.batch_size)
            distances = self._distances(pairs)
            for entry, score, distance in zip(entries, scores, distances):
                links.append(
                    ScoredLink(
                        pair=entry.pair,
                        score=float(score),
                        evidence=entry.evidence,
                        behavior_distance=float(distance),
                    )
                )
        return links

    def remove_account(self, ref: AccountRef) -> int:
        """Withdraw one account everywhere it is resident.

        Raises :class:`ShardUnavailableError` when the owner shard is
        down, :class:`KeyError` when no live shard holds the account.
        """
        ref = (ref[0], ref[1])
        owner = self._route_account(ref)
        if not self._handles[owner].alive:
            raise ShardUnavailableError([owner])
        self._journal.append(("remove", ref))
        results = self._broadcast_mutation(_tasks.shard_remove, ref)
        if not results.get(owner, {}).get("applied"):
            # nothing was resident anywhere that matters: undo the journal
            # entry (no shard mutated) and mirror the single-shard KeyError
            applied_anywhere = any(r.get("applied") for r in results.values())
            if not applied_anywhere:
                self._journal.pop()
                raise KeyError(f"{ref} is not served")
        for shard, result in results.items():
            self._handles[shard].expected_epoch = result["epoch"]
        _added, _removed, _entries = self._apply_snapshots(results)
        self._epoch += 1
        with self._stats_lock:
            self._accounts_removed += 1
        return sum(result.get("removed", 0) for result in results.values())

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> RouterStats:
        score_entries = len(self._score_cache)
        score_hits, score_misses = (
            self._score_cache.hits,
            self._score_cache.misses,
        )
        with self._stats_lock:
            return RouterStats(
                queries=self._queries,
                pairs_scored=self._pairs_scored,
                batches=self._batches,
                degraded_queries=self._degraded_queries,
                score_cache_entries=score_entries,
                score_cache_hits=score_hits,
                score_cache_misses=score_misses,
                registry_epoch=self._epoch,
                accounts_ingested=self._accounts_ingested,
                accounts_removed=self._accounts_removed,
                ingest_batches=self._ingest_batches,
                num_shards=len(self._handles),
                shards=[handle.as_dict() for handle in self._handles],
                shards_unavailable=self.shards_unavailable(),
                approx_queries=self._approx_queries,
                approx_pairs_scored=self._approx_pairs_scored,
            )
