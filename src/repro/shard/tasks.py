"""Task functions executed inside per-shard worker processes.

A shard worker is a process initialized by
:func:`repro.parallel.worker.init_shard_worker` (artifact path in, a
:class:`~repro.serving.LinkageService` over the shard's packed-subset
linker out).  The router (:mod:`repro.shard.router`) submits these
functions over a ``ProcessPoolExecutor``; arguments and results travel by
pickle, so they use native tuples/frozensets/arrays throughout.

The scatter-gather split: workers **featurize** (row-independent, so a
shard's rows are bit-identical to the single-process rows), the router
**scores** the reassembled matrix through the shared scoring head with the
canonical chunk composition.  Workers never run the kernel for router
queries — kernel Gram products are chunk-shape-sensitive at the bit level,
and only the router sees the full request to chunk it the way a
single-shard service would.

Mutations apply on every shard that holds affected state: the *owner*
shard runs the full ingestion path (registry blocking, candidate
maintenance), non-owner shards *ghost-ingest* accounts their residents
interact with (featurizable, not addressable) so plan-time pair fills stay
exact as the graph grows.
"""

from __future__ import annotations

import os

import numpy as np

from repro.parallel import worker as _worker
from repro.wal.payload import apply_payload, payload_from_json

__all__ = [
    "PairNotServed",
    "StaleShardEpoch",
    "shard_distances",
    "shard_featurize",
    "shard_health",
    "shard_ingest",
    "shard_remove",
]

AccountRef = tuple[str, str]
Pair = tuple[AccountRef, AccountRef]

# featurization is row-independent, so unlike head scoring its chunk size
# never shows up in the output bits — chunks exist purely to bound worker
# memory, and small scoring-sized chunks would waste time on vstack copies
FEATURIZE_CHUNK = 4096


class PairNotServed(KeyError):
    """A routed pair references an account outside this shard's served set."""


class StaleShardEpoch(RuntimeError):
    """The worker's registry epoch disagrees with the router's expectation."""


def _state() -> dict:
    state = _worker.worker_state()
    if "shard_service" not in state:
        raise RuntimeError(
            "worker was not initialized with init_shard_worker"
        )
    return state


def _check_epoch(service, expected_epoch: int | None) -> None:
    if expected_epoch is None:
        return
    epoch = service.registry_epoch
    if epoch != expected_epoch:
        raise StaleShardEpoch(
            f"shard holds registry epoch {epoch}, router expects "
            f"{expected_epoch}"
        )


def shard_featurize(
    pairs: list[Pair], expected_epoch: int | None = None
) -> np.ndarray:
    """Featurized + missing-filled rows for ``pairs``, in request order.

    Every referenced account must be in this shard's *served* set — the
    refs whose Eqn 18 fill closure is fully resident — so the returned
    rows are bit-identical to the rows a single-process deployment would
    compute.  Featurization is chunked at :data:`FEATURIZE_CHUNK` purely
    to bound memory; rows are row-independent, so chunking does not
    affect the bytes.
    """
    state = _state()
    service = state["shard_service"]
    _check_epoch(service, expected_epoch)
    served = state["shard_served"]
    for pair in pairs:
        for ref in pair:
            if (ref[0], ref[1]) not in served:
                raise PairNotServed(
                    f"account {ref} is not served by shard "
                    f"{state['shard_meta'].get('index')}"
                )
    linker = service.linker
    batch = max(service.batch_size, FEATURIZE_CHUNK)
    return np.vstack(
        [
            linker.featurize_pairs(pairs[lo : lo + batch])
            for lo in range(0, len(pairs), batch)
        ]
    )


def shard_distances(pairs: list[Pair]) -> np.ndarray:
    """Behavior-summary distances for ``pairs`` (served-link metadata)."""
    service = _state()["shard_service"]
    return np.array(
        [service.behavior_distance(*pair) for pair in pairs], dtype=float
    )


def shard_health() -> dict:
    """Liveness probe: the worker's pid, epoch, and inventory counters."""
    state = _state()
    service = state["shard_service"]
    return {
        "shard": state["shard_meta"].get("index"),
        "pid": os.getpid(),
        "epoch": service.registry_epoch,
        "num_candidates": service.num_candidates(),
        "served_accounts": len(state["shard_served"]),
        "resident_accounts": (
            service.linker.pipeline.packed_store.num_accounts
        ),
    }


def _candidate_snapshot(service, platforms: set[str]) -> dict:
    """Current owned candidate state of every affected platform pair."""
    snapshot = {}
    for key, cand in service.linker.candidates_.items():
        if key[0] in platforms or key[1] in platforms:
            snapshot[key] = {
                "pairs": list(cand.pairs),
                "evidence": list(cand.evidence),
            }
    return snapshot


def shard_ingest(
    refs: list[AccountRef],
    raw_payloads: list[dict],
    owned_mask: list[bool],
    expected_epoch: int | None = None,
) -> dict:
    """Apply one routed ingest batch to this shard.

    Owned refs take the full ingestion path
    (:meth:`~repro.serving.LinkageService.add_accounts`: world surgery,
    delta-packing, live blocking, candidate re-ranking).  Non-owned refs
    *ghost-ingest* — world + packed store only, no candidate state — when
    any interaction partner is resident here, so resident accounts' friend
    graphs (and therefore served pairs' Eqn 18 fills) evolve exactly as
    they would in a single-process deployment.  Refs already resident are
    skipped, which makes replay after a shard restart idempotent.

    Payloads apply to the world in request order (later payloads may
    interact with earlier ones); ghosts then pack before owned refs so
    first-touch blocking bootstraps see them, and the whole call reports
    the shard's post-mutation epoch plus the full owned candidate state of
    every affected platform pair for the router's catalog merge.
    """
    state = _state()
    service = state["shard_service"]
    _check_epoch(service, expected_epoch)
    store_rows = service.linker.pipeline.packed_store.row_of
    world = service.linker.world

    owned_new: list[AccountRef] = []
    ghost_new: list[AccountRef] = []
    for ref, raw, owned in zip(refs, raw_payloads, owned_mask):
        ref = (ref[0], ref[1])
        if ref in store_rows:
            continue  # replay idempotency: already applied here
        payload = payload_from_json(raw)
        if payload.ref != ref:
            raise ValueError(
                f"payload describes {payload.ref}, routed as {ref}"
            )
        if owned:
            apply_payload(world, payload)
            owned_new.append(ref)
        else:
            platform_data = world.platforms.get(ref[0])
            if platform_data is None:
                continue
            resident_partners = any(
                other in platform_data.accounts
                for other, _weight in payload.interactions
            )
            if resident_partners:
                apply_payload(world, payload)
                ghost_new.append(ref)

    pairs_added = 0
    pairs_removed = 0
    if ghost_new:
        service.linker.ingest_accounts(ghost_new)
    if owned_new:
        report = service.add_accounts(owned_new, score=False)
        pairs_added = report.pairs_added
        pairs_removed = report.pairs_removed
        state["shard_served"].update(owned_new)

    platforms = {ref[0] for ref in owned_new}
    keys = _candidate_snapshot(service, platforms) if owned_new else {}
    # pairs created against this shard's registry may partner owned
    # accounts with residents outside the plan-time served set; this shard
    # created them, so this shard serves them from now on
    for snapshot in keys.values():
        for pair in snapshot["pairs"]:
            state["shard_served"].update(pair)
    return {
        "owned": owned_new,
        "ghosted": ghost_new,
        "epoch": service.registry_epoch,
        "pairs_added": pairs_added,
        "pairs_removed": pairs_removed,
        "keys": keys,
    }


def shard_remove(
    ref: AccountRef, expected_epoch: int | None = None
) -> dict:
    """Withdraw ``ref`` from this shard, if resident.

    Every shard holding the account (owner, pair partner, or friend-closure
    ghost) drops it from its packed store; shards that also indexed
    candidate pairs through it re-rank those groups, and the resulting
    owned candidate state returns for the router's catalog merge.
    """
    state = _state()
    service = state["shard_service"]
    _check_epoch(service, expected_epoch)
    ref = (ref[0], ref[1])
    if ref not in service.linker.pipeline.packed_store.row_of:
        return {
            "applied": False,
            "removed": 0,
            "epoch": service.registry_epoch,
            "keys": {},
        }
    removed = service.remove_account(ref)
    state["shard_served"].discard(ref)
    return {
        "applied": True,
        "removed": removed,
        "epoch": service.registry_epoch,
        "keys": _candidate_snapshot(service, {ref[0]}),
    }
