"""Deterministic shard assignment: which shard owns which account.

Ownership must be a pure function of the account reference — the planner,
the gateway router, and every shard worker each derive it independently
(from the persisted plan), and they must always agree.  Python's builtin
``hash`` is salted per process, so assignment hashes are ``blake2b`` over a
seed-qualified key instead.

Two strategies:

:class:`HashAssignment`
    ``blake2b(f"{seed}:{platform}:{id}") % num_shards`` — uniform in
    expectation, stable across processes, machines, and Python versions.

:class:`ExplicitAssignment`
    A persisted ``ref -> shard`` mapping (the output of
    :func:`repro.shard.planner.rebalance_assignment`) with a fallback
    strategy for refs outside the mapping, so accounts ingested after a
    rebalance still route deterministically.

Both serialize to/from plain JSON (:meth:`to_json` /
:func:`assignment_from_json`) for persistence in ``shard_plan.json``.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "ExplicitAssignment",
    "HashAssignment",
    "assignment_from_json",
]

AccountRef = tuple[str, str]


class HashAssignment:
    """Uniform hash partitioning of account refs into ``num_shards``."""

    kind = "hash"

    def __init__(self, num_shards: int, *, seed: int = 0):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self.seed = int(seed)

    def shard_of(self, ref: AccountRef) -> int:
        key = f"{self.seed}:{ref[0]}:{ref[1]}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.num_shards

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "num_shards": self.num_shards,
            "seed": self.seed,
        }

    def __repr__(self) -> str:
        return f"HashAssignment(num_shards={self.num_shards}, seed={self.seed})"


class ExplicitAssignment:
    """A pinned ``ref -> shard`` mapping with a deterministic fallback.

    The mapping wins for refs it names; anything else (accounts that arrive
    after the rebalance that produced the mapping) falls through to the
    fallback strategy.
    """

    kind = "explicit"

    def __init__(
        self,
        mapping: dict[AccountRef, int],
        num_shards: int,
        *,
        fallback: HashAssignment | None = None,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self.mapping = dict(mapping)
        for ref, shard in self.mapping.items():
            if not 0 <= shard < self.num_shards:
                raise ValueError(
                    f"mapping sends {ref} to shard {shard}, outside "
                    f"[0, {self.num_shards})"
                )
        self.fallback = fallback or HashAssignment(num_shards)
        if self.fallback.num_shards != self.num_shards:
            raise ValueError("fallback shard count disagrees with mapping")

    def shard_of(self, ref: AccountRef) -> int:
        shard = self.mapping.get((ref[0], ref[1]))
        if shard is not None:
            return shard
        return self.fallback.shard_of(ref)

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "num_shards": self.num_shards,
            # json object keys must be strings; "platform/id" is unambiguous
            # because platform names never contain "/"
            "mapping": {
                f"{ref[0]}/{ref[1]}": shard
                for ref, shard in sorted(self.mapping.items())
            },
            "fallback": self.fallback.to_json(),
        }

    def __repr__(self) -> str:
        return (
            f"ExplicitAssignment({len(self.mapping)} pinned refs, "
            f"num_shards={self.num_shards})"
        )


def assignment_from_json(data: dict):
    """Rebuild an assignment strategy from its :meth:`to_json` form."""
    kind = data.get("kind")
    if kind == "hash":
        return HashAssignment(data["num_shards"], seed=data.get("seed", 0))
    if kind == "explicit":
        mapping = {}
        for key, shard in data["mapping"].items():
            platform, _, account_id = key.partition("/")
            mapping[(platform, account_id)] = int(shard)
        return ExplicitAssignment(
            mapping,
            data["num_shards"],
            fallback=assignment_from_json(data["fallback"]),
        )
    raise ValueError(f"unknown assignment kind {kind!r}")
