"""Command-line interface: ``python -m repro.cli <command>``.

Three commands cover the common workflows without writing any code:

* ``generate`` — build a synthetic world and print its statistics;
* ``link``     — fit HYDRA on a world and print the resolved linkage with
  held-out precision/recall;
* ``compare``  — run the method suite on one world and print the comparison
  table (the Fig 9-style protocol).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.hydra import HydraLinker
from repro.datagen.generator import (
    WorldConfig,
    chinese_platform_specs,
    english_platform_specs,
    generate_world,
)
from repro.eval.experiments import (
    chinese_chain_pairs,
    default_method_factories,
)
from repro.eval.harness import ExperimentHarness, make_label_split
from repro.eval.metrics import precision_recall_f1
from repro.eval.report import format_table, method_results_table

__all__ = ["build_parser", "main"]

_DATASETS = {
    "english": english_platform_specs,
    "chinese": chinese_platform_specs,
}


def _make_world(args) -> "WorldConfig":
    config = WorldConfig(
        num_persons=args.persons,
        platforms=_DATASETS[args.dataset](),
        seed=args.seed,
    )
    return generate_world(config)


def _platform_pairs(args):
    if args.dataset == "chinese":
        return chinese_chain_pairs()
    return None


def cmd_generate(args) -> int:
    """Print world statistics (accounts, events, edges, linkable pairs)."""
    world = _make_world(args)
    rows = []
    for name in world.platform_names():
        platform = world.platforms[name]
        rows.append(
            [name, len(platform), len(platform.events),
             platform.graph.num_edges()]
        )
    print(format_table(["platform", "accounts", "events", "edges"], rows))
    names = world.platform_names()
    print(f"\nground-truth links per platform pair: {args.persons}")
    print(f"platform pairs: {len(names) * (len(names) - 1) // 2}")
    return 0


def cmd_link(args) -> int:
    """Fit HYDRA and print the linkage for the first platform pair."""
    world = _make_world(args)
    pairs = _platform_pairs(args) or [
        tuple(world.platform_names()[:2])  # type: ignore[list-item]
    ]
    split = make_label_split(
        world, pairs, label_fraction=args.label_fraction, seed=args.seed
    )
    linker = HydraLinker(
        missing_strategy=args.missing, seed=args.seed,
        num_topics=10, max_lda_docs=2500,
    )
    linker.fit(world, split.labeled_positive, split.labeled_negative, pairs)
    pa, pb = pairs[0]
    result = linker.linkage(pa, pb)
    metrics = precision_recall_f1(
        result.linked, split.heldout_true[(pa, pb)],
        exclude=split.all_true_labeled,
    )
    print(f"{pa} <-> {pb}: {len(result.linked)} links")
    print(
        f"held-out precision={metrics.precision:.3f} "
        f"recall={metrics.recall:.3f} f1={metrics.f1:.3f}"
    )
    if args.show:
        for (ref_a, ref_b), score in list(
            zip(result.linked, result.linked_scores)
        )[: args.show]:
            print(f"  {ref_a[1]} <-> {ref_b[1]}  score={score:.2f}")
    return 0


def cmd_compare(args) -> int:
    """Run several methods on one world and print the comparison table."""
    world = _make_world(args)
    harness = ExperimentHarness(
        world,
        platform_pairs=_platform_pairs(args),
        label_fraction=args.label_fraction,
        seed=args.seed,
    )
    include = tuple(args.methods.split(","))
    factories = default_method_factories(seed=args.seed, include=include)
    results = harness.run_suite(factories)
    print(method_results_table(results))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HYDRA social identity linkage (SIGMOD 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--persons", type=int, default=40,
                       help="population size (default 40)")
        p.add_argument("--seed", type=int, default=0, help="world seed")
        p.add_argument("--dataset", choices=sorted(_DATASETS), default="english",
                       help="platform preset (default english)")

    p_gen = sub.add_parser("generate", help="generate a world, print stats")
    common(p_gen)
    p_gen.set_defaults(func=cmd_generate)

    p_link = sub.add_parser("link", help="fit HYDRA and print the linkage")
    common(p_link)
    p_link.add_argument("--label-fraction", type=float, default=1.0 / 6.0,
                        dest="label_fraction")
    p_link.add_argument("--missing", choices=("core", "zero"), default="core",
                        help="missing-data strategy (HYDRA-M / HYDRA-Z)")
    p_link.add_argument("--show", type=int, default=5,
                        help="print the strongest N links")
    p_link.set_defaults(func=cmd_link)

    p_cmp = sub.add_parser("compare", help="run the method comparison suite")
    common(p_cmp)
    p_cmp.add_argument("--label-fraction", type=float, default=1.0 / 6.0,
                       dest="label_fraction")
    p_cmp.add_argument(
        "--methods",
        default="HYDRA-M,SVM-B,MOBIUS,Alias-Disamb,SMaSh",
        help="comma-separated method list",
    )
    p_cmp.set_defaults(func=cmd_compare)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
