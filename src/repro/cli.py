"""Command-line interface: ``python -m repro.cli <command>``.

The subcommands cover the common workflows without writing any code:

* ``generate``   — build a synthetic world and print its statistics;
* ``link``       — fit HYDRA on a world and print the resolved linkage with
  held-out precision/recall;
* ``compare``    — run the method suite on one world and print the
  comparison table (the Fig 9-style protocol);
* ``fit``        — fit HYDRA and persist the fitted linker to an on-disk
  artifact (:mod:`repro.persist`), printing per-stage timings;
* ``score``      — load an artifact and answer linkage queries through the
  :class:`~repro.serving.LinkageService` (platform-pair top-k or
  single-account resolution) — no refit;
* ``serve-bench`` — load (or fit) an artifact and report batched scoring
  throughput in pairs/sec at several batch sizes;
* ``ingest-bench`` — hold accounts out of a world, fit on the rest, then
  measure accounts/sec for absorbing the arrivals online
  (:meth:`~repro.serving.LinkageService.add_accounts`) against a bulk
  re-pack and a full refit;
* ``serve``      — expose an artifact over HTTP through the asyncio
  gateway (:mod:`repro.gateway`): micro-batch request coalescing,
  admission control, graceful shutdown on SIGINT/SIGTERM; ``--wal DIR``
  adds write-ahead durability for every online mutation;
  ``--shard-plan DIR`` serves a shard plan through the scatter-gather
  router (:mod:`repro.shard`) instead of a single-process service;
  ``--replica-of WALDIR`` serves the artifact as a read-only follower
  tailing a primary's WAL, and ``--read-replicas host:port,...`` makes
  a primary spread reads across follower gateways (:mod:`repro.replica`);
* ``replica``    — serve a read-only follower replica that bootstraps
  from the primary's artifact and tails its WAL directory, with an
  optional ``--state`` directory for cursor + checkpoint resume;
* ``shard``      — partition a fitted artifact for distributed serving:
  ``shard plan`` splits it into K per-shard artifacts plus a routing
  plan, ``shard rebalance`` re-plans with an explicit load-balanced
  assignment, ``shard info`` prints a plan's topology;
* ``recover``    — rebuild the exact pre-crash serving state from a base
  artifact plus its write-ahead log (:mod:`repro.wal`), optionally
  saving it as a fresh artifact;
* ``wal info``   — inspect a write-ahead log directory: per-segment
  stats, record/abort counts, epoch range, and (with ``--cursor``) a
  follower cursor's position within the log;
* ``swap``       — ask a running gateway (served with ``--wal``) to
  blue/green cut over to a refit artifact with zero downtime;
* ``loadgen``    — drive a running gateway with an open- or closed-loop
  mixed workload and report requests/sec, latency percentiles,
  per-operation failure/retry counts, and read staleness (observed
  epoch vs last acked write); ``--min-epoch`` turns on read-your-writes
  floors and ``--read-replicas`` exercises client-side GET failover.

``fit``, ``score``, and ``serve-bench`` accept ``--workers N`` (and
``--shard-size``) to shard featurization and scoring across a process pool
(:mod:`repro.parallel`); results are bit-identical to ``--workers 1``.

The measurement commands (``serve-bench``, ``ingest-bench``, ``loadgen``)
accept ``--json``: instead of the human table they print one JSON document
— ``{"name", "workload", "headers", "rows", "metrics"}`` — whose
``metrics`` block is exactly the machine-readable dict
``benchmarks/check_regression.py`` consumes, so automation never parses
the text tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.hydra import HydraLinker
from repro.datagen.generator import (
    WorldConfig,
    chinese_platform_specs,
    english_platform_specs,
    generate_world,
)
from repro.eval.experiments import (
    chinese_chain_pairs,
    default_method_factories,
)
from repro.eval.harness import ExperimentHarness, make_label_split
from repro.eval.metrics import precision_recall_f1
from repro.eval.report import format_table, method_results_table

__all__ = ["build_parser", "main"]

_DATASETS = {
    "english": english_platform_specs,
    "chinese": chinese_platform_specs,
}


def _make_world(args) -> "WorldConfig":
    config = WorldConfig(
        num_persons=args.persons,
        platforms=_DATASETS[args.dataset](),
        seed=args.seed,
    )
    return generate_world(config)


def _platform_pairs(args):
    if args.dataset == "chinese":
        return chinese_chain_pairs()
    return None


def cmd_generate(args) -> int:
    """Print world statistics (accounts, events, edges, linkable pairs)."""
    world = _make_world(args)
    rows = []
    for name in world.platform_names():
        platform = world.platforms[name]
        rows.append(
            [name, len(platform), len(platform.events),
             platform.graph.num_edges()]
        )
    print(format_table(["platform", "accounts", "events", "edges"], rows))
    names = world.platform_names()
    print(f"\nground-truth links per platform pair: {args.persons}")
    print(f"platform pairs: {len(names) * (len(names) - 1) // 2}")
    return 0


def cmd_link(args) -> int:
    """Fit HYDRA and print the linkage for the first platform pair."""
    linker, split, pairs = _fit_linker(args)
    pa, pb = pairs[0]
    result = linker.linkage(pa, pb)
    metrics = precision_recall_f1(
        result.linked, split.heldout_true[(pa, pb)],
        exclude=split.all_true_labeled,
    )
    print(f"{pa} <-> {pb}: {len(result.linked)} links")
    print(
        f"held-out precision={metrics.precision:.3f} "
        f"recall={metrics.recall:.3f} f1={metrics.f1:.3f}"
    )
    if args.show:
        for (ref_a, ref_b), score in list(
            zip(result.linked, result.linked_scores)
        )[: args.show]:
            print(f"  {ref_a[1]} <-> {ref_b[1]}  score={score:.2f}")
    return 0


def _fit_linker(args):
    """Shared world/split/fit path for link, fit, and serve-bench."""
    world = _make_world(args)
    pairs = _platform_pairs(args) or [
        tuple(world.platform_names()[:2])  # type: ignore[list-item]
    ]
    split = make_label_split(
        world, pairs, label_fraction=args.label_fraction, seed=args.seed
    )
    linker = HydraLinker(
        missing_strategy=args.missing, seed=args.seed,
        num_topics=10, max_lda_docs=2500,
        workers=getattr(args, "workers", 1),
        shard_size=getattr(args, "shard_size", None),
    )
    linker.fit(world, split.labeled_positive, split.labeled_negative, pairs)
    return linker, split, pairs


def cmd_fit(args) -> int:
    """Fit HYDRA and save the fitted linker as an on-disk artifact."""
    linker, _, _ = _fit_linker(args)
    path = linker.save(args.out)
    rows = [
        [stage, seconds]
        for stage, seconds in linker.stage_timings_.items()
    ]
    print(format_table(["stage", "seconds"], rows))
    print(f"\nartifact: {path}")
    print(f"candidates: {len(linker.global_pairs_)} "
          f"(labeled {linker.num_labeled_})")
    return 0


def cmd_score(args) -> int:
    """Serve queries from an artifact: platform-pair top-k or one account."""
    from repro.serving import LinkageService

    with LinkageService.from_artifact(
        args.artifact, workers=args.workers, shard_size=args.shard_size
    ) as service:
        return _print_score_query(service, args)


def _print_score_query(service, args) -> int:
    linker = service.linker
    print(
        f"artifact {args.artifact} ({service.num_candidates()} candidates, "
        f"kernel={linker.moo_config.kernel}, missing={linker.missing_strategy})"
    )
    exact = not args.approx
    if args.account is not None:
        platform, account_id = args.account
        links = service.link_account(
            platform, account_id, top=args.top,
            exact=exact, budget=args.budget,
        )
        header = f"{platform}/{account_id}"
    else:
        pair = service.platform_pairs()[0] if args.pair is None else tuple(args.pair)
        links = service.top_k(
            pair[0], pair[1], k=args.top, exact=exact, budget=args.budget
        )
        header = f"{pair[0]} <-> {pair[1]}"
    mode = "approximate cutoff, exact scores" if args.approx else "exact"
    print(f"\ntop {len(links)} links for {header} ({mode}):")
    rows = [
        [link.pair[0][1], link.pair[1][1], link.score,
         ",".join(sorted(link.evidence)) or "-", link.behavior_distance]
        for link in links
    ]
    print(format_table(["left", "right", "score", "evidence", "behavior_dist"],
                       rows))
    return 0


def _emit_results(
    args, *, name: str, headers: list[str], rows: list[list],
    metrics: dict, workload: dict | None = None, extra: dict | None = None,
) -> None:
    """Print either the human table or the regression-gate JSON document.

    The JSON shape — ``{"name", "workload", "headers", "rows", "metrics"}``
    — is the one format ``benchmarks/check_regression.py`` consumes
    directly (its ``metrics`` values gate regressions), so scripted bench
    runs never scrape the aligned text table.  ``extra`` merges additional
    top-level keys into the JSON document (e.g. loadgen's per-op outcome
    counts) without touching the gated ``metrics`` block.
    """
    if getattr(args, "json", False):
        document = {
            "name": name,
            "workload": workload or {},
            "headers": headers,
            "rows": rows,
            "metrics": metrics,
        }
        document.update(extra or {})
        print(json.dumps(document, indent=2))
    else:
        print(format_table(headers, rows))


def cmd_serve_bench(args) -> int:
    """Measure batched scoring throughput (pairs/sec) per batch size."""
    from repro.serving import LinkageService, run_throughput_benchmark, throughput_table

    parallel = {"workers": args.workers, "shard_size": args.shard_size}
    if args.artifact is not None:
        service = LinkageService.from_artifact(args.artifact, **parallel)
    else:
        service = LinkageService(_fit_linker(args)[0], **parallel)
    batch_sizes = tuple(int(b) for b in args.batch_sizes.split(","))
    with service:
        results = run_throughput_benchmark(
            service,
            batch_sizes=batch_sizes,
            repeats=args.repeats,
            max_pairs=args.max_pairs,
        )
    _emit_results(
        args,
        name="serve_bench",
        headers=["batch_size", "pairs", "best_seconds", "pairs_per_sec",
                 "p50_ms"],
        rows=throughput_table(results),
        metrics={"pairs_per_sec": max(r.pairs_per_sec for r in results)},
        workload={"batch_sizes": list(batch_sizes),
                  "repeats": args.repeats,
                  "pairs": results[0].num_pairs if results else 0},
    )
    return 0


def cmd_ingest_bench(args) -> int:
    """Measure online-ingestion throughput against re-pack and refit."""
    from repro.serving import holdout_split, ingest_table, run_ingest_benchmark

    world = _make_world(args)
    base, held_refs = holdout_split(world, args.new)
    pairs = _platform_pairs(args) or [tuple(base.platform_names()[:2])]

    def fit(world_):
        split = make_label_split(
            world_, pairs, label_fraction=args.label_fraction, seed=args.seed
        )
        linker = HydraLinker(
            missing_strategy=args.missing, seed=args.seed,
            num_topics=10, max_lda_docs=2500,
        )
        linker.fit(
            world_, split.labeled_positive, split.labeled_negative, pairs
        )
        return linker

    results = run_ingest_benchmark(
        world, held_refs, fit, base=base, include_refit=not args.skip_refit
    )
    by_mode = {r.mode: r for r in results}
    _emit_results(
        args,
        name="ingest_bench",
        headers=["mode", "accounts", "seconds", "accounts_per_sec"],
        rows=ingest_table(results),
        metrics={
            "accounts_per_sec": max(r.accounts_per_sec for r in results)
        },
        workload={"persons": args.persons, "new_per_platform": args.new},
    )
    if not args.json:
        for mode in ("repack", "refit"):
            if mode in by_mode and by_mode["ingest"].seconds > 0:
                print(
                    f"ingest vs {mode}: "
                    f"{by_mode[mode].seconds / by_mode['ingest'].seconds:.1f}x"
                    " faster"
                )
    return 0


def _gateway_config(args, read_replicas: tuple = ()):
    from repro.gateway import GatewayConfig

    return GatewayConfig(
        host=args.host,
        port=args.port,
        max_batch_pairs=args.max_batch_pairs,
        max_batch_requests=args.max_batch_requests,
        max_wait_ms=args.batch_wait_ms,
        coalesce=not args.no_coalesce,
        max_pending=args.max_pending,
        default_deadline_ms=args.deadline_ms,
        executor_threads=args.threads,
        read_replicas=read_replicas,
        replica_poll_ms=getattr(args, "poll_ms", 25.0),
    )


def _serve_gateway(service, config, source: str, detail: str) -> int:
    """Run one gateway until SIGINT/SIGTERM (shared by serve/replica)."""
    import asyncio
    import signal

    from repro.gateway import LinkageGateway

    async def _run() -> int:
        gateway = LinkageGateway(service, config)
        await gateway.start()
        print(
            f"serving {source} on http://{config.host}:{gateway.port}"
            f" ({service.num_candidates()} candidates, "
            f"coalesce={'on' if config.coalesce else 'off'}, "
            f"max_pending={config.max_pending}{detail})",
            flush=True,  # subprocess drivers parse the bound port from this
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
        await stop.wait()
        print("draining ...")
        await gateway.stop()
        return 0

    with service:
        return asyncio.run(_run())


def _parse_replica_list(spec: str | None) -> tuple:
    if not spec:
        return ()
    return tuple(part.strip() for part in spec.split(",") if part.strip())


def cmd_serve(args) -> int:
    """Expose a fitted artifact over HTTP through the asyncio gateway."""
    from repro.serving import LinkageService
    from repro.wal import WriteAheadLog, arm_from_env

    arm_from_env()  # chaos harnesses arm crash sites via REPRO_FAULTS
    wal = None
    if args.shard_plan is not None:
        if args.wal is not None:
            raise SystemExit(
                "error: --wal applies to single-process serving; a sharded "
                "deployment recovers through shard restarts instead"
            )
        if args.replica_of is not None:
            raise SystemExit(
                "error: --replica-of needs --artifact (the replay base), "
                "not --shard-plan"
            )
        from repro.shard import ShardedLinkageService

        service = ShardedLinkageService(args.shard_plan)
        source = args.shard_plan
        detail = f", shards={service.topology.num_shards}"
    elif args.replica_of is not None:
        if args.wal is not None:
            raise SystemExit(
                "error: a follower tails the primary's --replica-of log; "
                "it cannot write its own --wal"
            )
        from repro.replica import FollowerService

        service = FollowerService(
            args.artifact,
            args.replica_of,
            state_dir=args.replica_state,
            checkpoint_every=args.checkpoint_every,
            workers=args.workers,
            shard_size=args.shard_size,
        )
        source = args.artifact
        detail = (
            f", replica-of={args.replica_of} epoch={service.registry_epoch}"
            f"{' resumed' if service.status(poll=False)['resumed'] else ''}"
        )
    else:
        if args.wal is not None:
            wal = WriteAheadLog(args.wal, fsync=args.fsync)
        service = LinkageService.from_artifact(
            args.artifact, workers=args.workers, shard_size=args.shard_size,
            wal=wal,
        )
        source = args.artifact
        detail = (
            f", wal={args.wal} fsync={args.fsync}" if wal is not None else ""
        )
    read_replicas = _parse_replica_list(args.read_replicas)
    if read_replicas:
        detail += f", read_replicas={len(read_replicas)}"
    return _serve_gateway(
        service, _gateway_config(args, read_replicas), source, detail
    )


def cmd_replica(args) -> int:
    """Serve a read-only follower that tails a primary's WAL."""
    from repro.replica import FollowerService
    from repro.wal import arm_from_env

    arm_from_env()
    service = FollowerService(
        args.artifact,
        args.wal,
        state_dir=args.state,
        checkpoint_every=args.checkpoint_every,
        workers=args.workers,
        shard_size=args.shard_size,
    )
    status = service.status(poll=False)
    detail = (
        f", replica-of={args.wal} epoch={service.registry_epoch}"
        f"{' resumed' if status['resumed'] else ''}"
    )
    return _serve_gateway(service, _gateway_config(args), args.artifact,
                          detail)


def _parse_mix(spec: str):
    """``"score=0.8,top_k=0.1,link=0.1"`` -> a validated WorkloadMix."""
    from repro.gateway import WorkloadMix

    known = {"score", "top_k", "link"}
    weights = {}
    for part in spec.split(","):
        kind, equals, weight = part.partition("=")
        kind = kind.strip()
        if not equals or kind not in known:
            raise SystemExit(
                f"error: bad --mix entry {part.strip()!r}; expected "
                f"comma-separated name=weight with names in "
                f"{sorted(known)}"
            )
        try:
            weights[kind] = float(weight)
        except ValueError:
            raise SystemExit(
                f"error: --mix weight for {kind!r} must be a number, "
                f"got {weight!r}"
            ) from None
        if weights[kind] < 0:
            raise SystemExit(
                f"error: --mix weight for {kind!r} must be >= 0, "
                f"got {weights[kind]:g}"
            )
    if sum(weights.values()) <= 0:
        raise SystemExit("error: --mix weights must sum to more than 0")
    return WorkloadMix(
        score_pairs=weights.get("score", 0.0),
        top_k=weights.get("top_k", 0.0),
        link_account=weights.get("link", 0.0),
    )


def cmd_loadgen(args) -> int:
    """Drive a running gateway with a mixed workload; report percentiles."""
    from repro.gateway import (
        GatewayClient,
        loadgen_table,
        plan_workload,
        run_load,
    )

    mix = _parse_mix(args.mix)
    with GatewayClient(args.host, args.port) as client:
        catalog = client.candidates(limit=args.catalog_limit)
    ops = plan_workload(
        catalog,
        mix=mix,
        num_requests=args.requests,
        pairs_per_request=args.pairs_per_request,
        seed=args.seed,
    )
    report = run_load(
        args.host,
        args.port,
        ops,
        mode=args.mode,
        concurrency=args.concurrency,
        rate=args.rate,
        deadline_ms=args.deadline_ms,
        min_epoch=args.min_epoch,
        read_endpoints=_parse_replica_list(args.read_replicas),
    )
    summary = report.latency.summary()
    _emit_results(
        args,
        name="loadgen",
        headers=["mode", "requests", "ok", "failed", "retried", "seconds",
                 "requests_per_sec", "p50_ms", "p99_ms", "max_stale"],
        rows=loadgen_table([report], [args.mode], staleness=True),
        metrics={"requests_per_sec": report.requests_per_sec,
                 "p99_ms": summary["p99_ms"]},
        workload={"mix": args.mix, "concurrency": args.concurrency,
                  "rate": args.rate,
                  "pairs_per_request": args.pairs_per_request,
                  "min_epoch": args.min_epoch},
        extra={"outcomes": {"failed": report.failed,
                            "retried": report.retried,
                            "op_counts": report.op_counts},
               "staleness": {"stale_reads": report.stale_reads,
                             "staleness_max": report.staleness_max,
                             "staleness_mean": report.staleness_mean,
                             "min_epoch_violations":
                                 report.min_epoch_violations}},
    )
    if not args.json and report.op_counts:
        for kind, outcome in sorted(report.op_counts.items()):
            print(
                f"  {kind}: ok={outcome['succeeded']} "
                f"rejected={outcome['rejected']} errors={outcome['errors']} "
                f"retried={outcome['retried']}"
            )
    if not args.json:
        print(
            f"  staleness: stale_reads={report.stale_reads} "
            f"max={report.staleness_max} mean={report.staleness_mean:.3f} "
            f"min_epoch_violations={report.min_epoch_violations}"
        )
    if report.min_epoch_violations:
        return 1
    return 0 if report.errors == 0 else 1


def cmd_recover(args) -> int:
    """Rebuild serving state from a base artifact plus its write-ahead log."""
    from repro.persist import save_linker
    from repro.wal import recover

    result = recover(args.artifact, args.wal, reopen=False)
    saved = None
    if args.out is not None:
        saved = str(save_linker(result.service.linker, args.out))
    if args.json:
        print(json.dumps({
            "name": "recover",
            "artifact": str(args.artifact),
            "wal": str(args.wal),
            "base_epoch": result.base_epoch,
            "recovered_epoch": result.recovered_epoch,
            "records_replayed": result.records_replayed,
            "truncated_tail": result.truncated_tail,
            "saved": saved,
        }, indent=2))
    else:
        tail = " (torn tail dropped)" if result.truncated_tail else ""
        print(
            f"recovered epoch {result.recovered_epoch} from "
            f"{args.artifact} (epoch {result.base_epoch}) + "
            f"{result.records_replayed} WAL records{tail}"
        )
        if saved is not None:
            print(f"saved recovered artifact to {saved}")
    return 0


def cmd_wal_info(args) -> int:
    """Inspect a write-ahead log directory without replaying it."""
    from repro.wal import load_cursor, read_wal, segment_stats

    segments = segment_stats(args.wal)
    recovered = read_wal(args.wal)
    effective = recovered.effective_records()
    aborts = sum(1 for r in recovered.records if r.op == "abort")
    cancelled = len(recovered.records) - aborts - len(effective)
    first_epoch = recovered.records[0].epoch if recovered.records else 0
    cursor = None
    if args.cursor is not None:
        loaded = load_cursor(args.cursor)
        cursor = loaded.as_dict() if loaded is not None else None
    if args.json:
        print(json.dumps({
            "name": "wal_info",
            "wal": str(args.wal),
            "segments": [
                {
                    "index": info.index,
                    "path": str(info.path),
                    "records": info.records,
                    "valid_bytes": info.valid_bytes,
                    "size_bytes": info.size_bytes,
                    "first_epoch": info.first_epoch,
                    "last_epoch": info.last_epoch,
                    "clean": info.clean,
                }
                for info in segments
            ],
            "records": len(recovered.records),
            "effective_records": len(effective),
            "aborts": aborts,
            "cancelled_records": cancelled,
            "first_epoch": first_epoch,
            "last_epoch": recovered.last_epoch,
            "truncated_tail": recovered.truncated,
            "cursor": cursor,
        }, indent=2))
        return 0
    rows = [
        [info.index, info.records, info.valid_bytes, info.size_bytes,
         info.first_epoch, info.last_epoch, "yes" if info.clean else "TORN"]
        for info in segments
    ]
    print(format_table(
        ["segment", "records", "valid_bytes", "size_bytes", "first_epoch",
         "last_epoch", "clean"],
        rows,
    ))
    tail = " (torn tail pending truncation)" if recovered.truncated else ""
    print(
        f"\n{len(recovered.records)} records in {len(segments)} segments, "
        f"epochs {first_epoch}..{recovered.last_epoch}{tail}"
    )
    print(
        f"effective {len(effective)} = {len(recovered.records)} logged "
        f"- {aborts} aborts - {cancelled} cancelled"
    )
    if args.cursor is not None:
        if cursor is None:
            print(f"cursor {args.cursor}: not written yet")
        else:
            behind = sum(
                info.records for info in segments
                if info.index > cursor["segment"]
            )
            print(
                f"cursor {args.cursor}: segment {cursor['segment']} "
                f"offset {cursor['offset']} "
                f"(<= {behind} records in later segments)"
            )
    return 0


def cmd_swap(args) -> int:
    """Ask a running gateway to blue/green swap to a refit artifact."""
    from repro.gateway import GatewayClient

    with GatewayClient(
        args.host, args.port, retry_backpressure=True
    ) as client:
        result = client.swap(args.artifact, since_epoch=args.since_epoch)
    print(
        f"swapped to {result['artifact']} at epoch {result['epoch']} "
        f"(was {result['previous_epoch']}, replayed "
        f"{result['records_replayed']} WAL records)"
    )
    return 0


def _shard_topology_rows(topology) -> list[list]:
    return [
        [
            info.index,
            str(info.path),
            info.owned_accounts,
            info.served_accounts,
            info.resident_accounts,
            info.owned_pairs,
        ]
        for info in topology.shards
    ]


_SHARD_TABLE_HEADERS = [
    "shard", "path", "owned", "served", "resident", "owned_pairs",
]


def cmd_shard_plan(args) -> int:
    """Partition a fitted artifact into K shard artifacts plus a plan."""
    from repro.shard import plan_shards

    topology = plan_shards(
        args.artifact, args.out, args.shards, seed=args.seed
    )
    print(format_table(_SHARD_TABLE_HEADERS, _shard_topology_rows(topology)))
    print(
        f"\nplan: {topology.path} ({topology.num_shards} shards, "
        f"{sum(len(v) for v in topology.entries.values())} routed pairs, "
        f"assignment={topology.assignment!r})"
    )
    return 0


def cmd_shard_rebalance(args) -> int:
    """Re-plan with an explicit assignment that levels per-shard load."""
    from repro.shard import rebalance_plan

    topology = rebalance_plan(args.plan, args.out, num_shards=args.shards)
    print(format_table(_SHARD_TABLE_HEADERS, _shard_topology_rows(topology)))
    print(
        f"\nrebalanced plan: {topology.path} "
        f"({topology.num_shards} shards, assignment={topology.assignment!r})"
    )
    return 0


def cmd_shard_info(args) -> int:
    """Print (or emit as JSON) the topology of an existing shard plan."""
    from repro.shard import load_shard_plan

    topology = load_shard_plan(args.plan)
    if args.json:
        print(json.dumps({
            "name": "shard_info",
            "plan": str(topology.path),
            "num_shards": topology.num_shards,
            "source_artifact": topology.source_artifact,
            "base_epoch": topology.base_epoch,
            "assignment": topology.assignment.to_json(),
            "routed_pairs": sum(
                len(v) for v in topology.entries.values()
            ),
            "shards": [
                {
                    "index": info.index,
                    "path": str(info.path),
                    "owned_accounts": info.owned_accounts,
                    "served_accounts": info.served_accounts,
                    "resident_accounts": info.resident_accounts,
                    "owned_pairs": info.owned_pairs,
                }
                for info in topology.shards
            ],
        }, indent=2))
    else:
        print(
            f"plan {topology.path}: {topology.num_shards} shards from "
            f"{topology.source_artifact} (base epoch {topology.base_epoch})"
        )
        print(f"assignment: {topology.assignment!r}\n")
        print(format_table(
            _SHARD_TABLE_HEADERS, _shard_topology_rows(topology)
        ))
    return 0


def cmd_compare(args) -> int:
    """Run several methods on one world and print the comparison table."""
    world = _make_world(args)
    harness = ExperimentHarness(
        world,
        platform_pairs=_platform_pairs(args),
        label_fraction=args.label_fraction,
        seed=args.seed,
    )
    include = tuple(args.methods.split(","))
    factories = default_method_factories(seed=args.seed, include=include)
    results = harness.run_suite(factories)
    print(method_results_table(results))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HYDRA social identity linkage (SIGMOD 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--persons", type=int, default=40,
                       help="population size (default 40)")
        p.add_argument("--seed", type=int, default=0, help="world seed")
        p.add_argument("--dataset", choices=sorted(_DATASETS), default="english",
                       help="platform preset (default english)")

    def fit_opts(p):
        p.add_argument("--label-fraction", type=float, default=1.0 / 6.0,
                       dest="label_fraction")
        p.add_argument("--missing", choices=("core", "zero"), default="core",
                       help="missing-data strategy (HYDRA-M / HYDRA-Z)")

    def parallel_opts(p):
        p.add_argument("--workers", type=int, default=1,
                       help="process count for sharded featurize/score "
                            "(default 1 = serial; results are identical)")
        p.add_argument("--shard-size", type=int, default=None,
                       dest="shard_size",
                       help="pairs per shard (default: derived from the "
                            "workload and worker count)")

    p_gen = sub.add_parser("generate", help="generate a world, print stats")
    common(p_gen)
    p_gen.set_defaults(func=cmd_generate)

    p_link = sub.add_parser("link", help="fit HYDRA and print the linkage")
    common(p_link)
    fit_opts(p_link)
    p_link.add_argument("--show", type=int, default=5,
                        help="print the strongest N links")
    p_link.set_defaults(func=cmd_link)

    p_cmp = sub.add_parser("compare", help="run the method comparison suite")
    common(p_cmp)
    p_cmp.add_argument("--label-fraction", type=float, default=1.0 / 6.0,
                       dest="label_fraction")
    p_cmp.add_argument(
        "--methods",
        default="HYDRA-M,SVM-B,MOBIUS,Alias-Disamb,SMaSh",
        help="comma-separated method list",
    )
    p_cmp.set_defaults(func=cmd_compare)

    p_fit = sub.add_parser(
        "fit", help="fit HYDRA and save a servable artifact"
    )
    common(p_fit)
    fit_opts(p_fit)
    parallel_opts(p_fit)
    p_fit.add_argument("--out", required=True,
                       help="artifact directory to write")
    p_fit.set_defaults(func=cmd_fit)

    p_score = sub.add_parser(
        "score", help="serve linkage queries from a saved artifact"
    )
    p_score.add_argument("--artifact", required=True,
                         help="artifact directory from `fit`")
    query = p_score.add_mutually_exclusive_group()
    query.add_argument("--pair", nargs=2, metavar=("PLATFORM_A", "PLATFORM_B"),
                       help="platform pair to rank (default: first fitted)")
    query.add_argument("--account", nargs=2, metavar=("PLATFORM", "ACCOUNT_ID"),
                       help="resolve one account instead of a platform pair")
    p_score.add_argument("--top", type=int, default=5,
                         help="number of links to print")
    p_score.add_argument("--approx", action="store_true",
                         help="use the approximate fast path (index-pruned "
                              "+ landmark scorer); the ranking cutoff is "
                              "approximate, returned scores stay exact")
    p_score.add_argument("--budget", type=int, default=None,
                         help="approximate prefilter budget (pairs scored "
                              "per query; default from ApproxConfig)")
    parallel_opts(p_score)
    p_score.set_defaults(func=cmd_score)

    def json_opt(p):
        p.add_argument("--json", action="store_true",
                       help="emit the machine-readable metric document "
                            "(the dict benchmarks/check_regression.py "
                            "consumes) instead of the text table")

    p_bench = sub.add_parser(
        "serve-bench", help="measure batched scoring throughput (pairs/sec)"
    )
    common(p_bench)
    fit_opts(p_bench)
    parallel_opts(p_bench)
    json_opt(p_bench)
    p_bench.add_argument("--artifact", default=None,
                         help="serve this artifact instead of fitting")
    p_bench.add_argument("--batch-sizes", default="16,256", dest="batch_sizes",
                         help="comma-separated featurization batch sizes")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="timed passes per batch size (best counts)")
    p_bench.add_argument("--max-pairs", type=int, default=None, dest="max_pairs",
                         help="truncate the workload (smoke runs)")
    p_bench.set_defaults(func=cmd_serve_bench)

    p_ingest = sub.add_parser(
        "ingest-bench",
        help="measure online account-ingestion throughput (accounts/sec)",
    )
    common(p_ingest)
    fit_opts(p_ingest)
    json_opt(p_ingest)
    p_ingest.add_argument("--new", type=int, default=10,
                          help="accounts to hold out per platform and "
                               "ingest online (default 10)")
    p_ingest.add_argument("--skip-refit", action="store_true", dest="skip_refit",
                          help="skip the (slow) full-refit baseline")
    p_ingest.set_defaults(func=cmd_ingest_bench)

    def gateway_opts(p):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8099,
                       help="listen port (0 picks a free one)")
        p.add_argument("--batch-wait-ms", type=float, default=2.0,
                       dest="batch_wait_ms",
                       help="micro-batch coalescing window (default 2ms)")
        p.add_argument("--max-batch-pairs", type=int, default=512,
                       dest="max_batch_pairs",
                       help="flush a batch at this many pending pairs")
        p.add_argument("--max-batch-requests", type=int, default=64,
                       dest="max_batch_requests",
                       help="flush a batch at this many pending requests")
        p.add_argument("--no-coalesce", action="store_true",
                       dest="no_coalesce",
                       help="dispatch each request alone (diagnostics)")
        p.add_argument("--max-pending", type=int, default=128,
                       dest="max_pending",
                       help="admitted in-flight request ceiling "
                            "(excess gets 429 + Retry-After)")
        p.add_argument("--deadline-ms", type=float, default=None,
                       dest="deadline_ms",
                       help="default per-request deadline (503 when "
                            "exceeded while queued)")
        p.add_argument("--threads", type=int, default=2,
                       help="scoring executor threads (default 2)")

    p_serve = sub.add_parser(
        "serve", help="expose an artifact over HTTP (asyncio gateway)"
    )
    serve_source = p_serve.add_mutually_exclusive_group(required=True)
    serve_source.add_argument("--artifact",
                              help="artifact directory from `fit`")
    serve_source.add_argument("--shard-plan", dest="shard_plan", default=None,
                              help="shard plan directory from `shard plan`: "
                                   "serve it through the scatter-gather "
                                   "router (one worker process per shard)")
    gateway_opts(p_serve)
    p_serve.add_argument("--wal", default=None,
                         help="write-ahead log directory: every ingest/"
                              "remove is logged before applying, enabling "
                              "`repro recover` and POST /swap")
    p_serve.add_argument("--fsync", choices=("always", "batch", "never"),
                         default="batch",
                         help="WAL fsync policy (default batch; 'always' "
                              "survives power loss, 'batch' survives "
                              "process crashes)")
    p_serve.add_argument("--replica-of", dest="replica_of", default=None,
                         help="serve --artifact as a read-only follower "
                              "tailing this primary WAL directory "
                              "(see also `repro replica`)")
    p_serve.add_argument("--replica-state", dest="replica_state",
                         default=None,
                         help="follower state directory (cursor + "
                              "checkpoint) for restart resume")
    p_serve.add_argument("--checkpoint-every", type=int, default=None,
                         dest="checkpoint_every",
                         help="follower: checkpoint after this many "
                              "applied records (needs --replica-state)")
    p_serve.add_argument("--poll-ms", type=float, default=25.0,
                         dest="poll_ms",
                         help="follower WAL poll interval (default 25ms)")
    p_serve.add_argument("--read-replicas", dest="read_replicas",
                         default=None,
                         help="comma-separated follower gateways "
                              "(host:port,...) to spread reads across")
    parallel_opts(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_replica = sub.add_parser(
        "replica",
        help="serve a read-only follower that tails a primary's WAL",
    )
    p_replica.add_argument("--artifact", required=True,
                           help="the primary's artifact (replay base)")
    p_replica.add_argument("--wal", required=True,
                           help="the primary's WAL directory to tail")
    p_replica.add_argument("--state", default=None,
                           help="follower state directory (cursor + "
                                "checkpoint) for restart resume")
    p_replica.add_argument("--checkpoint-every", type=int, default=None,
                           dest="checkpoint_every",
                           help="checkpoint after this many applied "
                                "records (needs --state)")
    p_replica.add_argument("--poll-ms", type=float, default=25.0,
                           dest="poll_ms",
                           help="WAL poll interval (default 25ms)")
    gateway_opts(p_replica)
    parallel_opts(p_replica)
    p_replica.set_defaults(func=cmd_replica)

    p_shard = sub.add_parser(
        "shard",
        help="partition a fitted artifact for distributed serving",
    )
    shard_sub = p_shard.add_subparsers(dest="shard_command", required=True)

    p_splan = shard_sub.add_parser(
        "plan", help="split an artifact into K shard artifacts + a plan"
    )
    p_splan.add_argument("--artifact", required=True,
                         help="fitted artifact directory from `fit`")
    p_splan.add_argument("--out", required=True,
                         help="plan directory to write")
    p_splan.add_argument("--shards", type=int, required=True,
                         help="number of shards (K)")
    p_splan.add_argument("--seed", type=int, default=0,
                         help="hash-assignment seed (default 0)")
    p_splan.set_defaults(func=cmd_shard_plan)

    p_srebal = shard_sub.add_parser(
        "rebalance",
        help="re-plan with an explicit assignment that levels shard load",
    )
    p_srebal.add_argument("--plan", required=True,
                          help="existing plan directory to rebalance")
    p_srebal.add_argument("--out", required=True,
                          help="directory for the rebalanced plan")
    p_srebal.add_argument("--shards", type=int, default=None,
                          help="new shard count (default: keep the plan's)")
    p_srebal.set_defaults(func=cmd_shard_rebalance)

    p_sinfo = shard_sub.add_parser(
        "info", help="print the topology of an existing shard plan"
    )
    p_sinfo.add_argument("--plan", required=True,
                         help="plan directory from `shard plan`")
    json_opt(p_sinfo)
    p_sinfo.set_defaults(func=cmd_shard_info)

    p_recover = sub.add_parser(
        "recover",
        help="rebuild serving state from an artifact + write-ahead log",
    )
    p_recover.add_argument("--artifact", required=True,
                           help="base artifact directory (repro fit)")
    p_recover.add_argument("--wal", required=True,
                           help="write-ahead log directory to replay")
    p_recover.add_argument("--out", default=None,
                           help="save the recovered state as a new artifact")
    json_opt(p_recover)
    p_recover.set_defaults(func=cmd_recover)

    p_wal = sub.add_parser(
        "wal", help="inspect write-ahead log directories"
    )
    wal_sub = p_wal.add_subparsers(dest="wal_command", required=True)
    p_winfo = wal_sub.add_parser(
        "info",
        help="per-segment stats, record counts, and epoch range of a WAL",
    )
    p_winfo.add_argument("--wal", required=True,
                         help="write-ahead log directory to inspect")
    p_winfo.add_argument("--cursor", default=None,
                         help="also report a follower cursor file's "
                              "position within this log")
    json_opt(p_winfo)
    p_winfo.set_defaults(func=cmd_wal_info)

    p_swap = sub.add_parser(
        "swap",
        help="blue/green swap a running gateway onto a refit artifact",
    )
    p_swap.add_argument("--host", default="127.0.0.1")
    p_swap.add_argument("--port", type=int, default=8099)
    p_swap.add_argument("--artifact", required=True,
                        help="refit artifact to cut over to")
    p_swap.add_argument("--since-epoch", type=int, default=None,
                        dest="since_epoch",
                        help="live epoch already contained in the refit "
                             "snapshot (default: the artifact's own epoch)")
    p_swap.set_defaults(func=cmd_swap)

    p_load = sub.add_parser(
        "loadgen", help="drive a running gateway with a mixed workload"
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=8099)
    p_load.add_argument("--requests", type=int, default=200)
    p_load.add_argument("--concurrency", type=int, default=8)
    p_load.add_argument("--mode", choices=("closed", "open"),
                        default="closed")
    p_load.add_argument("--rate", type=float, default=None,
                        help="open-loop arrival rate (requests/sec)")
    p_load.add_argument("--mix", default="score=0.8,top_k=0.1,link=0.1",
                        help="comma-separated op weights "
                             "(score/top_k/link)")
    p_load.add_argument("--pairs-per-request", type=int, default=4,
                        dest="pairs_per_request")
    p_load.add_argument("--catalog-limit", type=int, default=200,
                        dest="catalog_limit",
                        help="candidate pairs to sample as workload seed")
    p_load.add_argument("--deadline-ms", type=float, default=None,
                        dest="deadline_ms")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--min-epoch", action="store_true",
                        dest="min_epoch",
                        help="read-your-writes mode: floor every read at "
                             "the worker's last acked write epoch "
                             "(X-Min-Epoch)")
    p_load.add_argument("--read-replicas", dest="read_replicas",
                        default=None,
                        help="comma-separated follower gateways "
                             "(host:port,...) for client-side GET "
                             "failover")
    json_opt(p_load)
    p_load.set_defaults(func=cmd_loadgen)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
