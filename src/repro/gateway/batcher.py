"""Micro-batch request coalescing and the reader/writer epoch fence.

The serving stack is fastest when it is fed arrays: one
``score_pairs_grouped`` call over 64 coalesced requests featurizes their
pairs in a handful of array-at-a-time sweeps, where 64 individual
``score_pairs`` calls would pay the featurization fixed costs 64 times
(see :mod:`repro.features.batch`).  :class:`MicroBatcher` converts
concurrent per-request traffic into exactly that shape: score requests
accumulate in a pending window and flush as **one** batched service call
when the window fills (``max_batch_pairs`` pairs or ``max_batch_requests``
requests) or ages out (``max_wait_ms`` after the first request arrived) —
whichever comes first.  Because
:meth:`~repro.serving.service.LinkageService.score_pairs_grouped` chunks
each group's kernel decision exactly as a standalone call would, a
response is **bit-identical** whether or not the request was coalesced.

Flushes are serialized: while one batch executes, newcomers accumulate in
the next window, so load adaptively deepens batches instead of piling up
executor tasks (the same property that makes group-commit work).  With
``coalesce=False`` every request dispatches immediately and alone — the
"naive" mode the gateway benchmark compares against.

:class:`ReadWriteFence` is the concurrency contract between queries and
online mutations: any number of read dispatches may overlap, but an
``ingest``/``remove`` writer waits for in-flight readers to drain, blocks
new readers while it waits (no writer starvation), and runs alone.  Every
read executes against exactly one registry epoch — the one its response
reports — and a mutation's epoch bump is observed by every subsequent
read, never by a concurrent one mid-flight.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Awaitable, Callable

__all__ = ["MicroBatcher", "ReadWriteFence"]


class ReadWriteFence:
    """An asyncio readers-writer fence with writer priority.

    ``async with fence.read()`` admits any number of concurrent readers
    while no writer is active *or waiting*; ``async with fence.write()``
    waits for active readers to drain and then runs exclusively.  Writers
    block new readers as soon as they start waiting, so a steady read load
    cannot starve a mutation.
    """

    def __init__(self):
        self._cond = asyncio.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextlib.asynccontextmanager
    async def read(self):
        async with self._cond:
            while self._writer_active or self._writers_waiting:
                await self._cond.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._cond.notify_all()

    @contextlib.asynccontextmanager
    async def write(self):
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            async with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class _PendingRequest:
    """One queued score request: its pairs, future, and deadline gate."""

    __slots__ = ("pairs", "future", "guard", "enqueued_at")

    def __init__(self, pairs, future, guard):
        self.pairs = pairs
        self.future = future
        self.guard = guard
        self.enqueued_at = time.monotonic()


class MicroBatcher:
    """Coalesce concurrent score requests into batched service dispatches.

    Parameters
    ----------
    dispatch:
        ``async (groups: list[list[pair]]) -> (results, epoch)`` — provided
        by the server; acquires the read fence and runs
        ``score_pairs_grouped`` on the scoring executor.  ``results`` must
        align with ``groups``.
    max_batch_pairs:
        Flush as soon as the pending window holds this many pairs.
    max_batch_requests:
        Flush as soon as this many requests are pending.
    max_wait_ms:
        Flush this long after the *first* request entered an empty window —
        the latency price any request pays for the chance to be coalesced.
    coalesce:
        ``False`` dispatches each request immediately and alone (the naive
        per-request mode the throughput benchmark compares against).
    """

    def __init__(
        self,
        dispatch: Callable[[list], Awaitable[tuple[list, int]]],
        *,
        max_batch_pairs: int = 512,
        max_batch_requests: int = 64,
        max_wait_ms: float = 2.0,
        coalesce: bool = True,
    ):
        if max_batch_pairs < 1:
            raise ValueError(
                f"max_batch_pairs must be >= 1, got {max_batch_pairs}"
            )
        if max_batch_requests < 1:
            raise ValueError(
                f"max_batch_requests must be >= 1, got {max_batch_requests}"
            )
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._dispatch = dispatch
        self.max_batch_pairs = max_batch_pairs
        self.max_batch_requests = max_batch_requests
        self.max_wait_ms = max_wait_ms
        self.coalesce = coalesce
        self._pending: list[_PendingRequest] = []
        self._pending_pairs = 0
        self._timer: asyncio.TimerHandle | None = None
        self._flusher: asyncio.Task | None = None
        # observability
        self.requests_submitted = 0
        self.batches_dispatched = 0
        self.requests_coalesced = 0  # requests sharing a batch with others
        self.pairs_dispatched = 0
        self.largest_batch_requests = 0
        #: summed per-request delay between enqueue and batch dispatch —
        #: the latency price paid for coalescing (0 in naive mode)
        self.batch_wait_seconds = 0.0

    async def submit(self, pairs: list, guard=None) -> tuple[object, int]:
        """Queue one score request; resolves to ``(scores, epoch)``.

        ``guard`` is an optional zero-argument callable re-checked at
        dispatch time (the admission controller's deadline check): when it
        raises, the request is dropped from the batch and the exception
        becomes the caller's result — expired work never reaches the
        service.
        """
        self.requests_submitted += 1
        if not self.coalesce:
            if guard is not None:
                guard()
            self.batches_dispatched += 1
            self.pairs_dispatched += len(pairs)
            self.largest_batch_requests = max(self.largest_batch_requests, 1)
            results, epoch = await self._dispatch([pairs])
            return results[0], epoch
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append(_PendingRequest(pairs, future, guard))
        self._pending_pairs += len(pairs)
        if (
            self._pending_pairs >= self.max_batch_pairs
            or len(self._pending) >= self.max_batch_requests
        ):
            self._arm_flush()
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_wait_ms / 1e3, self._arm_flush
            )
        return await future

    def _arm_flush(self) -> None:
        """Ensure the flusher task is running; it drains pending windows."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._flusher is None or self._flusher.done():
            self._flusher = asyncio.get_running_loop().create_task(
                self._flush_loop()
            )

    async def _flush_loop(self) -> None:
        """Dispatch pending windows one batch at a time.

        Serialized batches are the backpressure mechanism: while a batch is
        on the executor, new arrivals pile into the next window, so a burst
        turns into fewer, deeper dispatches instead of a task flood.
        """
        while self._pending:
            if self._timer is not None:
                # taking the window now supersedes its age-out timer
                self._timer.cancel()
                self._timer = None
            batch = self._pending
            self._pending = []
            self._pending_pairs = 0
            live: list[_PendingRequest] = []
            for request in batch:
                if request.future.cancelled():
                    continue
                if request.guard is not None:
                    try:
                        request.guard()
                    except BaseException as exc:  # deadline / shutdown
                        if not request.future.done():
                            request.future.set_exception(exc)
                        continue
                live.append(request)
            if not live:
                continue
            self.batches_dispatched += 1
            if len(live) > 1:
                self.requests_coalesced += len(live)
            self.largest_batch_requests = max(
                self.largest_batch_requests, len(live)
            )
            self.pairs_dispatched += sum(len(r.pairs) for r in live)
            dispatched_at = time.monotonic()
            self.batch_wait_seconds += sum(
                dispatched_at - request.enqueued_at for request in live
            )
            try:
                results, epoch = await self._dispatch(
                    [request.pairs for request in live]
                )
            except BaseException as exc:
                for request in live:
                    if not request.future.done():
                        request.future.set_exception(exc)
            else:
                for request, scores in zip(live, results):
                    if not request.future.done():
                        request.future.set_result((scores, epoch))

    async def drain(self) -> None:
        """Flush everything pending and wait for the flusher to go idle."""
        if self._pending:
            self._arm_flush()
        if self._flusher is not None:
            await self._flusher

    def snapshot(self) -> dict:
        """The JSON-ready coalescing metrics block."""
        dispatched = self.batches_dispatched
        return {
            "coalesce": self.coalesce,
            "max_batch_pairs": self.max_batch_pairs,
            "max_batch_requests": self.max_batch_requests,
            "max_wait_ms": self.max_wait_ms,
            "requests_submitted": self.requests_submitted,
            "batches_dispatched": dispatched,
            "requests_coalesced": self.requests_coalesced,
            "pairs_dispatched": self.pairs_dispatched,
            "largest_batch_requests": self.largest_batch_requests,
            "mean_requests_per_batch": (
                self.requests_submitted / dispatched if dispatched else 0.0
            ),
            "mean_batch_wait_ms": (
                self.batch_wait_seconds * 1e3 / self.requests_submitted
                if self.requests_submitted else 0.0
            ),
        }
