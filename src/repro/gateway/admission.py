"""Admission control: bounded in-flight work, deadlines, and endpoint metrics.

The gateway accepts requests faster than the scoring executor can drain
them whenever a traffic burst exceeds capacity.  Left unchecked, the
backlog grows without bound and *every* request's latency climbs — the
classic overload collapse.  :class:`AdmissionController` bounds the damage:

* at most ``max_pending`` admitted requests may be in flight at once —
  request number ``max_pending + 1`` is rejected immediately with **429**
  and a ``Retry-After`` hint, costing microseconds instead of queue time;
* each admitted request carries a deadline (per-request via the
  ``X-Deadline-Ms`` header, else the configured default).  Work whose
  deadline passed while it sat in the coalescing window or the executor
  queue is abandoned with **503** *before* the service burns cycles on an
  answer nobody is waiting for.

Every admitted request is also the unit of observability: per-endpoint
counters and a :class:`~repro.utils.timing.LatencyRecorder` histogram
(p50/p95/p99/max) feed the gateway's ``/stats`` payload.

The controller lives on the event-loop thread: admission decisions and
metric updates are single-owner by construction (the recorder itself is
additionally lock-protected, so loadgen-style off-loop callers could share
it safely).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.utils.timing import LatencyRecorder

__all__ = [
    "AdmissionController",
    "EndpointMetrics",
    "GatewayRejected",
    "Ticket",
]


class GatewayRejected(Exception):
    """A request the gateway refuses to serve, mapped to an HTTP status.

    ``status`` is the HTTP code (429 queue full, 503 deadline passed or
    draining), ``code`` a machine-readable error slug for the JSON body,
    and ``retry_after`` the client back-off hint in seconds (emitted as a
    ``Retry-After`` header) when retrying can help.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


@dataclass
class Ticket:
    """One admitted request: its endpoint, clock, and deadline."""

    endpoint: str
    admitted_at: float
    deadline_at: float | None

    def check_deadline(self, *, retry_after: float | None = None) -> None:
        """Raise 503 when this request's deadline has already passed."""
        if self.deadline_at is not None and time.monotonic() > self.deadline_at:
            raise GatewayRejected(
                503,
                "deadline_exceeded",
                f"request exceeded its deadline before {self.endpoint} "
                "could run",
                retry_after=retry_after,
            )


@dataclass
class EndpointMetrics:
    """Counters and the latency histogram for one endpoint."""

    requests: int = 0
    completed: int = 0
    errors: int = 0
    rejected_busy: int = 0
    rejected_deadline: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "rejected_busy": self.rejected_busy,
            "rejected_deadline": self.rejected_deadline,
            "latency": self.latency.summary(),
        }


class AdmissionController:
    """Bounded-queue backpressure plus per-endpoint observability.

    Parameters
    ----------
    max_pending:
        Admitted-but-unfinished request ceiling across all endpoints.
    default_deadline_ms:
        Deadline applied when a request does not carry its own
        (``None`` = no deadline).
    retry_after_seconds:
        The back-off hint attached to 429/503 rejections.
    """

    def __init__(
        self,
        *,
        max_pending: int = 128,
        default_deadline_ms: float | None = None,
        retry_after_seconds: float = 0.5,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self.default_deadline_ms = default_deadline_ms
        self.retry_after_seconds = retry_after_seconds
        self.pending = 0
        self.peak_pending = 0
        self.admitted_total = 0
        self._endpoints: dict[str, EndpointMetrics] = {}

    def metrics(self, endpoint: str) -> EndpointMetrics:
        metrics = self._endpoints.get(endpoint)
        if metrics is None:
            metrics = self._endpoints[endpoint] = EndpointMetrics()
        return metrics

    def admit(self, endpoint: str, deadline_ms: float | None = None) -> Ticket:
        """Admit one request or reject it with 429 when the queue is full."""
        metrics = self.metrics(endpoint)
        metrics.requests += 1
        if self.pending >= self.max_pending:
            metrics.rejected_busy += 1
            raise GatewayRejected(
                429,
                "queue_full",
                f"{self.pending} requests already in flight "
                f"(max_pending={self.max_pending})",
                retry_after=self.retry_after_seconds,
            )
        self.pending += 1
        self.peak_pending = max(self.peak_pending, self.pending)
        self.admitted_total += 1
        now = time.monotonic()
        effective = (
            deadline_ms if deadline_ms is not None else self.default_deadline_ms
        )
        return Ticket(
            endpoint=endpoint,
            admitted_at=now,
            deadline_at=None if effective is None else now + effective / 1e3,
        )

    def check_deadline(self, ticket: Ticket) -> None:
        """Abandon expired queued work with 503 (counted per endpoint)."""
        try:
            ticket.check_deadline(retry_after=self.retry_after_seconds)
        except GatewayRejected:
            self.metrics(ticket.endpoint).rejected_deadline += 1
            raise

    def complete(self, ticket: Ticket, *, error: bool = False) -> None:
        """Release the ticket's slot and record its end-to-end latency."""
        self.pending -= 1
        metrics = self.metrics(ticket.endpoint)
        if error:
            metrics.errors += 1
        else:
            metrics.completed += 1
        metrics.latency.record(time.monotonic() - ticket.admitted_at)

    def release_rejected(self, ticket: Ticket) -> None:
        """Release a ticket that was rejected after admission (deadline).

        Deadline rejections happen after the slot was taken; the slot must
        come back without counting the request as completed or errored
        (``rejected_deadline`` already counted it).
        """
        self.pending -= 1

    def snapshot(self) -> dict:
        """The JSON-ready admission + per-endpoint metrics block."""
        return {
            "max_pending": self.max_pending,
            "pending": self.pending,
            "peak_pending": self.peak_pending,
            "admitted_total": self.admitted_total,
            "default_deadline_ms": self.default_deadline_ms,
            "endpoints": {
                name: metrics.as_dict()
                for name, metrics in sorted(self._endpoints.items())
            },
        }
