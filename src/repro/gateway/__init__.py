"""The HTTP serving gateway: network front-end for a fitted linker.

This package turns the in-process :class:`~repro.serving.LinkageService`
into a deployable network service, stdlib-only:

* :mod:`repro.gateway.server` — the asyncio HTTP/JSON front-end
  (:class:`LinkageGateway`), its config, and :class:`GatewayThread` for
  hosting one on a background event-loop thread;
* :mod:`repro.gateway.batcher` — micro-batch coalescing of concurrent
  score traffic plus the reader/writer fence that serializes online
  mutations against reads (:class:`MicroBatcher`,
  :class:`ReadWriteFence`);
* :mod:`repro.gateway.admission` — bounded-queue backpressure, deadlines,
  and per-endpoint latency histograms (:class:`AdmissionController`);
* :mod:`repro.gateway.client` — a blocking keep-alive client
  (:class:`GatewayClient`);
* :mod:`repro.gateway.loadgen` — the open/closed-loop load harness
  (:func:`plan_workload`, :func:`run_load`).

Start one from the CLI with ``python -m repro.cli serve --artifact ...``
and drive it with ``python -m repro.cli loadgen``.
"""

from repro.gateway.admission import (
    AdmissionController,
    EndpointMetrics,
    GatewayRejected,
)
from repro.gateway.batcher import MicroBatcher, ReadWriteFence
from repro.gateway.client import GatewayClient, GatewayError
from repro.gateway.loadgen import (
    LoadReport,
    Operation,
    WorkloadMix,
    loadgen_table,
    plan_workload,
    run_load,
)
from repro.gateway.server import GatewayConfig, GatewayThread, LinkageGateway

__all__ = [
    "AdmissionController",
    "EndpointMetrics",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "GatewayRejected",
    "GatewayThread",
    "LinkageGateway",
    "LoadReport",
    "MicroBatcher",
    "Operation",
    "ReadWriteFence",
    "WorkloadMix",
    "loadgen_table",
    "plan_workload",
    "run_load",
]
