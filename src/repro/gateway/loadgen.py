"""Open/closed-loop load generation against a running gateway.

The latency a service quotes is only meaningful under a stated arrival
process, so the harness drives both canonical ones:

* **closed loop** — ``concurrency`` workers issue requests back-to-back;
  throughput finds the server's capacity, latency excludes queueing you
  didn't create (the classic benchmarking loop);
* **open loop** — requests fire on a fixed schedule (``rate`` per second)
  regardless of completions, and each latency is measured from the
  request's *scheduled* arrival — so server-side queueing during bursts is
  charged to the server, the way production percentiles actually accrue
  (avoids coordinated omission).

A workload is planned first (:func:`plan_workload`, deterministic in
``seed``) as a mix of ``score`` / ``top_k`` / ``link`` reads plus optional
``churn`` write cycles (withdraw one account, re-ingest it — a steady-state
mutation that exercises the writer fence without growing the world), then
replayed (:func:`run_load`) by worker threads each owning one
keep-alive :class:`~repro.gateway.client.GatewayClient`.  Per-thread
:class:`~repro.utils.timing.LatencyRecorder` histograms merge into the
:class:`LoadReport`; backpressure rejections (429/503) are counted
separately from hard errors.

Outcomes are tracked **per operation kind** (``op_counts``) along with
how many client-side retries each kind consumed, so invariants like
"zero failed requests during a blue/green swap" are machine-checkable
from the report (and from ``repro loadgen --json``) — a retried-then-
succeeded request counts as succeeded, never as a failure.  Workers run
their clients with ``retry_backpressure=True`` by default: 429s are flow
control, not failures (pass ``retry_backpressure=False`` to measure raw
rejection rates instead).

Staleness accounting (for replicated topologies — :mod:`repro.replica`):
every read response carries the registry epoch it executed at, and each
worker's client tracks the newest epoch its *own* writes were acked at
(:attr:`~repro.gateway.client.GatewayClient.last_write_epoch`).  The gap
``last_write_epoch - observed_epoch`` is that read's staleness in epochs;
the report aggregates it (``stale_reads`` / ``staleness_max`` /
``staleness_mean``).  ``min_epoch=True`` turns the measurement into an
enforcement: reads send their worker's last write epoch as the
``X-Min-Epoch`` floor (read-your-writes), and any response below the
floor counts in ``min_epoch_violations`` — which a replicated gateway
must keep at zero.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.gateway.client import GatewayClient, GatewayError
from repro.utils.timing import LatencyRecorder

__all__ = [
    "LoadReport",
    "Operation",
    "WorkloadMix",
    "loadgen_table",
    "plan_workload",
    "run_load",
]


@dataclass(frozen=True)
class WorkloadMix:
    """Relative endpoint weights of a planned workload (need not sum to 1)."""

    score_pairs: float = 0.8
    top_k: float = 0.1
    link_account: float = 0.1
    churn: float = 0.0

    def weights(self) -> dict[str, float]:
        weights = {
            "score": self.score_pairs,
            "top_k": self.top_k,
            "link": self.link_account,
            "churn": self.churn,
        }
        if any(w < 0 for w in weights.values()) or sum(weights.values()) <= 0:
            raise ValueError(f"invalid workload mix {weights}")
        return weights


@dataclass(frozen=True)
class Operation:
    """One planned request: the op kind plus its ready-to-send payload."""

    kind: str
    payload: tuple


@dataclass
class LoadReport:
    """What one load run measured."""

    mode: str
    concurrency: int
    rate: float | None
    requests: int
    succeeded: int
    rejected: int
    errors: int
    seconds: float
    latency: LatencyRecorder
    per_op: dict[str, LatencyRecorder] = field(default_factory=dict)
    #: client-side retries consumed across all requests (backpressure
    #: backoff + reconnects); a retried request still counts exactly once
    #: under its final outcome
    retried: int = 0
    #: per-op-kind outcome counts:
    #: ``{kind: {succeeded, rejected, errors, retried}}``
    op_counts: dict[str, dict[str, int]] = field(default_factory=dict)
    #: whether reads enforced a read-your-writes X-Min-Epoch floor
    min_epoch_mode: bool = False
    #: successful reads whose observed epoch trailed the worker's last
    #: acked write epoch (staleness in epochs > 0)
    stale_reads: int = 0
    #: the largest and mean epoch gap observed across successful reads
    staleness_max: int = 0
    staleness_mean: float = 0.0
    #: reads answered below their requested X-Min-Epoch floor — a
    #: replicated gateway must keep this at zero
    min_epoch_violations: int = 0

    @property
    def requests_per_sec(self) -> float:
        return self.succeeded / self.seconds if self.seconds > 0 else 0.0

    @property
    def failed(self) -> int:
        """Requests that did not succeed, retries included (the gate the
        swap harness checks for zero)."""
        return self.rejected + self.errors

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "concurrency": self.concurrency,
            "rate": self.rate,
            "requests": self.requests,
            "succeeded": self.succeeded,
            "rejected": self.rejected,
            "errors": self.errors,
            "failed": self.failed,
            "retried": self.retried,
            "seconds": self.seconds,
            "requests_per_sec": self.requests_per_sec,
            "latency": self.latency.summary(),
            "per_op": {
                kind: recorder.summary()
                for kind, recorder in sorted(self.per_op.items())
            },
            "op_counts": {
                kind: dict(outcome)
                for kind, outcome in sorted(self.op_counts.items())
            },
            "min_epoch_mode": self.min_epoch_mode,
            "stale_reads": self.stale_reads,
            "staleness_max": self.staleness_max,
            "staleness_mean": self.staleness_mean,
            "min_epoch_violations": self.min_epoch_violations,
        }


def plan_workload(
    catalog: dict,
    *,
    mix: WorkloadMix | None = None,
    num_requests: int = 200,
    pairs_per_request: int = 4,
    top: int = 5,
    seed: int = 0,
    churn_refs: list | None = None,
) -> list[Operation]:
    """Build a deterministic request sequence from a ``/candidates`` payload.

    ``catalog`` is the gateway's ``GET /candidates`` response (or an
    equivalent dict): ``platform_pairs`` feeds ``top_k`` ops, the sampled
    ``pairs`` feed ``score`` (contiguous slices of ``pairs_per_request``)
    and ``link`` (their left accounts).  ``churn`` ops cycle through
    ``churn_refs`` — accounts the caller guarantees are served and *absent*
    from the sampled score pairs, so a concurrent withdrawal can never
    invalidate a read in flight.
    """
    mix = mix or WorkloadMix()
    weights = mix.weights()
    pairs = [
        (tuple(pair[0]), tuple(pair[1])) for pair in catalog.get("pairs", [])
    ]
    platform_pairs = [tuple(key) for key in catalog.get("platform_pairs", [])]
    churn_refs = [tuple(ref) for ref in (churn_refs or [])]
    if weights["score"] > 0 and not pairs:
        raise ValueError("catalog has no pairs to build score ops from")
    if weights["top_k"] > 0 and not platform_pairs:
        raise ValueError("catalog has no platform pairs for top_k ops")
    if weights["link"] > 0 and not pairs:
        raise ValueError("catalog has no pairs to build link ops from")
    if weights["churn"] > 0 and not churn_refs:
        raise ValueError("churn ops require churn_refs")
    if pairs_per_request < 1:
        raise ValueError(
            f"pairs_per_request must be >= 1, got {pairs_per_request}"
        )

    rng = random.Random(seed)
    kinds = list(weights)
    kind_weights = [weights[kind] for kind in kinds]
    ops: list[Operation] = []
    churn_cursor = 0
    for _ in range(num_requests):
        kind = rng.choices(kinds, weights=kind_weights)[0]
        if kind == "score":
            start = rng.randrange(len(pairs))
            window = [
                pairs[(start + i) % len(pairs)]
                for i in range(min(pairs_per_request, len(pairs)))
            ]
            ops.append(Operation("score", (tuple(window),)))
        elif kind == "top_k":
            key = platform_pairs[rng.randrange(len(platform_pairs))]
            ops.append(Operation("top_k", (key[0], key[1], top)))
        elif kind == "link":
            ref = pairs[rng.randrange(len(pairs))][0]
            ops.append(Operation("link", (ref[0], ref[1], top)))
        else:  # churn: withdraw + re-ingest one dedicated account
            ref = churn_refs[churn_cursor % len(churn_refs)]
            churn_cursor += 1
            ops.append(Operation("churn", (ref,)))
    return ops


#: op kinds whose responses carry an observable read epoch
_READ_KINDS = ("score", "top_k", "link")


def _execute(
    client: GatewayClient, op: Operation, deadline_ms, min_epoch=None
) -> dict:
    if op.kind == "score":
        return client.score_pairs(
            list(op.payload[0]), deadline_ms=deadline_ms, min_epoch=min_epoch
        )
    elif op.kind == "top_k":
        platform_a, platform_b, top = op.payload
        return client.top_k(
            platform_a, platform_b, top,
            deadline_ms=deadline_ms, min_epoch=min_epoch,
        )
    elif op.kind == "link":
        platform, account_id, top = op.payload
        return client.link_account(
            platform, account_id, top=top,
            deadline_ms=deadline_ms, min_epoch=min_epoch,
        )
    elif op.kind == "churn":
        (ref,) = op.payload
        client.remove_account(ref)
        return client.ingest([ref], score=False)
    else:
        raise ValueError(f"unknown operation kind {op.kind!r}")


def run_load(
    host: str,
    port: int,
    ops: list[Operation],
    *,
    mode: str = "closed",
    concurrency: int = 8,
    rate: float | None = None,
    deadline_ms: float | None = None,
    timeout: float = 30.0,
    retry_backpressure: bool = True,
    min_epoch: bool = False,
    read_endpoints=(),
) -> LoadReport:
    """Replay ``ops`` against a gateway and measure the outcome.

    ``mode="closed"`` ignores ``rate``; ``mode="open"`` requires it and
    schedules op ``i`` at ``i / rate`` seconds after the start, measuring
    each latency from that scheduled instant.  ``concurrency`` bounds the
    worker threads either way (an open loop that cannot keep up reports
    the queueing it caused as latency, exactly as intended).

    With ``retry_backpressure`` (the default) workers back off and retry
    429s — ``rejected`` then counts only retry-exhausted backpressure,
    and the retries show up in ``retried`` / ``op_counts``.

    ``min_epoch=True`` makes every read enforce read-your-writes: it
    sends the worker's own last acked write epoch as the ``X-Min-Epoch``
    floor (see the module docstring).  ``read_endpoints`` hands each
    worker's client extra follower addresses for GET failover.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if mode == "open" and (rate is None or rate <= 0):
        raise ValueError("open-loop mode requires a positive rate")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if not ops:
        raise ValueError("no operations to run")

    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    counts_lock = threading.Lock()
    counts = {"succeeded": 0, "rejected": 0, "errors": 0, "retried": 0,
              "stale_reads": 0, "staleness_max": 0, "staleness_sum": 0,
              "observed_reads": 0, "min_epoch_violations": 0}
    op_counts: dict[str, dict[str, int]] = {}
    thread_recorders: list[tuple[LatencyRecorder, dict]] = []
    start_at = time.monotonic() + 0.05  # let every worker reach the line

    def worker(worker_index: int) -> None:
        overall = LatencyRecorder(seed=worker_index)
        per_op: dict[str, LatencyRecorder] = {}
        thread_recorders.append((overall, per_op))
        with GatewayClient(
            host, port, timeout=timeout,
            retry_backpressure=retry_backpressure,
            read_endpoints=read_endpoints,
        ) as client:
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(ops):
                        return
                    cursor["next"] = index + 1
                op = ops[index]
                if mode == "open":
                    scheduled = start_at + index / rate
                    delay = scheduled - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    issued = scheduled
                else:
                    issued = time.monotonic()
                outcome = "succeeded"
                retries_before = client.retries
                floor = None
                if min_epoch and op.kind in _READ_KINDS:
                    floor = client.last_write_epoch or None
                response: dict = {}
                try:
                    response = _execute(
                        client, op, deadline_ms, min_epoch=floor
                    )
                except GatewayError as error:
                    outcome = (
                        "rejected" if error.is_backpressure else "errors"
                    )
                except OSError:
                    outcome = "errors"
                elapsed = time.monotonic() - issued
                retried = client.retries - retries_before
                staleness = None
                if (
                    outcome == "succeeded"
                    and op.kind in _READ_KINDS
                    and isinstance(response.get("epoch"), int)
                ):
                    observed = response["epoch"]
                    staleness = max(0, client.last_write_epoch - observed)
                with counts_lock:
                    counts[outcome] += 1
                    counts["retried"] += retried
                    if staleness is not None:
                        counts["observed_reads"] += 1
                        counts["staleness_sum"] += staleness
                        if staleness > 0:
                            counts["stale_reads"] += 1
                        if staleness > counts["staleness_max"]:
                            counts["staleness_max"] = staleness
                        if floor is not None and response["epoch"] < floor:
                            counts["min_epoch_violations"] += 1
                    kind_counts = op_counts.setdefault(
                        op.kind,
                        {"succeeded": 0, "rejected": 0, "errors": 0,
                         "retried": 0},
                    )
                    kind_counts[outcome] += 1
                    kind_counts["retried"] += retried
                if outcome == "succeeded":
                    overall.record(elapsed)
                    recorder = per_op.get(op.kind)
                    if recorder is None:
                        recorder = per_op[op.kind] = LatencyRecorder(
                            seed=worker_index
                        )
                    recorder.record(elapsed)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    begin = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.monotonic() - begin

    latency = LatencyRecorder()
    merged_per_op: dict[str, LatencyRecorder] = {}
    for overall, per_op in thread_recorders:
        latency.merge(overall)
        for kind, recorder in per_op.items():
            if kind not in merged_per_op:
                merged_per_op[kind] = LatencyRecorder()
            merged_per_op[kind].merge(recorder)
    return LoadReport(
        mode=mode,
        concurrency=concurrency,
        rate=rate,
        requests=len(ops),
        succeeded=counts["succeeded"],
        rejected=counts["rejected"],
        errors=counts["errors"],
        seconds=seconds,
        latency=latency,
        per_op=merged_per_op,
        retried=counts["retried"],
        op_counts=op_counts,
        min_epoch_mode=min_epoch,
        stale_reads=counts["stale_reads"],
        staleness_max=counts["staleness_max"],
        staleness_mean=(
            counts["staleness_sum"] / counts["observed_reads"]
            if counts["observed_reads"] else 0.0
        ),
        min_epoch_violations=counts["min_epoch_violations"],
    )


def loadgen_table(
    reports: list[LoadReport], labels: list[str], *, staleness: bool = False
) -> list[list]:
    """Rows for tabular reporting, one per labelled run.

    ``staleness=True`` appends a ``max_stale`` column (the largest
    read-epoch gap — see the module docstring); callers writing
    benchmark tables opt in so existing committed baselines keep their
    shape.
    """
    rows = []
    for label, report in zip(labels, reports):
        summary = report.latency.summary()
        row = [
            label,
            report.requests,
            report.succeeded,
            report.failed,
            report.retried,
            report.seconds,
            report.requests_per_sec,
            summary["p50_ms"],
            summary["p99_ms"],
        ]
        if staleness:
            row.append(report.staleness_max)
        rows.append(row)
    return rows
