"""The asyncio HTTP/JSON gateway in front of a :class:`LinkageService`.

Pure stdlib: an ``asyncio.start_server`` loop speaks enough HTTP/1.1
(keep-alive, ``Content-Length`` bodies, structured JSON errors) to serve
the linkage API over a socket, while every CPU-heavy service call runs on
a small thread pool so the event loop keeps accepting and parsing traffic.

Endpoints
---------
=========  ==================  =================================================
method     path                action
=========  ==================  =================================================
``POST``   ``/score_pairs``    decision values for a pair batch (coalesced)
``GET``    ``/top_k``          strongest links of one platform pair
``POST``   ``/link_account``   resolve one account against its candidates
``POST``   ``/ingest``         absorb accounts (writer; accepts inline payloads)
``DELETE`` ``/account``        withdraw one account from serving (writer)
``POST``   ``/swap``           blue/green cutover to a refit artifact (writer)
``POST``   ``/shards/restart`` rebuild one shard worker + replay (writer)
``GET``    ``/candidates``     platform pairs + sample pairs (loadgen seed)
``GET``    ``/stats``          service counters + gateway metrics
``GET``    ``/healthz``        liveness + registry epoch
``GET``    ``/replicas``       replication topology: per-follower epoch + lag
=========  ==================  =================================================

Replication (:mod:`repro.replica`): a gateway serving a
:class:`~repro.replica.FollowerService` runs a background follow loop
(tail the primary's WAL off-fence, apply under the write fence) and
rejects mutations with 409.  A primary configured with ``read_replicas``
routes a share of its reads to follower gateways through a
:class:`~repro.replica.ReplicaRouter`; the ``X-Min-Epoch`` request
header sets a freshness floor — the router skips followers not known to
have reached it, a follower waits briefly then answers 412, and a read
that executed at ``epoch >= min_epoch`` can never observe older state
because the registry epoch is monotone and checked inside the fence.

The gateway serves a :class:`~repro.shard.ShardedLinkageService` unchanged
(it duck-types the service interface).  Sharded deployments differ in
three visible ways: ``/swap`` is rejected with 409 (rebalance + restart is
the sharded model-update path), writes whose owner shard is down return
503 with ``Retry-After``, and degraded reads carry a
``shards_unavailable`` list next to their (partial) results — scores for
pairs on downed shards surface as ``null``.

Concurrency model — reads coalesce, writes fence:

* ``/score_pairs`` traffic flows through the :class:`MicroBatcher`; a
  flush acquires the :class:`ReadWriteFence` as a *reader* and runs one
  ``score_pairs_grouped`` call on the executor.  Responses are
  bit-identical to uncoalesced calls (see :mod:`repro.gateway.batcher`).
* ``/top_k`` and ``/link_account`` are individual reader dispatches.
* ``/ingest`` and ``DELETE /account`` acquire the fence as the *writer*:
  in-flight readers drain, the mutation runs alone, the registry epoch
  bump becomes visible, then readers resume.  Every response carries the
  epoch it executed against.
* ``/swap`` loads a refit artifact next to the live service, replays the
  WAL delta accumulated since the refit snapshot into it off-fence (reads
  keep flowing), then takes the write fence for the *final* catch-up and
  an atomic cutover at an equal epoch — in-flight requests complete
  against the service (and epoch) they started on, and the WAL handle
  moves to the new service so logged history stays continuous.

Every handler resolves ``self.service`` *inside* its fence acquisition,
so a request that waited out a swap executes against the service that
owns the post-cutover epoch.

Admission control (:mod:`repro.gateway.admission`) caps in-flight work and
abandons deadline-expired requests before they reach the service.
:meth:`LinkageGateway.stop` is graceful: stop accepting, drain the batcher
and in-flight handlers, then release the executor.
:class:`GatewayThread` hosts a gateway on a dedicated event-loop thread for
tests, examples, and the load harness.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
import time
import urllib.parse
from dataclasses import dataclass

from repro.gateway.admission import AdmissionController, GatewayRejected
from repro.gateway.batcher import MicroBatcher, ReadWriteFence
from repro.serving.service import LinkageService
from repro.shard.router import ShardUnavailableError
from repro.wal.faults import trip as _trip_fault
from repro.wal.payload import apply_payload, payload_from_json
from repro.wal.recovery import replay_wal_delta

__all__ = ["GatewayConfig", "GatewayThread", "LinkageGateway"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_DEADLINE_HEADER = "x-deadline-ms"
_MIN_EPOCH_HEADER = "x-min-epoch"


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs of one gateway instance (all have serviceable defaults)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; read it back from `gateway.port`
    #: micro-batching window (see :class:`repro.gateway.batcher.MicroBatcher`)
    max_batch_pairs: int = 512
    max_batch_requests: int = 64
    max_wait_ms: float = 2.0
    coalesce: bool = True
    #: admission control (see :mod:`repro.gateway.admission`)
    max_pending: int = 128
    default_deadline_ms: float | None = None
    retry_after_seconds: float = 0.5
    #: scoring executor threads; >1 lets reads overlap (the service's
    #: caches and counters are lock-protected for exactly this)
    executor_threads: int = 2
    shutdown_grace_seconds: float = 10.0
    #: replication (see :mod:`repro.replica`): follower gateway addresses
    #: eligible to serve this gateway's reads ("host:port" strings)
    read_replicas: tuple = ()
    #: how often a follower gateway polls the primary's WAL
    replica_poll_ms: float = 25.0
    #: how long a follower read with an X-Min-Epoch floor waits for
    #: replication to catch up before answering 412
    min_epoch_wait_ms: float = 1000.0
    #: how long a dead follower sits out before a half-open retry
    replica_retry_dead_seconds: float = 2.0


class LinkageGateway:
    """One HTTP gateway bound to one :class:`LinkageService`."""

    def __init__(
        self, service: LinkageService, config: GatewayConfig | None = None
    ):
        self.service = service
        self.config = config or GatewayConfig()
        self.port: int | None = None  # actual bound port, set by start()
        self._server: asyncio.base_events.Server | None = None
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None
        self._fence = ReadWriteFence()
        self._admission = AdmissionController(
            max_pending=self.config.max_pending,
            default_deadline_ms=self.config.default_deadline_ms,
            retry_after_seconds=self.config.retry_after_seconds,
        )
        self._batcher = MicroBatcher(
            self._dispatch_groups,
            max_batch_pairs=self.config.max_batch_pairs,
            max_batch_requests=self.config.max_batch_requests,
            max_wait_ms=self.config.max_wait_ms,
            coalesce=self.config.coalesce,
        )
        self._draining = False
        self._swap_lock = asyncio.Lock()
        #: True once /swap replaced the caller's service with one the
        #: gateway loaded itself — stop() then owns its full teardown
        self._service_swapped = False
        self._router = None
        self._replica_unavailable = ()  # exception class, set with router
        if self.config.read_replicas:
            # lazy import: repro.replica imports the gateway client
            from repro.replica.router import ReplicaRouter, ReplicaUnavailable

            self._router = ReplicaRouter(
                self.config.read_replicas,
                retry_dead_seconds=self.config.replica_retry_dead_seconds,
            )
            self._replica_unavailable = ReplicaUnavailable
        self._follow_task: asyncio.Task | None = None
        self._follow_errors = 0
        self._inflight_conns: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        #: writers whose connection currently has a request mid-handler —
        #: shutdown must not sever these while it unblocks idle ones
        self._busy_writers: set[asyncio.StreamWriter] = set()
        self._started_at: float | None = None
        self._routes = {
            ("POST", "/score_pairs"): self._handle_score_pairs,
            ("GET", "/top_k"): self._handle_top_k,
            ("POST", "/link_account"): self._handle_link_account,
            ("POST", "/ingest"): self._handle_ingest,
            ("DELETE", "/account"): self._handle_remove_account,
            ("POST", "/swap"): self._handle_swap,
            ("POST", "/shards/restart"): self._handle_restart_shard,
            ("GET", "/candidates"): self._handle_candidates,
            ("GET", "/stats"): self._handle_stats,
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/replicas"): self._handle_replicas,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start serving (returns immediately)."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="gateway-score",
        )
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        if getattr(self.service, "is_follower", False):
            self._follow_task = asyncio.ensure_future(self._follow_loop())

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, release the executor."""
        if self._server is None:
            return
        self._draining = True
        if self._follow_task is not None:
            self._follow_task.cancel()
            try:
                await self._follow_task
            except asyncio.CancelledError:
                pass
            self._follow_task = None
        self._server.close()
        await self._server.wait_closed()
        await self._batcher.drain()
        for writer in list(self._conn_writers - self._busy_writers):
            # resolve idle keep-alive reads by closing their transports;
            # connections with a request mid-handler keep theirs so the
            # response still reaches the client
            writer.close()
        if self._inflight_conns:
            _done, pending = await asyncio.wait(
                self._inflight_conns,
                timeout=self.config.shutdown_grace_seconds,
            )
            for task in pending:
                task.cancel()
        # every mutation has drained; a clean shutdown must never leave
        # an unsynced WAL tail.  A service the gateway swapped in itself
        # is fully ours to release (pool included).
        release = (
            self.service.close if self._service_swapped
            else self.service.close_wal
        )
        await asyncio.get_running_loop().run_in_executor(None, release)
        if self._router is not None:
            self._router.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._server = None

    # ------------------------------------------------------------------
    # dispatch helpers (event-loop side of the fence)
    # ------------------------------------------------------------------
    async def _run_scoring(self, fn, *args):
        """Run one service call on the scoring executor."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _dispatch_groups(self, groups):
        """Batcher callback: score coalesced groups under the read fence."""
        async with self._fence.read():
            epoch = self.service.registry_epoch
            results = await self._run_scoring(
                self.service.score_pairs_grouped, groups
            )
        return results, epoch

    async def _read_call(self, ticket, fn, *args, min_epoch=None):
        """One non-batched reader call (top_k / link_account).

        The deadline re-check happens after the fence is acquired: a read
        that waited out its deadline behind an ingest writer is abandoned
        with 503 instead of burning scoring cycles.  A ``min_epoch``
        freshness floor is enforced *inside* the fence — the epoch is
        monotone, so a response computed at ``epoch >= min_epoch`` can
        never be staler than requested — after an off-fence grace wait
        on followers (:meth:`_await_min_epoch`).
        """
        await self._await_min_epoch(min_epoch)
        async with self._fence.read():
            self._admission.check_deadline(ticket)
            epoch = self.service.registry_epoch
            if min_epoch is not None and epoch < min_epoch:
                raise _Stale(
                    f"serving epoch {epoch} is older than the requested "
                    f"floor {min_epoch}"
                )
            result = await self._run_scoring(fn, *args)
        return result, epoch

    async def _write_call(self, fn, *args):
        """One mutation: exclusive against every reader dispatch."""
        async with self._fence.write():
            result = await self._run_scoring(fn, *args)
            epoch = self.service.registry_epoch
        return result, epoch

    # ------------------------------------------------------------------
    # replication (see repro.replica)
    # ------------------------------------------------------------------
    async def _follow_loop(self) -> None:
        """Follower gateways: tail the primary's WAL and apply deltas.

        ``poll`` (one incremental tail read) runs off-fence; only the
        apply holds the write fence, so reads see the epoch and the
        scores advance atomically — exactly like a local write.
        """
        poll_seconds = max(self.config.replica_poll_ms, 1.0) / 1000.0
        while True:
            try:
                pending = await self._run_scoring(self.service.poll)
                if pending:
                    async with self._fence.write():
                        await self._run_scoring(self.service.apply_pending)
            except asyncio.CancelledError:
                raise
            except Exception:
                # transient races (primary mid-rotation, artifact being
                # rewritten) heal on the next tick; count, don't crash
                self._follow_errors += 1
            await asyncio.sleep(poll_seconds)

    async def _await_min_epoch(self, min_epoch: int | None) -> None:
        """On a follower, give replication a moment to reach the floor.

        Waits *without* holding the read fence (the apply path needs the
        write fence to advance the epoch).  The fenced check in
        :meth:`_read_call` remains the authority; this only converts
        would-be 412s into slightly delayed fresh answers.
        """
        if min_epoch is None or not getattr(self.service, "is_follower",
                                            False):
            return
        deadline = (
            time.monotonic() + self.config.min_epoch_wait_ms / 1000.0
        )
        while self.service.registry_epoch < min_epoch:
            if time.monotonic() >= deadline:
                return
            await asyncio.sleep(
                min(0.005, self.config.replica_poll_ms / 1000.0)
            )

    async def _forward_read(self, op: str, kwargs: dict,
                            min_epoch: int | None):
        """Offer one read to the replica router; None means serve locally.

        Any follower-side failure (dead endpoint, stale for the floor,
        load shedding) falls back to the local service, so a dying
        follower costs latency, never correctness or availability.
        """
        router = self._router
        if router is None or self._draining:
            return None
        endpoint = router.pick(min_epoch)
        if endpoint is None:
            return None
        try:
            return await asyncio.get_running_loop().run_in_executor(
                router.executor, router.call, endpoint, op, kwargs
            )
        except self._replica_unavailable:
            return None

    def _shard_marker(self, payload: dict) -> dict:
        """Annotate a response with the downed-shard list, when degraded."""
        service = self.service
        if getattr(service, "is_sharded", False):
            down = service.shards_unavailable()
            if down:
                payload["shards_unavailable"] = down
        return payload

    # ------------------------------------------------------------------
    # endpoint handlers: (body, query, ticket) -> (status, payload)
    # ------------------------------------------------------------------
    async def _handle_score_pairs(self, body, query, ticket):
        pairs = _parse_pairs(_require(body, "pairs"))
        batch_size = body.get("batch_size")
        if batch_size is not None and (
            not isinstance(batch_size, int) or batch_size < 1
        ):
            raise _BadRequest(f"batch_size must be a positive int, got "
                              f"{batch_size!r}")
        min_epoch = _opt_int_query(query, "min_epoch")
        forwarded = await self._forward_read(
            "score_pairs",
            {"pairs": pairs, "batch_size": batch_size,
             "min_epoch": min_epoch},
            min_epoch,
        )
        if forwarded is not None:
            return 200, forwarded
        if batch_size is None and min_epoch is not None:
            # a freshness floor cannot ride a coalesced dispatch (the
            # flush snapshots one epoch for the whole group); run alone —
            # chunking is identical, so the scores are the same bytes
            scores, epoch = await self._read_call(
                ticket,
                lambda: self.service.score_pairs(pairs),
                min_epoch=min_epoch,
            )
        elif batch_size is None:
            scores, epoch = await self._batcher.submit(
                pairs, guard=lambda: self._admission.check_deadline(ticket)
            )
        else:
            # a custom batch size changes the chunk composition, so it can
            # never share a coalesced dispatch; run it alone
            scores, epoch = await self._read_call(
                ticket,
                lambda: self.service.score_pairs(pairs,
                                                 batch_size=batch_size),
                min_epoch=min_epoch,
            )
        return 200, self._shard_marker({
            # NaN marks a pair whose owner shard is down; JSON says null
            "scores": [None if s != s else float(s) for s in scores],
            "epoch": epoch,
        })

    async def _handle_top_k(self, body, query, ticket):
        platform_a = _require_query(query, "platform_a")
        platform_b = _require_query(query, "platform_b")
        k = _int_query(query, "k", 10)
        # exact=false opts into the approximate path (index-pruned +
        # landmark fast scorer, exact rescoring of the returned list);
        # responses stay epoch-stamped either way, and the approximate
        # path never populates the service's exact score cache
        exact = _bool_query(query, "exact", True)
        budget = _opt_int_query(query, "budget")
        min_epoch = _opt_int_query(query, "min_epoch")
        forwarded = await self._forward_read(
            "top_k",
            {"platform_a": platform_a, "platform_b": platform_b, "k": k,
             "exact": exact, "budget": budget, "min_epoch": min_epoch},
            min_epoch,
        )
        if forwarded is not None:
            return 200, forwarded
        links, epoch = await self._read_call(
            ticket,
            lambda: self.service.top_k(
                platform_a, platform_b, k, exact=exact, budget=budget
            ),
            min_epoch=min_epoch,
        )
        return 200, self._shard_marker(
            {"links": [_link_json(link) for link in links], "epoch": epoch}
        )

    async def _handle_link_account(self, body, query, ticket):
        platform = _require(body, "platform")
        account_id = _require(body, "account_id")
        other = body.get("other_platform")
        top = body.get("top", 5)
        if not isinstance(top, int):
            raise _BadRequest(f"top must be an int, got {top!r}")
        exact = body.get("exact", True)
        if not isinstance(exact, bool):
            raise _BadRequest(f"exact must be a bool, got {exact!r}")
        budget = body.get("budget")
        if budget is not None and not isinstance(budget, int):
            raise _BadRequest(f"budget must be an int, got {budget!r}")
        min_epoch = _opt_int_query(query, "min_epoch")
        forwarded = await self._forward_read(
            "link_account",
            {"platform": platform, "account_id": account_id,
             "other_platform": other, "top": top, "exact": exact,
             "budget": budget, "min_epoch": min_epoch},
            min_epoch,
        )
        if forwarded is not None:
            return 200, forwarded
        links, epoch = await self._read_call(
            ticket,
            lambda: self.service.link_account(
                platform, account_id, other_platform=other, top=top,
                exact=exact, budget=budget,
            ),
            min_epoch=min_epoch,
        )
        return 200, self._shard_marker(
            {"links": [_link_json(link) for link in links], "epoch": epoch}
        )

    def _reject_follower_write(self) -> None:
        # before any parsing side effects: the non-sharded ingest path
        # mutates service.world ahead of add_accounts, so a follower must
        # refuse up front, not rely on the service raising mid-mutation
        if getattr(self.service, "is_follower", False):
            raise _Conflict(
                "this gateway serves a read-only follower replica; send "
                "writes to the primary"
            )

    async def _handle_ingest(self, body, query, ticket):
        self._reject_follower_write()
        refs = [_parse_ref(ref) for ref in _require(body, "refs")]
        score = body.get("score", True)
        raw_accounts = body.get("accounts", [])
        if not isinstance(raw_accounts, list):
            raise _BadRequest("accounts must be a list of account payloads")
        # inline arrivals: full account state rides in the request (see
        # repro.wal.payload), so remote producers need no prior access to
        # the served world; decode errors surface as 400s before the fence
        payloads = [payload_from_json(raw) for raw in raw_accounts]

        if getattr(self.service, "is_sharded", False):
            # sharded ingest routes each payload to its owner shard, so
            # every arriving ref must carry its payload inline
            if len(payloads) != len(refs):
                raise _BadRequest(
                    f"sharded ingest needs one account payload per ref "
                    f"({len(refs)} refs, {len(payloads)} payloads)"
                )
            for ref, payload in zip(refs, payloads):
                if payload.ref != ref:
                    raise _BadRequest(
                        f"account payload describes {payload.ref}, listed "
                        f"as {ref}"
                    )

            def mutate():
                return self.service.ingest_payloads(
                    refs, raw_accounts, score=bool(score)
                )

        else:

            def mutate():
                service = self.service
                for payload in payloads:
                    apply_payload(service.world, payload)
                return service.add_accounts(refs, score=bool(score))

        report, epoch = await self._write_call(mutate)
        return 200, {
            "refs": [list(ref) for ref in report.refs],
            "epoch": report.epoch,
            "pairs_added": report.pairs_added,
            "pairs_removed": report.pairs_removed,
            "links": [_link_json(link) for link in report.links],
        }

    async def _handle_remove_account(self, body, query, ticket):
        self._reject_follower_write()
        ref = _parse_ref(_require(body, "ref"))
        removed, epoch = await self._write_call(
            lambda: self.service.remove_account(ref)
        )
        return 200, {"ref": list(ref), "pairs_removed": removed,
                     "epoch": epoch}

    def _load_standby(self, artifact: str) -> LinkageService:
        """Load a refit artifact as a standby service, mirroring the live
        service's serving knobs (a swap changes the model, not capacity)."""
        live = self.service
        return LinkageService(
            type(live.linker).load(artifact),
            batch_size=live.batch_size,
            summary_cache_size=live._summaries.maxsize,
            score_cache_size=live._score_cache.maxsize,
            workers=live.workers,
            shard_size=live.shard_size,
        )

    async def _handle_swap(self, body, query, ticket):
        """Blue/green cutover: catch a refit artifact up, then switch.

        ``since_epoch`` names the live epoch the refit snapshot already
        contains (defaults to the epoch persisted in the artifact); WAL
        records after it are replayed into the standby.  The bulk replay
        runs off-fence — reads keep flowing on the live service — and
        only the final catch-up of mutations that landed meanwhile holds
        the write fence, so the unavailability window is one fence
        acquisition plus the tail replay, not the whole delta.
        """
        self._reject_follower_write()
        if getattr(self.service, "is_sharded", False):
            raise _Conflict(
                "sharded deployments do not support /swap; plan against "
                "the refit artifact and restart the shard fleet instead"
            )
        artifact = _require(body, "artifact")
        if not isinstance(artifact, str) or not artifact:
            raise _BadRequest(f"artifact must be a path, got {artifact!r}")
        since = body.get("since_epoch")
        if since is not None and not isinstance(since, int):
            raise _BadRequest(f"since_epoch must be an int, got {since!r}")
        if self._swap_lock.locked():
            raise _Conflict("another swap is already in progress")
        async with self._swap_lock:
            from repro.persist import artifact_exists

            if not artifact_exists(artifact):
                raise _BadRequest(f"no artifact at {artifact}")
            blue = self.service
            previous_epoch = blue.registry_epoch
            green = await self._run_scoring(
                lambda: self._load_standby(artifact)
            )
            replayed = 0
            try:
                applied = since if since is not None else green.registry_epoch
                wal = blue.wal
                if wal is not None:
                    applied, count = await self._run_scoring(
                        lambda: replay_wal_delta(
                            green, wal, after_epoch=applied
                        )
                    )
                    replayed += count
                async with self._fence.write():
                    # writers are fenced out: one last catch-up of records
                    # that landed during the warm replay, then the epochs
                    # must meet exactly
                    if wal is not None:
                        applied, count = await self._run_scoring(
                            lambda: replay_wal_delta(
                                green, wal, after_epoch=applied
                            )
                        )
                        replayed += count
                    if green.registry_epoch != blue.registry_epoch:
                        raise _Conflict(
                            f"standby caught up to epoch "
                            f"{green.registry_epoch} but the live service "
                            f"is at {blue.registry_epoch}; mutations are "
                            f"not reaching the WAL"
                        )
                    _trip_fault("swap.cutover")
                    if wal is not None:
                        blue.detach_wal()
                        green.attach_wal(wal)
                    self.service = green
                    self._service_swapped = True
            except BaseException:
                await self._run_scoring(green.close)
                raise
            # the displaced service releases its pool off-fence; its WAL
            # handle already moved, so close() cannot touch the log
            await self._run_scoring(blue.close)
            return 200, {
                "status": "swapped",
                "artifact": artifact,
                "epoch": green.registry_epoch,
                "previous_epoch": previous_epoch,
                "records_replayed": replayed,
            }

    async def _handle_restart_shard(self, body, query, ticket):
        """Rebuild one shard worker from its artifact + journal replay."""
        if not getattr(self.service, "is_sharded", False):
            raise _Conflict("not a sharded deployment")
        shard = _require(body, "shard")
        if not isinstance(shard, int):
            raise _BadRequest(f"shard must be an int, got {shard!r}")
        health, epoch = await self._write_call(
            lambda: self.service.restart_shard(shard)
        )
        return 200, {"shard": shard, "health": health, "epoch": epoch}

    async def _handle_candidates(self, body, query, ticket):
        limit = _int_query(query, "limit", 200)

        def build_catalog() -> dict:
            sample: list = []
            for key in self.service.platform_pairs():
                if len(sample) >= limit:
                    break
                for pair in self.service.candidate_pairs(key):
                    if len(sample) >= limit:
                        break
                    sample.append([list(pair[0]), list(pair[1])])
            return {
                "platform_pairs": [list(key) for key in
                                   self.service.platform_pairs()],
                "num_candidates": self.service.num_candidates(),
                "pairs": sample,
            }

        # under the read fence like every other read (a concurrent ingest
        # writer must never be observed mid-mutation) and on the executor
        # so the event loop never blocks on service state
        async with self._fence.read():
            catalog = await self._run_scoring(build_catalog)
            catalog["epoch"] = self.service.registry_epoch
        return 200, catalog

    async def _handle_stats(self, body, query, ticket):
        # service.stats() takes the service's locks; keep that wait off the
        # event loop (a cache fill can hold a cache lock for seconds).  The
        # gateway-side snapshots are loop-owned state and stay here.
        service = self.service  # one resolution: a swap must not mix services
        service_stats = await self._run_scoring(service.stats)
        gateway_stats = {
            "uptime_seconds": (
                time.monotonic() - self._started_at
                if self._started_at is not None else 0.0
            ),
            "draining": self._draining,
            "batcher": self._batcher.snapshot(),
            "admission": self._admission.snapshot(),
        }
        if self._router is not None:
            gateway_stats["replica_router"] = self._router.snapshot()
        if getattr(service, "is_follower", False):
            gateway_stats["follow_errors"] = self._follow_errors
        payload = self._shard_marker({
            "service": service_stats.as_dict(),
            "gateway": gateway_stats,
            "epoch": service.registry_epoch,
        })
        if getattr(service, "is_follower", False):
            payload["replica"] = await self._run_scoring(
                lambda: service.status(poll=False)
            )
        return 200, payload

    async def _handle_replicas(self, body, query, ticket):
        """Replication topology status.

        On a primary with a router: one row per configured follower
        (probed concurrently — a SIGKILLed follower reports
        ``alive: False`` with its last known epoch rather than hanging
        the endpoint) plus router counters.  On a follower: its own
        tailer status (epoch, lag in records and seconds, cursor, pid).
        """
        payload: dict = {"epoch": self.service.registry_epoch,
                         "replicas": []}
        if getattr(self.service, "is_follower", False):
            payload["replica"] = await self._run_scoring(
                self.service.status
            )
        if self._router is not None:
            payload["replicas"] = await asyncio.get_running_loop(
            ).run_in_executor(self._router.executor, self._router.status)
            payload["router"] = self._router.snapshot()
        return 200, payload

    async def _handle_healthz(self, body, query, ticket):
        status = "draining" if self._draining else "ok"
        payload: dict = {
            "status": status,
            "epoch": self.service.registry_epoch,
        }
        if getattr(self.service, "is_follower", False):
            # poll=False: report the frontier the follow loop already
            # knows without racing it for a tail read
            payload["replica"] = await self._run_scoring(
                lambda: self.service.status(poll=False)
            )
        return (503 if self._draining else 200), payload

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._inflight_conns.add(task)
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _MalformedRequest as bad:
                    await _write_response(
                        writer, 400, _error_json("bad_request", str(bad)),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                self._busy_writers.add(writer)
                try:
                    keep_alive = await self._respond(writer, *request)
                finally:
                    self._busy_writers.discard(writer)
                if not keep_alive:
                    break
                if self._draining:
                    # the drain closed idle transports while this request
                    # ran; don't park in readline on a dying gateway
                    break
        except (
            ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError
        ):
            pass
        finally:
            self._inflight_conns.discard(task)
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _respond(self, writer, method, path, query, headers, raw_body):
        """Route one parsed request; returns whether to keep the connection."""
        keep_alive = headers.get("connection", "keep-alive") != "close"
        endpoint = f"{method} {path}"
        handler = self._routes.get((method, path))
        if handler is None:
            await _write_response(
                writer, 404,
                _error_json("not_found", f"no route for {endpoint}"),
                keep_alive,
            )
            return keep_alive
        if self._draining and path != "/healthz":
            await _write_response(
                writer, 503,
                _error_json("draining", "gateway is shutting down"),
                keep_alive=False,  # header must match the close below
                retry_after=self.config.retry_after_seconds,
            )
            return False
        try:
            body = json.loads(raw_body) if raw_body else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            await _write_response(
                writer, 400,
                _error_json("bad_json", "request body is not valid JSON"),
                keep_alive,
            )
            return keep_alive
        if not isinstance(body, dict):
            await _write_response(
                writer, 400,
                _error_json("bad_json", "request body must be a JSON object"),
                keep_alive,
            )
            return keep_alive

        deadline_ms = None
        if _DEADLINE_HEADER in headers:
            try:
                deadline_ms = float(headers[_DEADLINE_HEADER])
            except ValueError:
                await _write_response(
                    writer, 400,
                    _error_json(
                        "bad_deadline",
                        f"{_DEADLINE_HEADER} must be a number",
                    ),
                    keep_alive,
                )
                return keep_alive
        if _MIN_EPOCH_HEADER in headers:
            # surface the freshness floor to handlers through the query
            # dict (same string-typed channel either way); the header
            # wins over a query parameter
            if not headers[_MIN_EPOCH_HEADER].lstrip("-").isdigit():
                await _write_response(
                    writer, 400,
                    _error_json(
                        "bad_min_epoch",
                        f"{_MIN_EPOCH_HEADER} must be an integer",
                    ),
                    keep_alive,
                )
                return keep_alive
            query = dict(query)
            query["min_epoch"] = headers[_MIN_EPOCH_HEADER]
        try:
            ticket = self._admission.admit(endpoint, deadline_ms)
        except GatewayRejected as rejected:
            await _write_response(
                writer, rejected.status,
                _error_json(rejected.code, rejected.message),
                keep_alive, retry_after=rejected.retry_after,
            )
            return keep_alive

        rejected_after_admit = False
        retry_after = None
        status, payload = 500, _error_json("internal_error", "not handled")
        try:
            status, payload = await handler(body, query, ticket)
        except GatewayRejected as rejected:  # deadline expired in queue
            rejected_after_admit = True
            self._admission.release_rejected(ticket)
            await _write_response(
                writer, rejected.status,
                _error_json(rejected.code, rejected.message),
                keep_alive, retry_after=rejected.retry_after,
            )
            return keep_alive
        except _BadRequest as bad:
            status, payload = 400, _error_json("bad_request", str(bad))
        except _Conflict as conflict:
            status, payload = 409, _error_json("conflict", str(conflict))
        except _Stale as stale:
            # the client's min_epoch floor: a replicated client retries
            # against the primary, which is never stale
            status, payload = 412, _error_json("stale_replica", str(stale))
        except ShardUnavailableError as down:
            # the write's owner shard is down: recoverable via
            # /shards/restart, so tell the client to come back
            status = 503
            payload = _error_json("shard_unavailable", str(down))
            payload["shards_unavailable"] = down.shards
            retry_after = self.config.retry_after_seconds
        except KeyError as missing:
            status, payload = 404, _error_json(
                "not_found", str(missing.args[0] if missing.args else missing)
            )
        except ValueError as invalid:
            status, payload = 400, _error_json("bad_request", str(invalid))
        except Exception as exc:  # pragma: no cover - defensive
            status, payload = 500, _error_json(
                "internal_error", f"{type(exc).__name__}: {exc}"
            )
        finally:
            if not rejected_after_admit:
                # 4xx/5xx after admission are errors; 2xx complete cleanly
                self._admission.complete(ticket, error="error" in payload)
        await _write_response(
            writer, status, payload, keep_alive, retry_after=retry_after
        )
        return keep_alive


# ----------------------------------------------------------------------
# request/response helpers
# ----------------------------------------------------------------------
class _BadRequest(Exception):
    """Malformed request payload -> HTTP 400."""


class _Conflict(Exception):
    """A swap that cannot proceed right now -> HTTP 409."""


class _Stale(Exception):
    """A read's X-Min-Epoch floor cannot be met here -> HTTP 412."""


class _MalformedRequest(Exception):
    """Unparseable HTTP framing -> 400 and close the connection."""


def _error_json(code: str, message: str) -> dict:
    return {"error": {"code": code, "message": message}}


def _require(body: dict, key: str):
    if key not in body:
        raise _BadRequest(f"missing required field {key!r}")
    return body[key]


def _require_query(query: dict, key: str) -> str:
    if key not in query:
        raise _BadRequest(f"missing required query parameter {key!r}")
    return query[key]


def _int_query(query: dict, key: str, default: int) -> int:
    if key not in query:
        return default
    try:
        return int(query[key])
    except ValueError:
        raise _BadRequest(f"query parameter {key!r} must be an int") from None


def _opt_int_query(query: dict, key: str) -> int | None:
    if key not in query:
        return None
    try:
        return int(query[key])
    except ValueError:
        raise _BadRequest(f"query parameter {key!r} must be an int") from None


def _bool_query(query: dict, key: str, default: bool) -> bool:
    if key not in query:
        return default
    value = query[key].lower()
    if value in ("true", "1"):
        return True
    if value in ("false", "0"):
        return False
    raise _BadRequest(f"query parameter {key!r} must be true or false")


def _parse_ref(raw) -> tuple[str, str]:
    if (
        not isinstance(raw, (list, tuple))
        or len(raw) != 2
        or not all(isinstance(part, str) for part in raw)
    ):
        raise _BadRequest(
            f"account ref must be [platform, account_id], got {raw!r}"
        )
    return (raw[0], raw[1])


def _parse_pairs(raw) -> list:
    if not isinstance(raw, list):
        raise _BadRequest("pairs must be a list of [left_ref, right_ref]")
    pairs = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise _BadRequest(
                f"each pair must be [left_ref, right_ref], got {item!r}"
            )
        pairs.append((_parse_ref(item[0]), _parse_ref(item[1])))
    return pairs


def _link_json(link) -> dict:
    distance = link.behavior_distance
    return {
        "pair": [list(link.pair[0]), list(link.pair[1])],
        "score": link.score,
        "evidence": sorted(link.evidence),
        # a degraded sharded read can lose the owner mid-flight: the score
        # is already computed but the distance probe fails -> null
        "behavior_distance": None if distance != distance else distance,
    }


async def _read_request(reader):
    """Parse one HTTP/1.1 request; None on a cleanly closed connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line or request_line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, _version = request_line.decode("ascii").split()
    except (ValueError, UnicodeDecodeError):
        raise _MalformedRequest("unparseable request line") from None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _MalformedRequest("Content-Length must be an integer") from None
    if not 0 <= length <= _MAX_BODY_BYTES:
        raise _MalformedRequest(
            f"Content-Length must be within [0, {_MAX_BODY_BYTES}]"
        ) from None
    body = await reader.readexactly(length) if length else b""
    parsed = urllib.parse.urlsplit(target)
    query = {
        key: values[-1]
        for key, values in urllib.parse.parse_qs(parsed.query).items()
    }
    return method.upper(), parsed.path, query, headers, body


async def _write_response(
    writer, status, payload, keep_alive, *, retry_after=None
):
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               409: "Conflict", 412: "Precondition Failed",
               429: "Too Many Requests",
               500: "Internal Server Error", 503: "Service Unavailable"}
    data = json.dumps(payload).encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(data)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if retry_after is not None:
        head.append(f"Retry-After: {max(retry_after, 0.0):.3f}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii") + data)
    await writer.drain()


# ----------------------------------------------------------------------
# background hosting (tests, examples, the load harness)
# ----------------------------------------------------------------------
class GatewayThread:
    """Host a gateway on a dedicated event-loop thread.

    The pattern every non-CLI consumer needs: stand a gateway up next to
    synchronous code (a test, an example, the load generator), talk to it
    over HTTP, tear it down deterministically::

        with GatewayThread(service, GatewayConfig()) as gateway:
            client = GatewayClient(gateway.host, gateway.port)
            ...

    ``start`` blocks until the port is bound; ``stop`` runs the gateway's
    graceful shutdown on its loop and joins the thread.
    """

    def __init__(
        self, service: LinkageService, config: GatewayConfig | None = None
    ):
        self._gateway = LinkageGateway(service, config)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self._gateway.config.host

    @property
    def port(self) -> int:
        if self._gateway.port is None:
            raise RuntimeError("gateway thread is not started")
        return self._gateway.port

    @property
    def gateway(self) -> LinkageGateway:
        return self._gateway

    def start(self) -> "GatewayThread":
        if self._thread is not None:
            raise RuntimeError("gateway thread already started")
        self._thread = threading.Thread(
            target=self._run, name="gateway-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self._gateway.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop_event.wait()
        await self._gateway.stop()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "GatewayThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
