"""A pure-stdlib blocking client for the linkage gateway.

:class:`GatewayClient` wraps one persistent ``http.client`` keep-alive
connection and mirrors the gateway's endpoints as typed methods.  HTTP
errors surface as :class:`GatewayError` carrying the status code, the
structured error slug from the JSON body, and the server's ``Retry-After``
hint — the load generator keys its backpressure accounting off exactly
these fields.

A client instance is **not** thread-safe (``http.client`` connections are
serial); concurrent callers each construct their own — cheap, since the
TCP connect happens lazily on first use and is reused afterwards.
"""

from __future__ import annotations

import http.client
import json
import socket
import urllib.parse

__all__ = ["GatewayClient", "GatewayError"]


class GatewayError(RuntimeError):
    """A non-2xx gateway response, decoded from the structured JSON error."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
    ):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after

    @property
    def is_backpressure(self) -> bool:
        """Whether retrying later is the intended reaction (429/503)."""
        return self.status in (429, 503)


class GatewayClient:
    """Blocking JSON client over one keep-alive connection.

    Parameters
    ----------
    host, port:
        The gateway's bound address (see
        :class:`~repro.gateway.server.GatewayThread` / ``repro serve``).
    timeout:
        Socket timeout in seconds for connect and each response.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # endpoint methods
    # ------------------------------------------------------------------
    def score_pairs(
        self,
        pairs: list,
        *,
        batch_size: int | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """``POST /score_pairs`` — decision values for a pair batch."""
        body: dict = {"pairs": [[list(a), list(b)] for a, b in pairs]}
        if batch_size is not None:
            body["batch_size"] = batch_size
        return self._request(
            "POST", "/score_pairs", body, deadline_ms=deadline_ms
        )

    def top_k(
        self,
        platform_a: str,
        platform_b: str,
        k: int = 10,
        *,
        deadline_ms: float | None = None,
    ) -> dict:
        """``GET /top_k`` — strongest links of one platform pair."""
        params = urllib.parse.urlencode(
            {"platform_a": platform_a, "platform_b": platform_b, "k": k}
        )
        return self._request(
            "GET", f"/top_k?{params}", None, deadline_ms=deadline_ms
        )

    def link_account(
        self,
        platform: str,
        account_id: str,
        *,
        other_platform: str | None = None,
        top: int = 5,
        deadline_ms: float | None = None,
    ) -> dict:
        """``POST /link_account`` — resolve one account."""
        body: dict = {"platform": platform, "account_id": account_id,
                      "top": top}
        if other_platform is not None:
            body["other_platform"] = other_platform
        return self._request(
            "POST", "/link_account", body, deadline_ms=deadline_ms
        )

    def ingest(self, refs: list, *, score: bool = True) -> dict:
        """``POST /ingest`` — absorb world-registered accounts."""
        return self._request(
            "POST", "/ingest",
            {"refs": [list(ref) for ref in refs], "score": score},
        )

    def remove_account(self, ref) -> dict:
        """``DELETE /account`` — withdraw one account from serving."""
        return self._request("DELETE", "/account", {"ref": list(ref)})

    def candidates(self, limit: int = 200) -> dict:
        """``GET /candidates`` — workload seed material for loadgen."""
        params = urllib.parse.urlencode({"limit": limit})
        return self._request("GET", f"/candidates?{params}", None)

    def stats(self) -> dict:
        """``GET /stats`` — service + gateway counters and histograms."""
        return self._request("GET", "/stats", None)

    def healthz(self) -> dict:
        """``GET /healthz`` — liveness and registry epoch."""
        return self._request("GET", "/healthz", None)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None,
        *,
        deadline_ms: float | None = None,
        _retried: bool = False,
    ) -> dict:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"}
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = f"{deadline_ms:g}"
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
        except socket.timeout:
            # the server may have executed the request and answered late —
            # retrying would double-apply mutations (POST /ingest, DELETE);
            # surface the timeout and let the caller decide
            self.close()
            raise
        except (
            http.client.RemoteDisconnected,
            ConnectionError,
            BrokenPipeError,
        ):
            # a dropped connection cannot tell us whether the server
            # executed the request before losing the socket, so only
            # idempotent GETs are retried (usually a stale keep-alive
            # connection); a mutation's failure must surface to the caller
            self.close()
            if _retried or method != "GET":
                raise
            return self._request(
                method, path, body, deadline_ms=deadline_ms, _retried=True
            )
        try:
            decoded = json.loads(data) if data else {}
        except json.JSONDecodeError:
            decoded = {}
        if response.status >= 400:
            error = (
                decoded.get("error", {}) if isinstance(decoded, dict) else {}
            )
            retry_after = response.getheader("Retry-After")
            raise GatewayError(
                response.status,
                error.get("code", "http_error"),
                error.get("message", data.decode("utf-8", "replace")),
                retry_after=(
                    float(retry_after) if retry_after is not None else None
                ),
            )
        return decoded

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
