"""A pure-stdlib blocking client for the linkage gateway.

:class:`GatewayClient` wraps one persistent ``http.client`` keep-alive
connection and mirrors the gateway's endpoints as typed methods.  HTTP
errors surface as :class:`GatewayError` carrying the status code, the
structured error slug from the JSON body, and the server's ``Retry-After``
hint — the load generator keys its backpressure accounting off exactly
these fields.

Retry policy — bounded exponential backoff with jitter, two triggers:

* **dropped keep-alive connections** retry idempotent GETs only: the
  socket cannot tell us whether the server executed the request, and a
  replayed mutation would double-apply;
* **429 admission rejections** (``retry_backpressure=True``) retry *any*
  method, honoring the server's ``Retry-After`` hint as the floor of the
  jittered delay — safe even for ``POST /ingest``, because admission
  rejects a request *before* it executes.  This is what lets the chaos
  and swap harnesses treat backpressure as flow control rather than
  failure.

Every retry increments :attr:`GatewayClient.retries`; the load generator
reads the deltas to report per-operation retry counts.

A client instance is **not** thread-safe (``http.client`` connections are
serial); concurrent callers each construct their own — cheap, since the
TCP connect happens lazily on first use and is reused afterwards.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import urllib.parse

__all__ = ["GatewayClient", "GatewayError"]


class GatewayError(RuntimeError):
    """A non-2xx gateway response, decoded from the structured JSON error."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
    ):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after

    @property
    def is_backpressure(self) -> bool:
        """Whether retrying later is the intended reaction (429/503)."""
        return self.status in (429, 503)


class GatewayClient:
    """Blocking JSON client over one keep-alive connection.

    Parameters
    ----------
    host, port:
        The gateway's bound address (see
        :class:`~repro.gateway.server.GatewayThread` / ``repro serve``).
    timeout:
        Socket timeout in seconds for connect and each response.
    max_attempts:
        Total tries per request (first attempt + retries).
    backoff_base, backoff_cap:
        Exponential backoff schedule in seconds: attempt ``n`` sleeps
        ``min(cap, base * 2**(n-1))`` scaled by uniform jitter in
        ``[0.5, 1.5)``; a 429's ``Retry-After`` floors the delay.
    retry_backpressure:
        Retry 429 admission rejections (any method — see the module
        docstring).  Off by default so interactive callers and the
        admission tests see rejections immediately.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        max_attempts: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_backpressure: bool = False,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise ValueError(
                f"need 0 < backoff_base <= backoff_cap, got "
                f"{backoff_base} / {backoff_cap}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_backpressure = retry_backpressure
        #: total retries this client performed (reconnects + 429 backoff)
        self.retries = 0
        self._rng = random.Random()
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # endpoint methods
    # ------------------------------------------------------------------
    def score_pairs(
        self,
        pairs: list,
        *,
        batch_size: int | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """``POST /score_pairs`` — decision values for a pair batch."""
        body: dict = {"pairs": [[list(a), list(b)] for a, b in pairs]}
        if batch_size is not None:
            body["batch_size"] = batch_size
        return self._request(
            "POST", "/score_pairs", body, deadline_ms=deadline_ms
        )

    def top_k(
        self,
        platform_a: str,
        platform_b: str,
        k: int = 10,
        *,
        exact: bool = True,
        budget: int | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """``GET /top_k`` — strongest links of one platform pair.

        ``exact=False`` requests the approximate path (``?exact=false``,
        optionally ``&budget=N``): the ranking cutoff is approximate but
        returned scores are exact.
        """
        query: dict = {
            "platform_a": platform_a, "platform_b": platform_b, "k": k,
        }
        if not exact:
            query["exact"] = "false"
        if budget is not None:
            query["budget"] = budget
        params = urllib.parse.urlencode(query)
        return self._request(
            "GET", f"/top_k?{params}", None, deadline_ms=deadline_ms
        )

    def link_account(
        self,
        platform: str,
        account_id: str,
        *,
        other_platform: str | None = None,
        top: int = 5,
        exact: bool = True,
        budget: int | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """``POST /link_account`` — resolve one account.

        ``exact=False`` requests the approximate path (see :meth:`top_k`).
        """
        body: dict = {"platform": platform, "account_id": account_id,
                      "top": top}
        if other_platform is not None:
            body["other_platform"] = other_platform
        if not exact:
            body["exact"] = False
        if budget is not None:
            body["budget"] = budget
        return self._request(
            "POST", "/link_account", body, deadline_ms=deadline_ms
        )

    def ingest(
        self, refs: list, *, accounts: list | None = None, score: bool = True
    ) -> dict:
        """``POST /ingest`` — absorb accounts into the running service.

        ``accounts`` optionally carries inline account payloads (the
        JSON form of :func:`repro.wal.payload.payload_to_json`) for refs
        the server's world has never seen; omit it for accounts already
        registered server-side.
        """
        body: dict = {"refs": [list(ref) for ref in refs], "score": score}
        if accounts is not None:
            body["accounts"] = accounts
        return self._request("POST", "/ingest", body)

    def remove_account(self, ref) -> dict:
        """``DELETE /account`` — withdraw one account from serving."""
        return self._request("DELETE", "/account", {"ref": list(ref)})

    def swap(self, artifact: str, *, since_epoch: int | None = None) -> dict:
        """``POST /swap`` — blue/green cutover to a refit artifact."""
        body: dict = {"artifact": str(artifact)}
        if since_epoch is not None:
            body["since_epoch"] = since_epoch
        return self._request("POST", "/swap", body)

    def restart_shard(self, shard: int) -> dict:
        """``POST /shards/restart`` — revive one shard of a sharded tier."""
        return self._request("POST", "/shards/restart", {"shard": shard})

    def candidates(self, limit: int = 200) -> dict:
        """``GET /candidates`` — workload seed material for loadgen."""
        params = urllib.parse.urlencode({"limit": limit})
        return self._request("GET", f"/candidates?{params}", None)

    def stats(self) -> dict:
        """``GET /stats`` — service + gateway counters and histograms."""
        return self._request("GET", "/stats", None)

    def healthz(self) -> dict:
        """``GET /healthz`` — liveness and registry epoch."""
        return self._request("GET", "/healthz", None)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _backoff(self, attempt: int, retry_after: float | None) -> None:
        """Sleep the jittered exponential delay before retry ``attempt``."""
        delay = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
        delay *= 0.5 + self._rng.random()  # jitter in [0.5x, 1.5x)
        if retry_after is not None:
            delay = max(delay, retry_after)  # the server's hint is a floor
        time.sleep(delay)

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None,
        *,
        deadline_ms: float | None = None,
    ) -> dict:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"}
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = f"{deadline_ms:g}"
        attempt = 1
        while True:
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except socket.timeout:
                # the server may have executed the request and answered
                # late — retrying would double-apply mutations (POST
                # /ingest, DELETE); surface the timeout, caller decides
                self.close()
                raise
            except (
                http.client.RemoteDisconnected,
                ConnectionError,
                BrokenPipeError,
            ):
                # a dropped connection cannot tell us whether the server
                # executed the request before losing the socket, so only
                # idempotent GETs are retried (usually a stale keep-alive
                # connection); a mutation's failure surfaces to the caller
                self.close()
                if method != "GET" or attempt >= self.max_attempts:
                    raise
                self.retries += 1
                self._backoff(attempt, None)
                attempt += 1
                continue
            try:
                decoded = json.loads(data) if data else {}
            except json.JSONDecodeError:
                decoded = {}
            if response.status >= 400:
                error = (
                    decoded.get("error", {})
                    if isinstance(decoded, dict) else {}
                )
                retry_after = response.getheader("Retry-After")
                gateway_error = GatewayError(
                    response.status,
                    error.get("code", "http_error"),
                    error.get("message", data.decode("utf-8", "replace")),
                    retry_after=(
                        float(retry_after) if retry_after is not None
                        else None
                    ),
                )
                if (
                    gateway_error.status == 429
                    and self.retry_backpressure
                    and attempt < self.max_attempts
                ):
                    # admission rejects *before* execution, so retrying a
                    # mutation cannot double-apply it
                    self.retries += 1
                    self._backoff(attempt, gateway_error.retry_after)
                    attempt += 1
                    continue
                raise gateway_error
            return decoded

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
