"""A pure-stdlib blocking client for the linkage gateway.

:class:`GatewayClient` wraps persistent ``http.client`` keep-alive
connections and mirrors the gateway's endpoints as typed methods.  HTTP
errors surface as :class:`GatewayError` carrying the status code, the
structured error slug from the JSON body, and the server's ``Retry-After``
hint — the load generator keys its backpressure accounting off exactly
these fields.

Retry policy — bounded exponential backoff with jitter, two triggers:

* **dropped keep-alive connections** retry idempotent GETs only: the
  socket cannot tell us whether the server executed the request, and a
  replayed mutation would double-apply;
* **429 admission rejections** (``retry_backpressure=True``) retry *any*
  method, honoring the server's ``Retry-After`` hint as the floor of the
  jittered delay — safe even for ``POST /ingest``, because admission
  rejects a request *before* it executes.  This is what lets the chaos
  and swap harnesses treat backpressure as flow control rather than
  failure.

With ``read_endpoints`` configured (a replicated topology —
:mod:`repro.replica`), GETs stick to one endpoint for keep-alive reuse
but **fail over to the next endpoint immediately** when a connection
drops, before any backoff sleep; only after a full fruitless cycle
through every endpoint does the normal backoff schedule engage.
Mutations always go to the primary (the constructor's ``host:port``).

Freshness: reads accept ``min_epoch`` (sent as the ``X-Min-Epoch``
header) — the server answers from state at least that new or returns
412, and the client retries a 412 against the primary, which is never
stale.  :attr:`last_write_epoch` tracks the newest epoch this client's
own writes were acknowledged at; pass it back as ``min_epoch`` for
read-your-writes.

Every retry increments :attr:`GatewayClient.retries`; the load generator
reads the deltas to report per-operation retry counts.

A client instance is **not** thread-safe (``http.client`` connections are
serial); concurrent callers each construct their own — cheap, since the
TCP connect happens lazily on first use and is reused afterwards.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import urllib.parse

__all__ = ["GatewayClient", "GatewayError"]


class GatewayError(RuntimeError):
    """A non-2xx gateway response, decoded from the structured JSON error."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
    ):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after

    @property
    def is_backpressure(self) -> bool:
        """Whether retrying later is the intended reaction (429/503)."""
        return self.status in (429, 503)


def parse_endpoint(spec: str) -> tuple[str, int]:
    """Parse a ``host:port`` endpoint spec (IPv6 hosts in brackets)."""
    host, sep, port = spec.strip().rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected host:port, got {spec!r}")
    return host.strip("[]") or "127.0.0.1", int(port)


class GatewayClient:
    """Blocking JSON client over keep-alive connections.

    Parameters
    ----------
    host, port:
        The gateway's bound address (see
        :class:`~repro.gateway.server.GatewayThread` / ``repro serve``).
        Always the target of mutations; endpoint 0 for reads.
    timeout:
        Socket timeout in seconds for connect and each response.
    max_attempts:
        Total tries per request (first attempt + retries).  With read
        endpoints, one "try" is a full failover cycle through every
        endpoint.
    backoff_base, backoff_cap:
        Exponential backoff schedule in seconds: attempt ``n`` sleeps
        ``min(cap, base * 2**(n-1))`` scaled by uniform jitter in
        ``[0.5, 1.5)``; a 429's ``Retry-After`` floors the delay.
    retry_backpressure:
        Retry 429 admission rejections (any method — see the module
        docstring).  Off by default so interactive callers and the
        admission tests see rejections immediately.
    read_endpoints:
        Additional gateway addresses (``(host, port)`` tuples or
        ``"host:port"`` strings — follower replicas) eligible to serve
        this client's GETs.  Reads stick to one endpoint and fail over
        on connection drops.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        max_attempts: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_backpressure: bool = False,
        read_endpoints=(),
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise ValueError(
                f"need 0 < backoff_base <= backoff_cap, got "
                f"{backoff_base} / {backoff_cap}"
            )
        self.host = host
        self.port = port
        self.endpoints: list[tuple[str, int]] = [(host, port)]
        for spec in read_endpoints:
            self.endpoints.append(
                parse_endpoint(spec) if isinstance(spec, str)
                else (spec[0], int(spec[1]))
            )
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_backpressure = retry_backpressure
        #: total retries this client performed (reconnects, failovers,
        #: 429 backoff)
        self.retries = 0
        #: newest registry epoch a mutation by this client was acked at
        self.last_write_epoch = 0
        self._rng = random.Random()
        self._read_index = 0  # sticky read endpoint (0 == primary)
        self._conns: dict[int, http.client.HTTPConnection] = {}

    # ------------------------------------------------------------------
    # endpoint methods
    # ------------------------------------------------------------------
    def score_pairs(
        self,
        pairs: list,
        *,
        batch_size: int | None = None,
        deadline_ms: float | None = None,
        min_epoch: int | None = None,
    ) -> dict:
        """``POST /score_pairs`` — decision values for a pair batch."""
        body: dict = {"pairs": [[list(a), list(b)] for a, b in pairs]}
        if batch_size is not None:
            body["batch_size"] = batch_size
        return self._request(
            "POST", "/score_pairs", body,
            deadline_ms=deadline_ms, min_epoch=min_epoch,
        )

    def top_k(
        self,
        platform_a: str,
        platform_b: str,
        k: int = 10,
        *,
        exact: bool = True,
        budget: int | None = None,
        deadline_ms: float | None = None,
        min_epoch: int | None = None,
    ) -> dict:
        """``GET /top_k`` — strongest links of one platform pair.

        ``exact=False`` requests the approximate path (``?exact=false``,
        optionally ``&budget=N``): the ranking cutoff is approximate but
        returned scores are exact.
        """
        query: dict = {
            "platform_a": platform_a, "platform_b": platform_b, "k": k,
        }
        if not exact:
            query["exact"] = "false"
        if budget is not None:
            query["budget"] = budget
        params = urllib.parse.urlencode(query)
        return self._request(
            "GET", f"/top_k?{params}", None,
            deadline_ms=deadline_ms, min_epoch=min_epoch,
        )

    def link_account(
        self,
        platform: str,
        account_id: str,
        *,
        other_platform: str | None = None,
        top: int = 5,
        exact: bool = True,
        budget: int | None = None,
        deadline_ms: float | None = None,
        min_epoch: int | None = None,
    ) -> dict:
        """``POST /link_account`` — resolve one account.

        ``exact=False`` requests the approximate path (see :meth:`top_k`).
        """
        body: dict = {"platform": platform, "account_id": account_id,
                      "top": top}
        if other_platform is not None:
            body["other_platform"] = other_platform
        if not exact:
            body["exact"] = False
        if budget is not None:
            body["budget"] = budget
        return self._request(
            "POST", "/link_account", body,
            deadline_ms=deadline_ms, min_epoch=min_epoch,
        )

    def ingest(
        self, refs: list, *, accounts: list | None = None, score: bool = True
    ) -> dict:
        """``POST /ingest`` — absorb accounts into the running service.

        ``accounts`` optionally carries inline account payloads (the
        JSON form of :func:`repro.wal.payload.payload_to_json`) for refs
        the server's world has never seen; omit it for accounts already
        registered server-side.
        """
        body: dict = {"refs": [list(ref) for ref in refs], "score": score}
        if accounts is not None:
            body["accounts"] = accounts
        return self._track_write(self._request("POST", "/ingest", body))

    def remove_account(self, ref) -> dict:
        """``DELETE /account`` — withdraw one account from serving."""
        return self._track_write(
            self._request("DELETE", "/account", {"ref": list(ref)})
        )

    def swap(self, artifact: str, *, since_epoch: int | None = None) -> dict:
        """``POST /swap`` — blue/green cutover to a refit artifact."""
        body: dict = {"artifact": str(artifact)}
        if since_epoch is not None:
            body["since_epoch"] = since_epoch
        return self._track_write(self._request("POST", "/swap", body))

    def restart_shard(self, shard: int) -> dict:
        """``POST /shards/restart`` — revive one shard of a sharded tier."""
        return self._request("POST", "/shards/restart", {"shard": shard})

    def candidates(self, limit: int = 200) -> dict:
        """``GET /candidates`` — workload seed material for loadgen."""
        params = urllib.parse.urlencode({"limit": limit})
        return self._request("GET", f"/candidates?{params}", None)

    def stats(self) -> dict:
        """``GET /stats`` — service + gateway counters and histograms."""
        return self._request("GET", "/stats", None)

    def healthz(self) -> dict:
        """``GET /healthz`` — liveness and registry epoch."""
        return self._request("GET", "/healthz", None)

    def replicas(self) -> dict:
        """``GET /replicas`` — per-follower epoch, lag, and liveness."""
        return self._request("GET", "/replicas", None)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _track_write(self, response: dict) -> dict:
        epoch = response.get("epoch") if isinstance(response, dict) else None
        if isinstance(epoch, int) and epoch > self.last_write_epoch:
            self.last_write_epoch = epoch
        return response

    def _connection(self, index: int) -> http.client.HTTPConnection:
        conn = self._conns.get(index)
        if conn is None:
            host, port = self.endpoints[index]
            conn = http.client.HTTPConnection(
                host, port, timeout=self.timeout
            )
            self._conns[index] = conn
        return conn

    def _close_endpoint(self, index: int) -> None:
        conn = self._conns.pop(index, None)
        if conn is not None:
            conn.close()

    def _backoff(self, attempt: int, retry_after: float | None) -> None:
        """Sleep the jittered exponential delay before retry ``attempt``."""
        delay = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
        delay *= 0.5 + self._rng.random()  # jitter in [0.5x, 1.5x)
        if retry_after is not None:
            delay = max(delay, retry_after)  # the server's hint is a floor
        time.sleep(delay)

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None,
        *,
        deadline_ms: float | None = None,
        min_epoch: int | None = None,
    ) -> dict:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"}
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = f"{deadline_ms:g}"
        if min_epoch is not None:
            headers["X-Min-Epoch"] = str(int(min_epoch))
        # reads spread across endpoints; mutations stay on the primary
        routable = method == "GET" and min_epoch is None
        attempt = 1
        cycle_tried = 0  # endpoints tried since the last backoff sleep
        while True:
            index = self._read_index if routable else 0
            conn = self._connection(index)
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except socket.timeout:
                # the server may have executed the request and answered
                # late — retrying would double-apply mutations (POST
                # /ingest, DELETE); surface the timeout, caller decides
                self._close_endpoint(index)
                raise
            except (
                http.client.RemoteDisconnected,
                ConnectionError,
                BrokenPipeError,
            ):
                # a dropped connection cannot tell us whether the server
                # executed the request before losing the socket, so only
                # idempotent GETs are retried (usually a stale keep-alive
                # connection); a mutation's failure surfaces to the caller
                self._close_endpoint(index)
                if method != "GET":
                    raise
                if routable and len(self.endpoints) > 1:
                    self._read_index = (index + 1) % len(self.endpoints)
                cycle_tried += 1
                if routable and cycle_tried < len(self.endpoints):
                    # fail over to the next endpoint before backing off
                    self.retries += 1
                    continue
                if attempt >= self.max_attempts:
                    raise
                self.retries += 1
                self._backoff(attempt, None)
                attempt += 1
                cycle_tried = 0
                continue
            try:
                decoded = json.loads(data) if data else {}
            except json.JSONDecodeError:
                decoded = {}
            if response.status >= 400:
                error = (
                    decoded.get("error", {})
                    if isinstance(decoded, dict) else {}
                )
                retry_after = response.getheader("Retry-After")
                gateway_error = GatewayError(
                    response.status,
                    error.get("code", "http_error"),
                    error.get("message", data.decode("utf-8", "replace")),
                    retry_after=(
                        float(retry_after) if retry_after is not None
                        else None
                    ),
                )
                if (
                    gateway_error.status == 429
                    and self.retry_backpressure
                    and attempt < self.max_attempts
                ):
                    # admission rejects *before* execution, so retrying a
                    # mutation cannot double-apply it
                    self.retries += 1
                    self._backoff(attempt, gateway_error.retry_after)
                    attempt += 1
                    continue
                raise gateway_error
            return decoded

    def close(self) -> None:
        for index in list(self._conns):
            self._close_endpoint(index)

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
