"""Sharded serving capacity: closed-loop ``score_pairs`` at 1/2/4 shards.

Not a paper figure — this benchmarks the scatter-gather serving tier
(:mod:`repro.shard`): fit once, cut 2- and 4-shard plans from the
artifact, then drive the same request stream through a single-process
:class:`~repro.serving.LinkageService` and through
:class:`~repro.shard.ShardedLinkageService` routers with real worker
processes.  The router's head/featurization split makes every shard
count produce the **same bytes** — the capacity table is only meaningful
because the answers are identical, so bit-parity is asserted
unconditionally, on every host.

Smoke mode (the default, and what CI runs) uses a small world with a
replicated pair workload; scale with ``SHARD_BENCH_PERSONS`` /
``SHARD_BENCH_REQUESTS`` / ``SHARD_BENCH_PAIRS_PER_REQUEST``.  The
≥``SHARD_BENCH_MIN_SPEEDUP`` requests/sec gate at 4 shards is enforced
only when the host actually has ≥4 CPUs (a single-core runner cannot
speed up CPU-bound work, but must still produce identical scores); set
``SHARD_BENCH_MIN_SPEEDUP=0`` to disable.
"""

import itertools
import os
import threading
import time

import numpy as np
from conftest import write_table

from repro.core import HydraLinker
from repro.datagen import WorldConfig, generate_world
from repro.eval.harness import make_label_split
from repro.persist import save_linker
from repro.serving import LinkageService
from repro.shard import ShardedLinkageService, plan_shards, rebalance_plan

SEED = 61
PERSONS = int(os.environ.get("SHARD_BENCH_PERSONS", "14"))
NUM_REQUESTS = int(os.environ.get("SHARD_BENCH_REQUESTS", "12"))
# large enough that per-shard featurization dominates router dispatch and
# IPC — capacity headroom, not just peak single-request speed
PAIRS_PER_REQUEST = int(
    os.environ.get("SHARD_BENCH_PAIRS_PER_REQUEST", "2048")
)
MIN_SPEEDUP = float(os.environ.get("SHARD_BENCH_MIN_SPEEDUP", "1.7"))
SHARD_COUNTS = (2, 4)
BATCH_SIZE = 256
CONCURRENCY = int(os.environ.get("SHARD_BENCH_CONCURRENCY", "1"))
PLATFORM_PAIRS = [("facebook", "twitter")]


def _drive(service, requests):
    """Closed-loop driver: ``CONCURRENCY`` threads drain the request list."""
    latencies: list[float] = []
    lock = threading.Lock()
    pending = itertools.count()

    def work():
        while True:
            index = next(pending)
            if index >= len(requests):
                return
            start = time.perf_counter()
            service.score_pairs(requests[index])
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed * 1000.0)

    threads = [threading.Thread(target=work) for _ in range(CONCURRENCY)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, latencies


def _run(artifact_dir, plan_root):
    world = generate_world(WorldConfig(num_persons=PERSONS, seed=SEED))
    split = make_label_split(world, PLATFORM_PAIRS, seed=SEED)
    linker = HydraLinker(seed=SEED, num_topics=8, max_lda_docs=1500)
    linker.fit(world, split.labeled_positive, split.labeled_negative,
               PLATFORM_PAIRS)
    save_linker(linker, artifact_dir)

    base = linker.candidates_[tuple(PLATFORM_PAIRS[0])].pairs
    repeat = -(-PAIRS_PER_REQUEST // len(base))  # ceil division
    request = (base * repeat)[:PAIRS_PER_REQUEST]
    requests = [request] * NUM_REQUESTS
    key = tuple(PLATFORM_PAIRS[0])

    rows = []
    reference_scores = None
    reference_links = None
    identical = True

    def measure(mode, shards, service):
        nonlocal reference_scores, reference_links, identical
        scores = service.score_pairs(request)  # warmup + parity probe
        links = [
            (link.pair, link.score) for link in service.top_k(*key, 10)
        ]
        if reference_scores is None:
            reference_scores = scores
            reference_links = links
        else:
            identical = identical and np.array_equal(
                reference_scores, scores
            ) and links == reference_links
        wall, latencies = _drive(service, requests)
        rows.append([
            mode, shards, len(requests), wall,
            len(requests) / wall,
            float(np.percentile(latencies, 50)),
            float(np.percentile(latencies, 99)),
        ])

    with LinkageService.from_artifact(
        artifact_dir, batch_size=BATCH_SIZE
    ) as single:
        measure("single", 1, single)
    for shards in SHARD_COUNTS:
        # hash placement is lumpy at smoke scale — rebalance (LPT over
        # per-account pair counts) so the capacity numbers measure the
        # tier, not one overloaded shard
        hashed = plan_root / f"hashed{shards}"
        plan_dir = plan_root / f"plan{shards}"
        plan_shards(artifact_dir, hashed, shards, seed=SEED)
        rebalance_plan(hashed, plan_dir)
        with ShardedLinkageService(
            plan_dir, batch_size=BATCH_SIZE
        ) as router:
            measure("sharded", shards, router)

    baseline = rows[0][4]
    for row in rows:
        row.append(row[4] / baseline)
    return {"rows": rows, "identical": identical}


def test_shard_scaling(once, tmp_path):
    result = once(_run, str(tmp_path / "artifact"), tmp_path)
    rows = result["rows"]
    write_table(
        "shard_scaling",
        f"Sharded serving capacity — scatter-gather score_pairs "
        f"({PERSONS}-person world, {NUM_REQUESTS} requests x "
        f"{PAIRS_PER_REQUEST} pairs, concurrency {CONCURRENCY})",
        ["mode", "shards", "requests", "seconds", "requests_per_sec",
         "p50_ms", "p99_ms", "speedup"],
        rows,
    )
    # the capacity numbers are only comparable because every topology
    # returns the same bytes — never skip this, even on 1-CPU hosts
    assert result["identical"], "shard counts disagreed on scores"
    assert len(rows) == 1 + len(SHARD_COUNTS)
    for _mode, _shards, requests, seconds, rps, p50, p99 in (
        row[:7] for row in rows
    ):
        assert requests == NUM_REQUESTS
        assert seconds > 0 and rps > 0
        assert 0 < p50 <= p99
    top_shards = SHARD_COUNTS[-1]
    if MIN_SPEEDUP > 0 and (os.cpu_count() or 1) >= top_shards:
        top_speedup = rows[-1][7]
        assert top_speedup >= MIN_SPEEDUP, (
            f"{top_shards} shards reached only {top_speedup:.2f}x over "
            f"single-process (need >= {MIN_SPEEDUP}x)"
        )
