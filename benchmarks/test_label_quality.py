"""Section 6 label-collection quality claim.

Paper: "the labeled training pairs collected by our paradigm is much cleaner
(precision over 95 %) than the approach in [16] (precision around 75 %)
where the labeled training pairs are automatically generated based on the
uniqueness (n-gram probability) of user names."

We measure the precision of (a) HYDRA's rule-based pre-matched pairs and
(b) Alias-Disamb's self-labeled pairs against ground truth on the same world,
and assert the ordering plus the >95 % bar for the rule labels.
"""

from conftest import write_table

from repro.baselines import AliasDisambBaseline
from repro.core import CandidateGenerator
from repro.eval.experiments import english_world


def _measure():
    world = english_world(45, seed=200)
    true = {
        (("facebook", a), ("twitter", b))
        for a, b in world.true_pairs("facebook", "twitter")
    }

    candidates = CandidateGenerator().generate(world, "facebook", "twitter")
    prematched = [candidates.pairs[i] for i in candidates.prematched]
    rule_precision = (
        sum(1 for p in prematched if p in true) / len(prematched)
        if prematched else 0.0
    )

    alias = AliasDisambBaseline()
    alias.fit(world, [], [], [("facebook", "twitter")],
              candidates={("facebook", "twitter"): candidates})
    self_labeled = [pair for pair, _ in alias.self_labeled_pairs()]
    alias_precision = (
        sum(1 for p in self_labeled if p in true) / len(self_labeled)
        if self_labeled else 0.0
    )
    return rule_precision, len(prematched), alias_precision, len(self_labeled)


def test_label_collection_quality(once):
    rule_precision, n_rule, alias_precision, n_alias = once(_measure)
    write_table(
        "label_quality",
        "Section 6 — auto-generated training-label precision",
        ["paradigm", "labels", "precision"],
        [
            ["HYDRA rule-based pre-matching", n_rule, rule_precision],
            ["Alias-Disamb username self-labels", n_alias, alias_precision],
        ],
    )
    assert n_rule > 0, "rule pre-matching produced no labels"
    assert rule_precision >= 0.95, "paper: rule labels are >95 % precise"
    assert rule_precision > alias_precision, (
        "rule labels must be cleaner than username self-labels"
    )
