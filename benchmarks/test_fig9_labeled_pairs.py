"""Figure 9: performance vs number of labeled users (Chinese & English).

Paper protocol: fix the labeled:unlabeled ratio at 1:5 and scale the number
of users carrying labels from 1M to 5M; all five methods improve, HYDRA the
fastest, and English (2 platforms) outperforms Chinese (5 platforms).

We scale population size with the same 1:6 label fraction.  Expected shape:
HYDRA-M dominates every baseline at every size; the English data set scores
at least as high as the Chinese one for HYDRA.
"""

from conftest import write_table

from repro.eval.experiments import (
    HARD_WORLD_OVERRIDES,
    chinese_chain_pairs,
    chinese_world,
    default_method_factories,
    english_world,
    run_method_comparison,
)

METHODS = ("HYDRA-M", "SVM-B", "MOBIUS", "Alias-Disamb", "SMaSh")
EN_SIZES = (24, 40, 56)
ZH_SIZES = (14, 22, 30)


def _run_dataset(dataset: str, sizes):
    rows = []
    for size in sizes:
        if dataset == "english":
            world = english_world(size, seed=90 + size, **HARD_WORLD_OVERRIDES)
            platform_pairs = None
        else:
            world = chinese_world(size, seed=90 + size, **HARD_WORLD_OVERRIDES)
            platform_pairs = chinese_chain_pairs()
        results = run_method_comparison(
            world,
            platform_pairs=platform_pairs,
            seed=90 + size,
            methods=default_method_factories(seed=90 + size, include=METHODS),
        )
        for result in results:
            rows.append(
                [dataset, size, result.method,
                 result.metrics.precision, result.metrics.recall]
            )
    return rows


def test_fig9_english(once):
    rows = once(_run_dataset, "english", EN_SIZES)
    write_table(
        "fig9_english",
        "Fig 9(c,d) — precision/recall vs #labeled users (English)",
        ["dataset", "users", "method", "precision", "recall"],
        rows,
    )
    _assert_hydra_wins(rows)


def test_fig9_chinese(once):
    rows = once(_run_dataset, "chinese", ZH_SIZES)
    write_table(
        "fig9_chinese",
        "Fig 9(a,b) — precision/recall vs #labeled users (Chinese)",
        ["dataset", "users", "method", "precision", "recall"],
        rows,
    )
    _assert_hydra_wins(rows)


def _assert_hydra_wins(rows):
    """HYDRA-M must beat every baseline on F1 at the largest size."""
    largest = max(r[1] for r in rows)
    at_largest = {r[2]: (r[3], r[4]) for r in rows if r[1] == largest}

    def f1(pr):
        p, r = pr
        return 2 * p * r / (p + r) if p + r else 0.0

    hydra = f1(at_largest["HYDRA-M"])
    for method, pr in at_largest.items():
        if method != "HYDRA-M":
            assert hydra >= f1(pr) - 1e-9, f"HYDRA-M lost to {method}"
