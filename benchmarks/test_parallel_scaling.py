"""Parallel serving scaling: sharded ``score_pairs`` pairs/sec at 1/2/4 workers.

Not a paper figure — this benchmarks the sharded execution engine
(:mod:`repro.parallel`): fit once, persist the artifact, then serve the same
pair workload through :class:`repro.serving.LinkageService` at several worker
counts.  Each worker process loads the artifact once via its pool
initializer; shard results merge deterministically, so every worker count
must produce the **same bytes** — the scaling table is only meaningful
because the answers are identical.

Smoke mode (the default, and what CI runs) uses a small world and a
replicated candidate workload; scale with ``PARALLEL_BENCH_PERSONS`` /
``PARALLEL_BENCH_PAIRS``.  The ≥``PARALLEL_BENCH_MIN_SPEEDUP`` assertion at
the top worker count is enforced only when the host actually has that many
CPUs (a single-core runner cannot speed up CPU-bound work, but must still
produce identical scores); set ``PARALLEL_BENCH_MIN_SPEEDUP=0`` to disable.
"""

import os
import time

import numpy as np
from conftest import write_table

from repro.core import HydraLinker
from repro.datagen import WorldConfig, generate_world
from repro.eval.harness import make_label_split
from repro.persist import load_linker, save_linker
from repro.serving import LinkageService

PERSONS = int(os.environ.get("PARALLEL_BENCH_PERSONS", "14"))
# large enough that per-shard dispatch overhead is a small fraction of shard
# compute even on modest runners — scaling headroom, not just peak speed
TARGET_PAIRS = int(os.environ.get("PARALLEL_BENCH_PAIRS", "8192"))
MIN_SPEEDUP = float(os.environ.get("PARALLEL_BENCH_MIN_SPEEDUP", "1.7"))
WORKER_COUNTS = (1, 2, 4)
BATCH_SIZE = 256
REPEATS = 3


def _run(artifact_dir):
    world = generate_world(WorldConfig(num_persons=PERSONS, seed=91))
    platform_pairs = [("facebook", "twitter")]
    split = make_label_split(world, platform_pairs, seed=91)
    linker = HydraLinker(seed=91, num_topics=8, max_lda_docs=1500)
    linker.fit(world, split.labeled_positive, split.labeled_negative,
               platform_pairs)
    save_linker(linker, artifact_dir)

    base = linker.candidates_[("facebook", "twitter")].pairs
    repeat = -(-TARGET_PAIRS // len(base))  # ceil division
    workload = (base * repeat)[:TARGET_PAIRS]

    rows = []
    reference = None
    identical = True
    for workers in WORKER_COUNTS:
        with LinkageService(
            load_linker(artifact_dir), workers=workers, batch_size=BATCH_SIZE
        ) as service:
            # warmup: starts the pool, loads the artifact in each worker,
            # and warms the missing-fill memos — steady-state from here
            scores = service.score_pairs(workload)
            best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                scores = service.score_pairs(workload)
                best = min(best, time.perf_counter() - start)
        if reference is None:
            reference = scores
        else:
            identical = identical and np.array_equal(reference, scores)
        rows.append([workers, len(workload), best, len(workload) / best])
    baseline = rows[0][3]
    for row in rows:
        row.append(row[3] / baseline)
    return {"rows": rows, "identical": identical}


def test_parallel_scaling(once, tmp_path):
    result = once(_run, str(tmp_path / "artifact"))
    rows = result["rows"]
    write_table(
        "parallel_scaling",
        f"Parallel serving scaling — sharded score_pairs "
        f"({PERSONS}-person world, {rows[0][1]} pairs)",
        ["workers", "pairs", "best_seconds", "pairs_per_sec", "speedup"],
        rows,
    )
    assert result["identical"], "worker counts disagreed on scores"
    assert len(rows) == len(WORKER_COUNTS)
    for _, num_pairs, seconds, pairs_per_sec, _speedup in rows:
        assert num_pairs == rows[0][1]
        assert seconds > 0
        assert pairs_per_sec > 0
    top_workers = WORKER_COUNTS[-1]
    if MIN_SPEEDUP > 0 and (os.cpu_count() or 1) >= top_workers:
        top_speedup = rows[-1][4]
        assert top_speedup >= MIN_SPEEDUP, (
            f"{top_workers} workers reached only {top_speedup:.2f}x over 1 "
            f"worker (need >= {MIN_SPEEDUP}x)"
        )
