"""Figure 14: total execution time vs number of users, all methods.

Paper: "HYDRA consumes less time than the baseline methods (except SVM-B and
SMaSh) ... the runtime of HYDRA displays a converging tendency", attributed
to the sparsity of the structure consistency matrix and support shrinking.

We time fit + linkage for each method at three population scales.  Absolute
times are machine-specific; the asserted *shape* is that every method
completes and HYDRA's growth between the two largest scales stays within a
polynomial envelope (no blow-up), while Alias-Disamb — which self-generates a
quadratic pair set — grows at least as fast as linearly-behaving methods.
"""

from conftest import write_table

from repro.eval.experiments import (
    HARD_WORLD_OVERRIDES,
    default_method_factories,
    english_world,
    run_method_comparison,
)

METHODS = ("HYDRA-M", "SVM-B", "MOBIUS", "Alias-Disamb", "SMaSh")
SIZES = (16, 28, 40)


def _run():
    rows = []
    times: dict[str, dict[int, float]] = {m: {} for m in METHODS}
    for size in SIZES:
        world = english_world(size, seed=140 + size, **HARD_WORLD_OVERRIDES)
        results = run_method_comparison(
            world,
            seed=140 + size,
            methods=default_method_factories(seed=140 + size, include=METHODS),
        )
        for result in results:
            rows.append([size, result.method, result.seconds,
                         result.metrics.f1])
            times[result.method][size] = result.seconds
    return rows, times


def test_fig14_efficiency(once):
    rows, times = once(_run)
    write_table(
        "fig14_efficiency",
        "Fig 14 — total execution time (s) vs #users (English)",
        ["users", "method", "seconds", "f1"],
        rows,
    )
    lo, mid, hi = SIZES
    for method in METHODS:
        assert times[method][hi] > 0.0
    # HYDRA stays within a cubic envelope of the user scale-up (its dense
    # dual solve is the worst-case O(n^3) component)
    hydra_growth = times["HYDRA-M"][hi] / max(times["HYDRA-M"][lo], 1e-9)
    assert hydra_growth < (hi / lo) ** 3.5, "HYDRA runtime blow-up"
