"""Flatten a benchmark results directory into one trend-friendly JSON doc.

The nightly workflow runs the benchmark suite at larger-than-smoke shapes
and uploads its tables as build artifacts.  Text tables are great for
humans and for the regression gate, but trend tooling wants one flat
document per run — this script reads every ``*.txt`` table and ``*.json``
metric document in a results directory (reusing the regression gate's
parsers, so the two can never disagree about a table's metrics) and
emits::

    {
      "commit": "<sha or null>",
      "run": "<workflow run id or null>",
      "tables": {"shard_scaling": {"requests_per_sec": ..., ...}, ...}
    }

Commit and run id come from the standard GitHub Actions environment when
present; append each nightly's document to a series and every gated
metric becomes a plottable time series.

Usage::

    python benchmarks/collect_trends.py \
        --results benchmarks/results --out trends.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from check_regression import metrics_from_json, metrics_from_table

__all__ = ["collect", "main"]


def collect(results_dir: Path) -> dict:
    """All gated metrics of every table/document under ``results_dir``."""
    tables: dict[str, dict[str, float]] = {}
    for path in sorted(results_dir.glob("*.txt")):
        metrics = metrics_from_table(path.read_text())
        if metrics:
            tables[path.stem] = metrics
    for path in sorted(results_dir.glob("*.json")):
        metrics = metrics_from_json(path.read_text())
        if metrics:
            tables.setdefault(path.stem, {}).update(metrics)
    return {
        "commit": os.environ.get("GITHUB_SHA"),
        "run": os.environ.get("GITHUB_RUN_ID"),
        "tables": tables,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=Path, required=True,
                        help="benchmark results directory to flatten")
    parser.add_argument("--out", type=Path, default=None,
                        help="output file (default: stdout)")
    args = parser.parse_args(argv)
    if not args.results.is_dir():
        print(f"error: {args.results} is not a directory", file=sys.stderr)
        return 2
    document = json.dumps(collect(args.results), indent=2) + "\n"
    if args.out is None:
        sys.stdout.write(document)
    else:
        args.out.write_text(document)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
