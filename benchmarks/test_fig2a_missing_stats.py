"""Figure 2(a): statistics of missing profile information across platforms.

Paper: "At least 80 % of users are missing at least two profile attributes
out of the six most popular ones, and merely 5 % of users have all attributes
filled up", with the dominant patterns enumerated on the x-axis.

This bench generates the 7-platform world and reports (i) the distribution of
missing-attribute counts and (ii) the top missing patterns, checking both
paper claims.
"""

from collections import Counter

from conftest import write_table

from repro.eval.experiments import cross_cultural_world


def _collect_missing_stats(num_persons: int, seed: int):
    world = cross_cultural_world(num_persons, seed=seed)
    count_hist: Counter[int] = Counter()
    pattern_hist: Counter[tuple[str, ...]] = Counter()
    total = 0
    for account in world.iter_accounts():
        missing = account.profile.missing_attributes()
        count_hist[len(missing)] += 1
        pattern_hist[missing] += 1
        total += 1
    return count_hist, pattern_hist, total


def test_fig2a_missing_information(once):
    count_hist, pattern_hist, total = once(_collect_missing_stats, 60, 2)

    rows = [
        [k, count_hist.get(k, 0), 100.0 * count_hist.get(k, 0) / total]
        for k in range(7)
    ]
    write_table(
        "fig2a_missing_counts",
        "Fig 2(a) — users by number of missing profile attributes",
        ["#missing", "users", "percent"],
        rows,
    )
    pattern_rows = [
        ["+".join(p) if p else "none missing", c, 100.0 * c / total]
        for p, c in pattern_hist.most_common(12)
    ]
    write_table(
        "fig2a_missing_patterns",
        "Fig 2(a) — dominant missing-attribute patterns",
        ["pattern", "users", "percent"],
        pattern_rows,
    )

    at_least_two = sum(c for k, c in count_hist.items() if k >= 2) / total
    complete = count_hist.get(0, 0) / total
    assert at_least_two >= 0.75, "paper: at least 80 % missing >= 2 attributes"
    assert complete <= 0.10, "paper: merely 5 % of users complete"
