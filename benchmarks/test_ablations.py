"""Ablations of HYDRA's design choices (DESIGN.md section 5).

* lq-norm pooling order q — mean (q=1) vs the bio-inspired intermediate
  pooling (q=3) vs near-max pooling (q=8) in the multi-resolution sensors;
* multi-scale temporal buckets vs a single coarse scale (Fig 5's ladder);
* dual-model kernel: rbf vs linear vs chi-square (Eqn 12).
"""

import numpy as np
from conftest import write_table

from repro.baselines import SvmBBaseline
from repro.core.moo import MooConfig
from repro.eval import PreparedExperiment
from repro.eval.experiments import (
    HARD_WORLD_OVERRIDES,
    english_world,
    very_hard_world_overrides,
)
from repro.eval.harness import ExperimentHarness
from repro.features.pipeline import FeaturePipeline

SEED = 180


def _pooling_ablation():
    world = english_world(32, seed=SEED, **very_hard_world_overrides())
    harness = ExperimentHarness(world, seed=SEED, label_fraction=0.15)
    rows = []
    for q in (1.0, 3.0, 8.0):
        def factory(q=q):
            return SvmBBaseline(
                seed=SEED,
                pipeline=FeaturePipeline(
                    num_topics=10, max_lda_docs=2500, sensor_q=q, seed=SEED
                ),
            )
        result = harness.run(f"q={q:g}", factory)
        rows.append([f"q={q:g}", result.metrics.precision,
                     result.metrics.recall, result.metrics.f1])
    return rows


def test_ablation_pooling_order(once):
    rows = once(_pooling_ablation)
    write_table(
        "ablation_pooling",
        "Ablation — lq-norm pooling order q in the sensor features",
        ["setting", "precision", "recall", "f1"],
        rows,
    )
    scores = {r[0]: r[3] for r in rows}
    # every pooling order must produce a working model; the intermediate
    # order (the paper's bio-inspired choice) must not be the worst
    assert min(scores.values()) > 0.2
    assert scores["q=3"] >= min(scores.values())


def _multiscale_ablation():
    """Two seeds on the moderately-hard world (the regime the Fig 5/6
    multi-resolution design targets: asynchronous but not noise-swamped)."""
    settings = {
        "multi-scale": dict(
            topic_scales=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
            sensor_scales=(2.0, 4.0, 8.0, 16.0, 32.0),
        ),
        "single-scale": dict(topic_scales=(16.0,), sensor_scales=(16.0,)),
    }
    rows = []
    for seed in (SEED + 1, SEED + 102):
        world = english_world(32, seed=seed, **HARD_WORLD_OVERRIDES)
        harness = ExperimentHarness(world, seed=seed, label_fraction=0.15)
        for name, kwargs in settings.items():
            def factory(kw=kwargs, s=seed):
                return SvmBBaseline(
                    seed=s,
                    pipeline=FeaturePipeline(
                        num_topics=10, max_lda_docs=2500, seed=s, **kw
                    ),
                )
            result = harness.run(name, factory)
            rows.append([seed, name, result.metrics.precision,
                         result.metrics.recall, result.metrics.f1])
    return rows


def test_ablation_multiscale(once):
    rows = once(_multiscale_ablation)
    write_table(
        "ablation_multiscale",
        "Ablation — multi-scale temporal ladder vs one coarse scale (2 seeds)",
        ["seed", "setting", "precision", "recall", "f1"],
        rows,
    )
    def mean(name):
        return sum(r[4] for r in rows if r[1] == name) / sum(
            1 for r in rows if r[1] == name
        )

    # the multi-resolution design is the paper's robustness mechanism for
    # asynchronous behavior; on average it must not lose to a single scale
    assert mean("multi-scale") >= mean("single-scale") - 1e-9


def _kernel_ablation():
    world = english_world(32, seed=SEED + 2, **HARD_WORLD_OVERRIDES)
    prepared = PreparedExperiment(world, seed=SEED + 2)
    rows = []
    for kernel, params in (
        ("rbf", {"gamma": 0.5}),
        ("linear", {}),
        ("chi_square", {}),
    ):
        result = prepared.evaluate_config(
            MooConfig(gamma_l=0.01, gamma_m=100.0, kernel=kernel,
                      kernel_params=params)
        )
        rows.append([kernel, result.metrics.precision,
                     result.metrics.recall, result.metrics.f1])
    return rows


def test_ablation_kernels(once):
    rows = once(_kernel_ablation)
    write_table(
        "ablation_kernels",
        "Ablation — dual-model kernel choice (Eqn 12)",
        ["kernel", "precision", "recall", "f1"],
        rows,
    )
    f1 = np.array([r[3] for r in rows])
    assert (f1 > 0.2).all(), "every kernel must yield a functional model"
