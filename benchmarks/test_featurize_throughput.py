"""Featurization throughput: per-pair reference path vs the batch engine.

Not a paper figure — this benchmarks the PR's hot path in isolation: fit a
feature pipeline once, then measure ``FeaturePipeline.matrix`` pairs/sec for
``engine="reference"`` (one ``pair_vector`` call per pair) against
``engine="batch"`` (the packed-store, array-at-a-time engine) on the same
pair workload.  The two paths emit bit-identical matrices (asserted here as
well as in the tier-1 parity tests), so the table is a pure apples-to-apples
speed comparison.

Smoke mode (the default, and what CI runs) uses a small world; set
``FEATURIZE_BENCH_PERSONS`` / ``FEATURIZE_BENCH_PAIRS`` to scale up for real
capacity measurements.
"""

import os
import time

import numpy as np

from conftest import write_table

from repro.datagen import WorldConfig, generate_world
from repro.features import FeaturePipeline

PERSONS = int(os.environ.get("FEATURIZE_BENCH_PERSONS", "18"))
NUM_PAIRS = int(os.environ.get("FEATURIZE_BENCH_PAIRS", "1200"))
REPEATS = 3


def _workload(pipeline) -> list:
    """True pairs plus random cross-platform pairs, NUM_PAIRS total."""
    refs = sorted(pipeline._cache)
    left = [r for r in refs if r[0] == "facebook"]
    right = [r for r in refs if r[0] == "twitter"]
    rng = np.random.default_rng(PERSONS)
    pairs = []
    while len(pairs) < NUM_PAIRS:
        pairs.append(
            (
                left[int(rng.integers(len(left)))],
                right[int(rng.integers(len(right)))],
            )
        )
    return pairs


def _best_seconds(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run():
    world = generate_world(WorldConfig(num_persons=PERSONS, seed=77))
    true = [
        (("facebook", a), ("twitter", b))
        for a, b in world.true_pairs("facebook", "twitter")
    ]
    pipeline = FeaturePipeline(num_topics=8, max_lda_docs=1500, seed=77)
    pipeline.fit(world, true[:6], [(true[0][0], true[2][1])])
    pairs = _workload(pipeline)

    reference = pipeline.matrix(pairs, engine="reference")
    batch = pipeline.matrix(pairs, engine="batch")
    assert np.array_equal(reference, batch, equal_nan=True)  # same vectors

    ref_seconds = _best_seconds(
        lambda: pipeline.matrix(pairs, engine="reference"), repeats=1
    )
    batch_seconds = _best_seconds(lambda: pipeline.matrix(pairs, engine="batch"))
    speedup = ref_seconds / batch_seconds
    return [
        ["reference", len(pairs), ref_seconds, len(pairs) / ref_seconds, 1.0],
        ["batch", len(pairs), batch_seconds, len(pairs) / batch_seconds, speedup],
    ]


def test_featurize_throughput(once):
    rows = once(_run)
    write_table(
        "featurize_throughput",
        f"Featurization throughput — per-pair vs batch engine "
        f"({PERSONS}-person world, {NUM_PAIRS} pairs)",
        ["path", "pairs", "best_seconds", "pairs_per_sec", "speedup"],
        rows,
    )
    reference_row, batch_row = rows
    assert reference_row[3] > 0
    assert batch_row[3] > reference_row[3]  # batch must win outright
    # the acceptance bar is 10x; leave slack for noisy CI runners while still
    # catching any regression that degrades the engine to per-pair speeds
    assert batch_row[4] >= 5.0
