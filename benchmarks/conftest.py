"""Benchmark infrastructure: result tables are written to
``benchmarks/results/`` so every figure's reproduction is inspectable after a
``pytest benchmarks/ --benchmark-only`` run (stdout is captured by pytest, the
files are not).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def write_table(name: str, title: str, headers: list[str], rows: list[list]) -> str:
    """Render an aligned text table, save it, and return it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    widths = [
        max(len(str(h)), *(len(_fmt(row[i])) for row in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths))
        )
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{text}")
    return text


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The experiments are seconds-to-minutes long; default calibration would
    re-run them dozens of times.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
