"""Serving-layer throughput: batched scoring in pairs/sec.

Not a paper figure — this benchmarks the PR's query path: fit once, persist
the artifact, reload it through :class:`repro.serving.LinkageService`, and
measure `score_pairs` throughput at several featurization batch sizes.

Smoke mode (the default, and what CI runs) uses a small world so the whole
benchmark stays under a minute; set ``SERVE_BENCH_PERSONS`` to scale the
workload up for real capacity measurements.
"""

import os

from conftest import write_table

from repro.core import HydraLinker
from repro.datagen import WorldConfig, generate_world
from repro.eval.harness import make_label_split
from repro.persist import load_linker, save_linker
from repro.serving import (
    LinkageService,
    run_throughput_benchmark,
    throughput_table,
)

PERSONS = int(os.environ.get("SERVE_BENCH_PERSONS", "18"))
BATCH_SIZES = (16, 64, 256)


def _run(tmp_dir):
    world = generate_world(WorldConfig(num_persons=PERSONS, seed=90))
    pairs = [("facebook", "twitter")]
    split = make_label_split(world, pairs, seed=90)
    linker = HydraLinker(seed=90, num_topics=8, max_lda_docs=1500)
    linker.fit(world, split.labeled_positive, split.labeled_negative, pairs)

    # serve from a reloaded artifact — the production path, not the fit object
    save_linker(linker, tmp_dir)
    service = LinkageService(load_linker(tmp_dir))
    results = run_throughput_benchmark(
        service, batch_sizes=BATCH_SIZES, repeats=3
    )
    return throughput_table(results)


def test_serving_throughput(once, tmp_path):
    rows = once(_run, str(tmp_path / "artifact"))
    write_table(
        "serving_throughput",
        f"Serving throughput — batched artifact scoring ({PERSONS}-person world)",
        ["batch_size", "pairs", "best_seconds", "pairs_per_sec", "p50_ms"],
        rows,
    )
    assert len(rows) >= 2  # at least two batch sizes, per the service contract
    for _, num_pairs, seconds, pairs_per_sec, p50_ms in rows:
        assert num_pairs > 0
        assert seconds > 0
        assert pairs_per_sec > 0
        assert p50_ms >= seconds * 1e3  # median pass can't beat the best
