"""Write-ahead-log overhead: online ingest throughput per fsync policy.

Not a paper figure — this prices the durability layer (:mod:`repro.wal`)
on the hot mutation path.  One linker is fitted with accounts held out;
each mode then absorbs the identical arrivals through
:meth:`~repro.serving.LinkageService.add_accounts` on a fresh clone:

* **wal-never** — records framed, checksummed, flushed to the OS; fsync
  left to the kernel;
* **wal-batch** — fsync every ``fsync_batch_bytes`` and on close (the
  serving default: a ``kill -9`` loses nothing, only power loss can);
* **wal-always** — fsync per record (power-loss safe, the ceiling of
  what durability can cost).

The committed baseline gates ``accounts_per_sec`` through
``benchmarks/check_regression.py`` — every row is WAL-on, so the gate
prices the logging machinery itself, not the no-WAL path (that path is
gated by ``ingest_throughput``).  A no-WAL control run is reported to
stdout as the overhead ratio, informational only.  Smoke mode (the
default, and what CI runs) uses a small world; scale with
``WAL_BENCH_PERSONS`` / ``WAL_BENCH_NEW`` / ``WAL_BENCH_REPEATS``.
"""

import os
import pickle
import shutil
import tempfile
import time
from pathlib import Path

from conftest import write_table

from repro.core import HydraLinker
from repro.datagen import WorldConfig, generate_world
from repro.eval.harness import make_label_split
from repro.serving import LinkageService, holdout_split
from repro.socialnet import transplant_account
from repro.wal import WriteAheadLog, read_wal

PERSONS = int(os.environ.get("WAL_BENCH_PERSONS", "20"))
NEW_PER_PLATFORM = int(os.environ.get("WAL_BENCH_NEW", "5"))
REPEATS = int(os.environ.get("WAL_BENCH_REPEATS", "3"))
PLATFORM_PAIRS = [("facebook", "twitter")]
SEED = 47

_MODES = {  # mode -> fsync policy (None = no WAL attached)
    "no-wal": None,
    "wal-never": "never",
    "wal-batch": "batch",
    "wal-always": "always",
}


def _fit():
    world = generate_world(WorldConfig(num_persons=PERSONS, seed=SEED))
    base, held = holdout_split(world, NEW_PER_PLATFORM)
    split = make_label_split(base, PLATFORM_PAIRS, seed=SEED)
    linker = HydraLinker(seed=SEED, num_topics=8, max_lda_docs=1500)
    linker.fit(
        base, split.labeled_positive, split.labeled_negative, PLATFORM_PAIRS
    )
    return pickle.dumps(linker), world, held


def _ingest_once(blob, world, held, fsync, wal_dir) -> float:
    """One timed absorption of ``held`` on a fresh clone; returns seconds."""
    wal = None
    if fsync is not None:
        shutil.rmtree(wal_dir, ignore_errors=True)
        wal = WriteAheadLog(wal_dir, fsync=fsync)
    service = LinkageService(pickle.loads(blob), batch_size=64, wal=wal)
    refs = [
        transplant_account(world, service.world, platform, account_id)
        for platform, account_id in held
    ]
    start = time.perf_counter()
    for ref in refs:  # one mutation per arrival: one WAL record each
        service.add_accounts([ref], score=False)
    elapsed = time.perf_counter() - start
    if wal is not None:
        log = wal.snapshot()
        assert len(log.records) == len(refs)  # every arrival hit the log
        assert not log.truncated
    service.close()
    if wal is not None:
        assert read_wal(wal_dir).last_epoch == len(refs)
    return elapsed


def _run():
    blob, world, held = _fit()
    timings: dict[str, float] = {}
    with tempfile.TemporaryDirectory(prefix="walbench-") as root:
        for mode, fsync in _MODES.items():
            wal_dir = Path(root) / mode
            timings[mode] = min(
                _ingest_once(blob, world, held, fsync, wal_dir)
                for _ in range(max(1, REPEATS))
            )
    return {"timings": timings, "accounts": len(held)}


def test_wal_overhead(once):
    result = once(_run)
    timings, accounts = result["timings"], result["accounts"]
    rows = [
        [mode, accounts, timings[mode], accounts / timings[mode]]
        for mode in _MODES
        if mode != "no-wal"  # the gated table is WAL-on only
    ]
    write_table(
        "wal_ingest_throughput",
        f"WAL ingest overhead — {accounts} arrivals into a "
        f"{PERSONS}-person fitted world, per fsync policy "
        f"(best of {max(1, REPEATS)})",
        ["mode", "accounts", "seconds", "accounts_per_sec"],
        rows,
    )
    for mode, seconds in timings.items():
        assert seconds > 0, f"{mode} did not run"
    overhead = timings["wal-batch"] / timings["no-wal"]
    print(
        f"\nwal-batch overhead vs no-wal: {overhead:.2f}x "
        f"({timings['wal-batch']:.3f}s vs {timings['no-wal']:.3f}s, "
        f"informational)"
    )
    # durability must stay a bounded tax on the mutation path, not a
    # second implementation of it — generous bound, absorbs smoke jitter
    assert overhead < 3.0, (
        f"WAL (fsync=batch) made ingest {overhead:.1f}x slower than no-WAL"
    )
